//! Committed channel states and their signatures.
//!
//! A node exits an off-chain channel by submitting a *final state*: the
//! channel identifier, its sequence number (the logical clock), the total
//! amount owed to the receiver and a hash binding the sensor data the
//! parties agreed on. Both parties sign the RLP encoding of that state; the
//! on-chain contract accepts whichever properly signed state carries the
//! highest sequence number.

use tinyevm_crypto::keccak256;
use tinyevm_crypto::secp256k1::Signature;
use tinyevm_types::{rlp::RlpStream, Address, Wei, H256};

/// Errors raised when validating a committed state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The sender signature does not recover to the expected sender.
    BadSenderSignature,
    /// The receiver signature does not recover to the expected receiver.
    BadReceiverSignature,
    /// The state claims more than the channel's locked deposit.
    Overspend {
        /// Claimed amount.
        claimed: Wei,
        /// Locked deposit.
        deposit: Wei,
    },
    /// The state's sequence number does not advance the stored one.
    StaleSequence {
        /// Sequence number already recorded on-chain.
        current: u64,
        /// Sequence number submitted.
        submitted: u64,
    },
}

impl core::fmt::Display for StateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StateError::BadSenderSignature => write!(f, "sender signature invalid"),
            StateError::BadReceiverSignature => write!(f, "receiver signature invalid"),
            StateError::Overspend { claimed, deposit } => {
                write!(f, "claimed {claimed} exceeds deposit {deposit}")
            }
            StateError::StaleSequence { current, submitted } => {
                write!(f, "sequence {submitted} does not advance {current}")
            }
        }
    }
}

impl std::error::Error for StateError {}

/// The content of a channel state (unsigned).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelState {
    /// Address of the on-chain template contract this channel belongs to.
    pub template: Address,
    /// Channel identifier issued by the template's logical clock.
    pub channel_id: u64,
    /// Sequence number of this state within the channel (monotonic).
    pub sequence: u64,
    /// Total amount owed to the receiver after this state.
    pub total_to_receiver: Wei,
    /// Hash binding the sensor data both parties observed.
    pub sensor_data_hash: H256,
}

impl ChannelState {
    /// RLP encoding of the state, the byte string both parties sign.
    pub fn encode(&self) -> Vec<u8> {
        let mut stream = RlpStream::new_list(5);
        stream.append_address(&self.template);
        stream.append_u64(self.channel_id);
        stream.append_u64(self.sequence);
        stream.append_u256(&self.total_to_receiver.amount());
        stream.append_h256(&self.sensor_data_hash);
        stream.finish()
    }

    /// Keccak-256 digest of the encoding — the value that gets signed and
    /// that becomes the channel's Merkle-Sum-Tree leaf hash.
    pub fn digest(&self) -> [u8; 32] {
        keccak256(&self.encode())
    }

    /// The digest as an `H256`, convenient for Merkle leaves.
    pub fn digest_h256(&self) -> H256 {
        H256::from_bytes(self.digest())
    }
}

/// A channel state together with both parties' signatures — the artifact a
/// node submits on-chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitEnvelope {
    /// The state being committed.
    pub state: ChannelState,
    /// Signature of the paying party (the vehicle in the parking scenario).
    pub sender_signature: Signature,
    /// Signature of the receiving party (the parking sensor).
    pub receiver_signature: Signature,
}

impl CommitEnvelope {
    /// Verifies both signatures against the expected parties.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::BadSenderSignature`] /
    /// [`StateError::BadReceiverSignature`] when recovery fails or yields a
    /// different address.
    pub fn verify_parties(&self, sender: &Address, receiver: &Address) -> Result<(), StateError> {
        let digest = self.state.digest();
        let recovered_sender = self
            .sender_signature
            .recover_address(&digest)
            .map_err(|_| StateError::BadSenderSignature)?;
        if recovered_sender != *sender {
            return Err(StateError::BadSenderSignature);
        }
        let recovered_receiver = self
            .receiver_signature
            .recover_address(&digest)
            .map_err(|_| StateError::BadReceiverSignature)?;
        if recovered_receiver != *receiver {
            return Err(StateError::BadReceiverSignature);
        }
        Ok(())
    }

    /// Serialized size in bytes when shipped over the radio or to the chain
    /// (state encoding plus two 65-byte signatures).
    pub fn wire_size(&self) -> usize {
        self.state.encode().len() + 65 * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyevm_crypto::secp256k1::PrivateKey;
    use tinyevm_types::U256;

    fn state(sequence: u64, amount: u64) -> ChannelState {
        ChannelState {
            template: Address::from_low_u64(0x7e),
            channel_id: 3,
            sequence,
            total_to_receiver: Wei::from(amount),
            sensor_data_hash: H256::from_low_u64(0xfeed),
        }
    }

    fn signed(state: &ChannelState, sender: &PrivateKey, receiver: &PrivateKey) -> CommitEnvelope {
        let digest = state.digest();
        CommitEnvelope {
            state: state.clone(),
            sender_signature: sender.sign_prehashed(&digest),
            receiver_signature: receiver.sign_prehashed(&digest),
        }
    }

    #[test]
    fn encoding_is_deterministic_and_sensitive() {
        let a = state(1, 10);
        let b = state(1, 10);
        assert_eq!(a.encode(), b.encode());
        assert_eq!(a.digest(), b.digest());
        let c = state(2, 10);
        let d = state(1, 11);
        assert_ne!(a.digest(), c.digest());
        assert_ne!(a.digest(), d.digest());
        assert_eq!(a.digest_h256().to_bytes(), a.digest());
    }

    #[test]
    fn envelope_verifies_correct_parties() {
        let sender = PrivateKey::from_seed(b"car");
        let receiver = PrivateKey::from_seed(b"parking sensor");
        let envelope = signed(&state(5, 500), &sender, &receiver);
        assert!(envelope
            .verify_parties(&sender.eth_address(), &receiver.eth_address())
            .is_ok());
        assert!(envelope.wire_size() > 130);
    }

    #[test]
    fn envelope_rejects_swapped_or_wrong_parties() {
        let sender = PrivateKey::from_seed(b"car");
        let receiver = PrivateKey::from_seed(b"parking sensor");
        let outsider = PrivateKey::from_seed(b"mallory");
        let envelope = signed(&state(5, 500), &sender, &receiver);

        // Swapped roles fail.
        assert_eq!(
            envelope.verify_parties(&receiver.eth_address(), &sender.eth_address()),
            Err(StateError::BadSenderSignature)
        );
        // A third party cannot claim to be the receiver.
        assert_eq!(
            envelope.verify_parties(&sender.eth_address(), &outsider.eth_address()),
            Err(StateError::BadReceiverSignature)
        );
    }

    #[test]
    fn tampering_with_the_state_invalidates_signatures() {
        let sender = PrivateKey::from_seed(b"car");
        let receiver = PrivateKey::from_seed(b"parking sensor");
        let mut envelope = signed(&state(5, 500), &sender, &receiver);
        envelope.state.total_to_receiver = Wei::from(5_000u64);
        assert!(envelope
            .verify_parties(&sender.eth_address(), &receiver.eth_address())
            .is_err());
    }

    #[test]
    fn error_display() {
        let errors = vec![
            StateError::BadSenderSignature,
            StateError::BadReceiverSignature,
            StateError::Overspend {
                claimed: Wei::from(10u64),
                deposit: Wei::from(5u64),
            },
            StateError::StaleSequence {
                current: 7,
                submitted: 3,
            },
        ];
        for error in errors {
            assert!(!format!("{error}").is_empty());
        }
    }

    #[test]
    fn digest_changes_with_sensor_hash() {
        let mut a = state(1, 10);
        let mut b = state(1, 10);
        a.sensor_data_hash = H256::from_low_u64(1);
        b.sensor_data_hash = H256::from_low_u64(2);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn wire_size_tracks_encoding() {
        let sender = PrivateKey::from_seed(b"a");
        let receiver = PrivateKey::from_seed(b"b");
        let small = signed(&state(1, 1), &sender, &receiver);
        let large = signed(&state(u64::MAX, u64::MAX), &sender, &receiver);
        assert!(large.wire_size() >= small.wire_size());
        let _ = U256::ZERO; // keep the import exercised
    }
}
