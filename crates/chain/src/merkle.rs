//! The Merkle-Sum-Tree over committed channel states.
//!
//! The paper (Section IV-E) follows Plasma in keeping a Merkle-Sum-Tree on
//! the on-chain contract: each leaf carries the hash of a committed state
//! and the amount it pays out, inner nodes carry the hash of their children
//! *and the sum of their amounts*. The root's sum therefore equals the total
//! claimed from the channel set, which makes overspending auditable with a
//! single comparison against the locked deposit, while the hashes provide
//! ordinary inclusion proofs.

use tinyevm_crypto::keccak256_h256;
use tinyevm_types::{Wei, H256, U256};

/// One leaf: a committed state hash and the amount it claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SumLeaf {
    /// Hash of the committed channel state.
    pub hash: H256,
    /// Amount the state pays out to the receiver.
    pub sum: Wei,
}

impl SumLeaf {
    /// Creates a leaf.
    pub fn new(hash: H256, sum: Wei) -> Self {
        SumLeaf { hash, sum }
    }
}

/// One step of an inclusion proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProofStep {
    /// Sibling node hash.
    pub hash: H256,
    /// Sibling node sum.
    pub sum: Wei,
    /// True when the sibling is on the right of the path node.
    pub sibling_is_right: bool,
}

/// An inclusion proof for one leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// The proven leaf.
    pub leaf: SumLeaf,
    /// Path from the leaf to the root.
    pub steps: Vec<ProofStep>,
}

/// A Merkle tree whose inner nodes carry both a hash and the sum of the
/// amounts beneath them.
///
/// # Example
///
/// ```
/// use tinyevm_chain::{MerkleSumTree, SumLeaf};
/// use tinyevm_types::{H256, Wei};
///
/// let mut tree = MerkleSumTree::new();
/// tree.push(SumLeaf::new(H256::from_low_u64(1), Wei::from(10u64)));
/// tree.push(SumLeaf::new(H256::from_low_u64(2), Wei::from(32u64)));
/// assert_eq!(tree.total(), Wei::from(42u64));
/// let proof = tree.prove(1).unwrap();
/// assert!(MerkleSumTree::verify(&tree.root(), &proof));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MerkleSumTree {
    leaves: Vec<SumLeaf>,
}

/// A node value: hash plus sum. The root value is what the on-chain
/// contract stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SumNode {
    /// Combined hash.
    pub hash: H256,
    /// Combined sum.
    pub sum: Wei,
}

impl MerkleSumTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a tree from existing leaves.
    pub fn from_leaves(leaves: Vec<SumLeaf>) -> Self {
        MerkleSumTree { leaves }
    }

    /// Appends a leaf, returning its index.
    pub fn push(&mut self, leaf: SumLeaf) -> usize {
        self.leaves.push(leaf);
        self.leaves.len() - 1
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// True when the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// The leaves, in insertion order.
    pub fn leaves(&self) -> &[SumLeaf] {
        &self.leaves
    }

    /// Total of all leaf sums (the overspend audit value).
    pub fn total(&self) -> Wei {
        self.leaves
            .iter()
            .fold(Wei::ZERO, |acc, leaf| acc.saturating_add(leaf.sum))
    }

    /// The root node (hash of the empty tree is all zeros).
    pub fn root(&self) -> SumNode {
        if self.leaves.is_empty() {
            return SumNode {
                hash: H256::ZERO,
                sum: Wei::ZERO,
            };
        }
        let mut level: Vec<SumNode> = self
            .leaves
            .iter()
            .map(|leaf| SumNode {
                hash: leaf.hash,
                sum: leaf.sum,
            })
            .collect();
        while level.len() > 1 {
            level = Self::next_level(&level);
        }
        level[0]
    }

    fn next_level(level: &[SumNode]) -> Vec<SumNode> {
        level
            .chunks(2)
            .map(|pair| {
                if pair.len() == 2 {
                    Self::combine(&pair[0], &pair[1])
                } else {
                    // Odd node is promoted unchanged.
                    pair[0]
                }
            })
            .collect()
    }

    /// Combines two nodes into their parent.
    pub fn combine(left: &SumNode, right: &SumNode) -> SumNode {
        let mut data = Vec::with_capacity(32 * 4);
        data.extend_from_slice(left.hash.as_bytes());
        data.extend_from_slice(&left.sum.amount().to_be_bytes());
        data.extend_from_slice(right.hash.as_bytes());
        data.extend_from_slice(&right.sum.amount().to_be_bytes());
        SumNode {
            hash: keccak256_h256(&data),
            sum: left.sum.saturating_add(right.sum),
        }
    }

    /// Builds an inclusion proof for the leaf at `index`.
    ///
    /// Returns `None` when the index is out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaves.len() {
            return None;
        }
        let mut steps = Vec::new();
        let mut level: Vec<SumNode> = self
            .leaves
            .iter()
            .map(|leaf| SumNode {
                hash: leaf.hash,
                sum: leaf.sum,
            })
            .collect();
        let mut position = index;
        while level.len() > 1 {
            let sibling_index = if position % 2 == 0 {
                position + 1
            } else {
                position - 1
            };
            if sibling_index < level.len() {
                steps.push(ProofStep {
                    hash: level[sibling_index].hash,
                    sum: level[sibling_index].sum,
                    sibling_is_right: sibling_index > position,
                });
            }
            level = Self::next_level(&level);
            position /= 2;
        }
        Some(MerkleProof {
            leaf_index: index,
            leaf: self.leaves[index],
            steps,
        })
    }

    /// Verifies an inclusion proof against a root.
    pub fn verify(root: &SumNode, proof: &MerkleProof) -> bool {
        let mut node = SumNode {
            hash: proof.leaf.hash,
            sum: proof.leaf.sum,
        };
        for step in &proof.steps {
            let sibling = SumNode {
                hash: step.hash,
                sum: step.sum,
            };
            node = if step.sibling_is_right {
                Self::combine(&node, &sibling)
            } else {
                Self::combine(&sibling, &node)
            };
        }
        node == *root
    }

    /// Convenience: true when the total claimed by the tree exceeds the
    /// locked deposit — the fraud condition the sum exists to detect.
    pub fn exceeds_deposit(&self, deposit: Wei) -> bool {
        self.total().amount() > deposit.amount()
    }
}

/// Hashes arbitrary bytes into a leaf hash (keccak-256).
pub fn leaf_hash(data: &[u8]) -> H256 {
    keccak256_h256(data)
}

/// Helper to build a leaf from a payout amount expressed as a `U256`.
pub fn leaf_from_amount(data: &[u8], amount: U256) -> SumLeaf {
    SumLeaf::new(leaf_hash(data), Wei::new(amount))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(id: u64, amount: u64) -> SumLeaf {
        SumLeaf::new(H256::from_low_u64(id), Wei::from(amount))
    }

    #[test]
    fn empty_tree_has_zero_root() {
        let tree = MerkleSumTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        assert_eq!(tree.root().hash, H256::ZERO);
        assert_eq!(tree.root().sum, Wei::ZERO);
        assert_eq!(tree.total(), Wei::ZERO);
        assert!(tree.prove(0).is_none());
    }

    #[test]
    fn single_leaf_root_is_the_leaf() {
        let mut tree = MerkleSumTree::new();
        tree.push(leaf(1, 100));
        let root = tree.root();
        assert_eq!(root.hash, H256::from_low_u64(1));
        assert_eq!(root.sum, Wei::from(100u64));
        let proof = tree.prove(0).unwrap();
        assert!(proof.steps.is_empty());
        assert!(MerkleSumTree::verify(&root, &proof));
    }

    #[test]
    fn sums_accumulate_to_the_root() {
        let mut tree = MerkleSumTree::new();
        for i in 0..7u64 {
            tree.push(leaf(i, 10 * (i + 1)));
        }
        // 10+20+...+70 = 280
        assert_eq!(tree.total(), Wei::from(280u64));
        assert_eq!(tree.root().sum, Wei::from(280u64));
        assert_eq!(tree.len(), 7);
        assert!(!tree.exceeds_deposit(Wei::from(280u64)));
        assert!(tree.exceeds_deposit(Wei::from(279u64)));
    }

    #[test]
    fn proofs_verify_for_every_leaf_and_odd_sizes() {
        for size in 1..=9usize {
            let leaves: Vec<SumLeaf> = (0..size as u64).map(|i| leaf(i + 1, i + 5)).collect();
            let tree = MerkleSumTree::from_leaves(leaves);
            let root = tree.root();
            for index in 0..size {
                let proof = tree.prove(index).unwrap();
                assert!(
                    MerkleSumTree::verify(&root, &proof),
                    "size {size}, index {index}"
                );
            }
        }
    }

    #[test]
    fn tampered_proofs_fail() {
        let tree = MerkleSumTree::from_leaves((0..8u64).map(|i| leaf(i, 10)).collect());
        let root = tree.root();
        let mut proof = tree.prove(3).unwrap();
        proof.leaf.sum = Wei::from(11u64);
        assert!(!MerkleSumTree::verify(&root, &proof));

        let mut proof = tree.prove(3).unwrap();
        proof.leaf.hash = H256::from_low_u64(999);
        assert!(!MerkleSumTree::verify(&root, &proof));

        let mut proof = tree.prove(3).unwrap();
        if let Some(step) = proof.steps.first_mut() {
            step.sum = Wei::from(1_000_000u64);
        }
        assert!(!MerkleSumTree::verify(&root, &proof));
    }

    #[test]
    fn proof_against_wrong_root_fails() {
        let tree_a = MerkleSumTree::from_leaves((0..4u64).map(|i| leaf(i, 10)).collect());
        let tree_b = MerkleSumTree::from_leaves((0..4u64).map(|i| leaf(i + 100, 10)).collect());
        let proof = tree_a.prove(2).unwrap();
        assert!(!MerkleSumTree::verify(&tree_b.root(), &proof));
    }

    #[test]
    fn root_changes_when_any_leaf_changes() {
        let base = MerkleSumTree::from_leaves((0..5u64).map(|i| leaf(i, 10)).collect());
        let mut changed_hash = base.clone();
        changed_hash.leaves[2].hash = H256::from_low_u64(77);
        let mut changed_sum = base.clone();
        changed_sum.leaves[2].sum = Wei::from(11u64);
        assert_ne!(base.root(), changed_hash.root());
        assert_ne!(base.root(), changed_sum.root());
        assert_ne!(changed_hash.root(), changed_sum.root());
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = SumNode {
            hash: H256::from_low_u64(1),
            sum: Wei::from(1u64),
        };
        let b = SumNode {
            hash: H256::from_low_u64(2),
            sum: Wei::from(2u64),
        };
        assert_ne!(
            MerkleSumTree::combine(&a, &b).hash,
            MerkleSumTree::combine(&b, &a).hash
        );
        assert_eq!(MerkleSumTree::combine(&a, &b).sum, Wei::from(3u64));
    }

    #[test]
    fn leaf_helpers() {
        let l = leaf_from_amount(b"state", U256::from(9u64));
        assert_eq!(l.hash, leaf_hash(b"state"));
        assert_eq!(l.sum, Wei::from(9u64));
        assert_ne!(leaf_hash(b"a"), leaf_hash(b"b"));
    }
}
