//! A minimal account-model main chain for anchoring TinyEVM's off-chain
//! protocol.
//!
//! The paper assumes Ethereum as the settlement layer but never measures it
//! — the chain's only roles are to hold the published template contract, the
//! locked deposit, the committed channel states and the challenge / exit
//! machinery. This crate provides exactly that substrate:
//!
//! * [`MerkleSumTree`] — the Plasma-style sum tree the on-chain contract
//!   keeps over committed channel states; the sum acts as an overspend
//!   audit, the hashes as inclusion proofs.
//! * [`ChannelState`] / [`CommitEnvelope`] — the dual-signed final state a
//!   node submits when it exits a channel.
//! * [`TemplateContract`] — the on-chain factory / bridge contract: deposit,
//!   logical-clock high-water mark, commit, challenge, exit and payout.
//! * [`Blockchain`] — accounts, balances, blocks and the transaction entry
//!   points the IoT nodes use (through their gateway) to talk to the chain.
//!
//! The chain can also execute real EVM bytecode in metered mode (see
//! [`Blockchain::deploy_evm_contract`]) so the gas-metering ablation has an
//! on-chain counterpart to compare against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod merkle;
pub mod state;
pub mod template;

pub use chain::{Block, Blockchain, ChainError, Transaction, TransactionKind};
pub use merkle::{MerkleProof, MerkleSumTree, SumLeaf};
pub use state::{ChannelState, CommitEnvelope, StateError};
pub use template::{
    ChannelRecord, Settlement, TemplateConfig, TemplateContract, TemplateError, TemplatePhase,
};
