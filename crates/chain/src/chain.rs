//! The block-producing chain that hosts accounts and template contracts.

use std::collections::BTreeMap;

use tinyevm_analysis::{analyze, AnalysisError, GasCertificate, Verdict};
use tinyevm_crypto::keccak256_h256;
use tinyevm_evm::{ContractStore, EvmConfig, Host, NullIotEnvironment};
use tinyevm_types::{Address, Wei, H256};

use crate::state::CommitEnvelope;
use crate::template::{Settlement, TemplateConfig, TemplateContract, TemplateError};

/// What a transaction did, for the block record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransactionKind {
    /// Plain value transfer.
    Transfer {
        /// Destination account.
        to: Address,
        /// Amount moved.
        amount: Wei,
    },
    /// Publication of a template contract with a locked deposit.
    PublishTemplate {
        /// Address assigned to the template.
        template: Address,
    },
    /// Commit of a channel state to a template.
    Commit {
        /// Template the commit went to.
        template: Address,
        /// Channel the state belongs to.
        channel_id: u64,
        /// Committed sequence number.
        sequence: u64,
    },
    /// Exit request on a template.
    StartExit {
        /// The template.
        template: Address,
        /// Deadline block of the challenge period.
        challenge_deadline: u64,
    },
    /// Finalization of a template after its challenge period.
    Finalize {
        /// The template.
        template: Address,
        /// True when the insurance went to the honest party.
        fraud_detected: bool,
    },
    /// Deployment of raw EVM bytecode (metered, on-chain execution).
    DeployEvmContract {
        /// Address of the deployed contract.
        contract: Address,
    },
}

/// One recorded transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Sending account.
    pub from: Address,
    /// What happened.
    pub kind: TransactionKind,
    /// Block that included it.
    pub block_number: u64,
}

/// One sealed block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Height of the block.
    pub number: u64,
    /// Hash of the previous block.
    pub parent_hash: H256,
    /// Hash of this block.
    pub hash: H256,
    /// Number of transactions included.
    pub transaction_count: usize,
}

/// Errors returned by chain operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The sender's balance is insufficient.
    InsufficientBalance {
        /// Account that tried to pay.
        account: Address,
        /// Amount needed.
        needed: Wei,
        /// Amount available.
        available: Wei,
    },
    /// No template is registered at the address.
    UnknownTemplate(Address),
    /// The template rejected the operation.
    Template(TemplateError),
    /// On-chain EVM deployment failed.
    EvmDeploymentFailed,
    /// The static analyzer rejected the submitted init code before any of
    /// it executed (only on chains built with deploy validation enabled).
    EvmCodeRejected(AnalysisError),
    /// The submitted init code lacks a worst-case gas proof within the
    /// chain's admission budget (only on chains built with
    /// [`Blockchain::with_gas_certificate_budget`]).
    EvmCodeOverBudget {
        /// What the analyzer could prove about the init code's cost.
        certificate: GasCertificate,
        /// The chain's admission budget in gas units.
        budget: u64,
    },
}

impl core::fmt::Display for ChainError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChainError::InsufficientBalance {
                account,
                needed,
                available,
            } => write!(f, "{account} needs {needed} but has {available}"),
            ChainError::UnknownTemplate(address) => write!(f, "no template at {address}"),
            ChainError::Template(error) => write!(f, "template rejected: {error}"),
            ChainError::EvmDeploymentFailed => write!(f, "on-chain EVM deployment failed"),
            ChainError::EvmCodeRejected(error) => {
                write!(f, "static analysis rejected the init code: {error}")
            }
            ChainError::EvmCodeOverBudget {
                certificate,
                budget,
            } => {
                write!(
                    f,
                    "init code not provably within the chain's {budget}-gas admission budget ({certificate})"
                )
            }
        }
    }
}

impl std::error::Error for ChainError {}

impl From<TemplateError> for ChainError {
    fn from(error: TemplateError) -> Self {
        ChainError::Template(error)
    }
}

/// The simulated main chain.
///
/// # Example
///
/// ```
/// use tinyevm_chain::Blockchain;
/// use tinyevm_types::{Address, Wei};
///
/// let mut chain = Blockchain::new();
/// let alice = Address::from_low_u64(1);
/// chain.fund(alice, Wei::from_eth(1));
/// assert_eq!(chain.balance(&alice), Wei::from_eth(1));
/// ```
#[derive(Debug)]
pub struct Blockchain {
    balances: BTreeMap<Address, Wei>,
    templates: BTreeMap<Address, TemplateContract>,
    blocks: Vec<Block>,
    transactions: Vec<Transaction>,
    evm_world: ContractStore,
    next_template_nonce: u64,
}

impl Blockchain {
    /// Creates a chain with a genesis block and no accounts.
    pub fn new() -> Self {
        let genesis = Block {
            number: 0,
            parent_hash: H256::ZERO,
            hash: keccak256_h256(b"tinyevm genesis"),
            transaction_count: 0,
        };
        Blockchain {
            balances: BTreeMap::new(),
            templates: BTreeMap::new(),
            blocks: vec![genesis],
            transactions: Vec::new(),
            evm_world: ContractStore::new(EvmConfig::unconstrained()),
            next_template_nonce: 0,
        }
    }

    /// Returns a copy with the deploy-time static-analysis gate toggled on
    /// the embedded EVM world: a validating chain refuses statically-invalid
    /// init code with [`ChainError::EvmCodeRejected`] before executing it,
    /// and refuses to install statically-rejected runtime code.
    pub fn with_deploy_validation(mut self, enabled: bool) -> Self {
        let config = self
            .evm_world
            .config()
            .clone()
            .with_deploy_validation(enabled);
        self.evm_world = ContractStore::new(config);
        self
    }

    /// Returns a copy whose embedded EVM world demands a static worst-case
    /// gas proof of at most `max_gas` from every deployed contract:
    /// submitted init code is refused with [`ChainError::EvmCodeOverBudget`]
    /// unless its certificate is `Bounded` within the budget, and nested
    /// `CREATE`s refuse runtime code the same way.
    pub fn with_gas_certificate_budget(mut self, max_gas: u64) -> Self {
        let config = self
            .evm_world
            .config()
            .clone()
            .with_gas_certificate_budget(max_gas);
        self.evm_world = ContractStore::new(config);
        self
    }

    /// Reconstructs a chain from persisted parts (the `tinyevm-wire`
    /// snapshot layer): account balances, the per-block transaction counts
    /// (block hashes chain deterministically from the fixed genesis, so the
    /// counts alone reproduce every hash), the template-address nonce and
    /// the template contracts themselves.
    ///
    /// The transaction *log* is a convenience record for reports, not
    /// consensus state, and is not part of a snapshot; a restored chain
    /// starts with an empty log. The same goes for the on-chain EVM world
    /// used by the deployment ablation.
    pub fn restore_from_parts(
        balances: Vec<(Address, Wei)>,
        block_transaction_counts: &[u32],
        next_template_nonce: u64,
        templates: Vec<(Address, TemplateContract)>,
    ) -> Self {
        let mut chain = Blockchain::new();
        for count in block_transaction_counts {
            chain.seal_block(*count as usize);
        }
        chain.balances = balances.into_iter().collect();
        chain.templates = templates.into_iter().collect();
        chain.next_template_nonce = next_template_nonce;
        chain
    }

    /// Current block height.
    pub fn height(&self) -> u64 {
        self.blocks.last().map(|b| b.number).unwrap_or(0)
    }

    /// Hash of the latest sealed block.
    pub fn head_hash(&self) -> H256 {
        self.blocks.last().map(|b| b.hash).unwrap_or(H256::ZERO)
    }

    /// All sealed blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// All recorded transactions.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Balance of an account.
    pub fn balance(&self, account: &Address) -> Wei {
        self.balances.get(account).copied().unwrap_or(Wei::ZERO)
    }

    /// Credits an account out of thin air (genesis allocation / faucet).
    pub fn fund(&mut self, account: Address, amount: Wei) {
        let balance = self.balance(&account).saturating_add(amount);
        self.balances.insert(account, balance);
    }

    /// All accounts with a balance, in address order.
    pub fn balances(&self) -> impl Iterator<Item = (&Address, &Wei)> {
        self.balances.iter()
    }

    /// A registered template contract.
    pub fn template(&self, address: &Address) -> Option<&TemplateContract> {
        self.templates.get(address)
    }

    /// All registered templates, in address order.
    pub fn templates(&self) -> impl Iterator<Item = (&Address, &TemplateContract)> {
        self.templates.iter()
    }

    /// The nonce used to derive the next template address.
    pub fn next_template_nonce(&self) -> u64 {
        self.next_template_nonce
    }

    /// A digest over the chain's consensus state: head block hash, height,
    /// template nonce, every account balance and every template's full
    /// state (config, phase, logical clock, channel records, fraud flag and
    /// Merkle-Sum-Tree root). Two chains with equal roots settle every
    /// channel identically — this is what snapshot restore is checked
    /// against.
    pub fn state_root(&self) -> H256 {
        let mut data = Vec::with_capacity(128);
        data.extend_from_slice(self.head_hash().as_bytes());
        data.extend_from_slice(&self.height().to_be_bytes());
        data.extend_from_slice(&self.next_template_nonce.to_be_bytes());
        for (account, balance) in &self.balances {
            data.extend_from_slice(account.as_bytes());
            data.extend_from_slice(&balance.amount().to_be_bytes());
        }
        for (address, template) in &self.templates {
            data.extend_from_slice(address.as_bytes());
            let config = template.config();
            data.extend_from_slice(config.sender.as_bytes());
            data.extend_from_slice(config.receiver.as_bytes());
            data.extend_from_slice(&config.deposit.amount().to_be_bytes());
            data.extend_from_slice(&config.challenge_period_blocks.to_be_bytes());
            let (phase_tag, deadline) = match template.phase() {
                crate::template::TemplatePhase::Active => (0u8, 0u64),
                crate::template::TemplatePhase::Exiting { challenge_deadline } => {
                    (1, challenge_deadline)
                }
                crate::template::TemplatePhase::Closed => (2, 0),
            };
            data.push(phase_tag);
            data.extend_from_slice(&deadline.to_be_bytes());
            data.extend_from_slice(&template.logical_clock().to_be_bytes());
            data.push(template.fraud_detected() as u8);
            for record in template.channels() {
                data.extend_from_slice(&record.channel_id.to_be_bytes());
                data.extend_from_slice(&record.sequence.to_be_bytes());
                data.extend_from_slice(&record.total_to_receiver.amount().to_be_bytes());
            }
            let root = template.side_chain_root();
            data.extend_from_slice(root.hash.as_bytes());
            data.extend_from_slice(&root.sum.amount().to_be_bytes());
        }
        keccak256_h256(&data)
    }

    /// Advances the chain by `blocks` empty blocks — used to let challenge
    /// periods elapse.
    pub fn advance_blocks(&mut self, blocks: u64) {
        for _ in 0..blocks {
            self.seal_block(0);
        }
    }

    fn seal_block(&mut self, transaction_count: usize) -> u64 {
        let parent = self.blocks.last().expect("genesis always present");
        let number = parent.number + 1;
        let mut data = Vec::with_capacity(44);
        data.extend_from_slice(parent.hash.as_bytes());
        data.extend_from_slice(&number.to_be_bytes());
        data.extend_from_slice(&(transaction_count as u32).to_be_bytes());
        let hash = keccak256_h256(&data);
        self.blocks.push(Block {
            number,
            parent_hash: parent.hash,
            hash,
            transaction_count,
        });
        number
    }

    fn record(&mut self, from: Address, kind: TransactionKind) -> u64 {
        let block_number = self.seal_block(1);
        self.transactions.push(Transaction {
            from,
            kind,
            block_number,
        });
        block_number
    }

    fn debit(&mut self, account: &Address, amount: Wei) -> Result<(), ChainError> {
        let balance = self.balance(account);
        let remaining = balance
            .checked_sub(amount)
            .ok_or(ChainError::InsufficientBalance {
                account: *account,
                needed: amount,
                available: balance,
            })?;
        self.balances.insert(*account, remaining);
        Ok(())
    }

    /// Transfers value between accounts, sealing a block.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::InsufficientBalance`] when the sender cannot
    /// cover the amount.
    pub fn transfer(&mut self, from: Address, to: Address, amount: Wei) -> Result<u64, ChainError> {
        self.debit(&from, amount)?;
        self.fund(to, amount);
        Ok(self.record(from, TransactionKind::Transfer { to, amount }))
    }

    /// Publishes a template contract: locks the deposit from the sender and
    /// registers the contract (paper phase 1, "on-chain smart contract").
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::InsufficientBalance`] when the deposit cannot
    /// be locked.
    pub fn publish_template(&mut self, config: TemplateConfig) -> Result<Address, ChainError> {
        self.debit(&config.sender, config.deposit)?;
        self.next_template_nonce += 1;
        let mut data = Vec::with_capacity(28);
        data.extend_from_slice(config.sender.as_bytes());
        data.extend_from_slice(&self.next_template_nonce.to_be_bytes());
        let address = Address::from_hash(&keccak256_h256(&data));
        let sender = config.sender;
        self.templates
            .insert(address, TemplateContract::new(config));
        self.record(
            sender,
            TransactionKind::PublishTemplate { template: address },
        );
        Ok(address)
    }

    /// Registers a new payment channel on a template, returning its channel
    /// id (the logical-clock value).
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownTemplate`] or a template error.
    pub fn create_payment_channel(
        &mut self,
        caller: Address,
        template: Address,
    ) -> Result<u64, ChainError> {
        let contract = self
            .templates
            .get_mut(&template)
            .ok_or(ChainError::UnknownTemplate(template))?;
        let channel_id = contract.create_payment_channel(caller)?;
        Ok(channel_id)
    }

    /// Commits a dual-signed channel state to a template (paper phase 3).
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownTemplate`] or the template's rejection.
    pub fn commit_channel_state(
        &mut self,
        caller: Address,
        template: Address,
        envelope: &CommitEnvelope,
    ) -> Result<u64, ChainError> {
        let height = self.height();
        let contract = self
            .templates
            .get_mut(&template)
            .ok_or(ChainError::UnknownTemplate(template))?;
        contract.commit(caller, envelope, height)?;
        Ok(self.record(
            caller,
            TransactionKind::Commit {
                template,
                channel_id: envelope.state.channel_id,
                sequence: envelope.state.sequence,
            },
        ))
    }

    /// Starts the exit of a template, opening its challenge period.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownTemplate`] or the template's rejection.
    pub fn start_exit(&mut self, caller: Address, template: Address) -> Result<u64, ChainError> {
        let height = self.height();
        let contract = self
            .templates
            .get_mut(&template)
            .ok_or(ChainError::UnknownTemplate(template))?;
        let deadline = contract.start_exit(caller, height)?;
        self.record(
            caller,
            TransactionKind::StartExit {
                template,
                challenge_deadline: deadline,
            },
        );
        Ok(deadline)
    }

    /// Finalizes a template after its challenge period and pays out.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownTemplate`] or the template's rejection
    /// (for example when the challenge period is still running).
    pub fn finalize_template(
        &mut self,
        caller: Address,
        template: Address,
    ) -> Result<Settlement, ChainError> {
        let height = self.height();
        let contract = self
            .templates
            .get_mut(&template)
            .ok_or(ChainError::UnknownTemplate(template))?;
        let settlement = contract.finalize(height)?;
        let (sender, receiver) = {
            let config = contract.config();
            (config.sender, config.receiver)
        };
        self.fund(receiver, settlement.to_receiver);
        self.fund(sender, settlement.to_sender);
        self.record(
            caller,
            TransactionKind::Finalize {
                template,
                fraud_detected: settlement.fraud_detected,
            },
        );
        Ok(settlement)
    }

    /// Deploys raw EVM init code on-chain (metered execution with the
    /// full-node profile) and returns the contract address. This is how the
    /// gas-metering ablation gets an on-chain comparison point.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::EvmDeploymentFailed`] when the init code
    /// reverts, traps or runs out of gas, and — on a chain built with
    /// [`Blockchain::with_deploy_validation`] — [`ChainError::EvmCodeRejected`]
    /// when the static analyzer refuses the init code before execution.
    pub fn deploy_evm_contract(
        &mut self,
        creator: Address,
        init_code: &[u8],
    ) -> Result<Address, ChainError> {
        let config = self.evm_world.config();
        if config.validate_on_deploy || config.gas_certificate_budget.is_some() {
            let analysis = analyze(init_code);
            if config.validate_on_deploy {
                if let Verdict::Rejected(error) = analysis.verdict() {
                    return Err(ChainError::EvmCodeRejected(error.clone()));
                }
            }
            if let Some(budget) = config.gas_certificate_budget {
                if !analysis.gas_certificate().within_gas_budget(budget) {
                    return Err(ChainError::EvmCodeOverBudget {
                        certificate: *analysis.gas_certificate(),
                        budget,
                    });
                }
            }
        }
        let outcome = self.evm_world.create(
            creator,
            tinyevm_types::U256::ZERO,
            init_code,
            16,
            &mut NullIotEnvironment,
        );
        let address = outcome
            .created
            .filter(|_| outcome.success)
            .ok_or(ChainError::EvmDeploymentFailed)?;
        self.record(
            creator,
            TransactionKind::DeployEvmContract { contract: address },
        );
        Ok(address)
    }

    /// Calls a previously deployed on-chain EVM contract.
    pub fn call_evm_contract(
        &mut self,
        caller: Address,
        contract: Address,
        input: &[u8],
    ) -> (Vec<u8>, bool) {
        let outcome = self.evm_world.execute_contract(
            caller,
            contract,
            tinyevm_types::U256::ZERO,
            input,
            &mut NullIotEnvironment,
        );
        (outcome.output, outcome.success)
    }
}

impl Default for Blockchain {
    fn default() -> Self {
        Blockchain::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ChannelState;
    use tinyevm_crypto::secp256k1::PrivateKey;
    use tinyevm_evm::asm;

    fn setup() -> (Blockchain, PrivateKey, PrivateKey) {
        let mut chain = Blockchain::new();
        let sender = PrivateKey::from_seed(b"car owner");
        let receiver = PrivateKey::from_seed(b"parking operator");
        chain.fund(sender.eth_address(), Wei::from(10_000u64));
        chain.fund(receiver.eth_address(), Wei::from(1_000u64));
        (chain, sender, receiver)
    }

    fn template_config(sender: &PrivateKey, receiver: &PrivateKey, deposit: u64) -> TemplateConfig {
        TemplateConfig {
            sender: sender.eth_address(),
            receiver: receiver.eth_address(),
            deposit: Wei::from(deposit),
            challenge_period_blocks: 5,
        }
    }

    fn envelope(
        template: Address,
        sender: &PrivateKey,
        receiver: &PrivateKey,
        channel_id: u64,
        sequence: u64,
        amount: u64,
    ) -> CommitEnvelope {
        let state = ChannelState {
            template,
            channel_id,
            sequence,
            total_to_receiver: Wei::from(amount),
            sensor_data_hash: H256::from_low_u64(42),
        };
        let digest = state.digest();
        CommitEnvelope {
            state,
            sender_signature: sender.sign_prehashed(&digest),
            receiver_signature: receiver.sign_prehashed(&digest),
        }
    }

    #[test]
    fn genesis_and_funding() {
        let chain = Blockchain::new();
        assert_eq!(chain.height(), 0);
        assert_eq!(chain.blocks().len(), 1);
        let (chain, sender, _) = setup();
        assert_eq!(chain.balance(&sender.eth_address()), Wei::from(10_000u64));
        assert_eq!(chain.balance(&Address::from_low_u64(99)), Wei::ZERO);
    }

    #[test]
    fn transfers_move_value_and_seal_blocks() {
        let (mut chain, sender, receiver) = setup();
        let block = chain
            .transfer(
                sender.eth_address(),
                receiver.eth_address(),
                Wei::from(500u64),
            )
            .unwrap();
        assert_eq!(block, 1);
        assert_eq!(chain.balance(&sender.eth_address()), Wei::from(9_500u64));
        assert_eq!(chain.balance(&receiver.eth_address()), Wei::from(1_500u64));
        assert_eq!(chain.transactions().len(), 1);
        assert!(matches!(
            chain.transfer(
                sender.eth_address(),
                receiver.eth_address(),
                Wei::from(1_000_000u64)
            ),
            Err(ChainError::InsufficientBalance { .. })
        ));
    }

    #[test]
    fn block_hashes_chain_together() {
        let mut chain = Blockchain::new();
        chain.advance_blocks(3);
        let blocks = chain.blocks();
        assert_eq!(blocks.len(), 4);
        for pair in blocks.windows(2) {
            assert_eq!(pair[1].parent_hash, pair[0].hash);
            assert_eq!(pair[1].number, pair[0].number + 1);
        }
    }

    #[test]
    fn publishing_a_template_locks_the_deposit() {
        let (mut chain, sender, receiver) = setup();
        let config = template_config(&sender, &receiver, 2_000);
        let template = chain.publish_template(config).unwrap();
        assert_eq!(chain.balance(&sender.eth_address()), Wei::from(8_000u64));
        assert!(chain.template(&template).is_some());
        // Publishing without funds fails.
        let poor = PrivateKey::from_seed(b"broke");
        let config = TemplateConfig {
            sender: poor.eth_address(),
            receiver: receiver.eth_address(),
            deposit: Wei::from(1u64),
            challenge_period_blocks: 5,
        };
        assert!(matches!(
            chain.publish_template(config),
            Err(ChainError::InsufficientBalance { .. })
        ));
    }

    #[test]
    fn full_commit_exit_finalize_lifecycle() {
        let (mut chain, sender, receiver) = setup();
        let template = chain
            .publish_template(template_config(&sender, &receiver, 2_000))
            .unwrap();
        let channel = chain
            .create_payment_channel(sender.eth_address(), template)
            .unwrap();
        assert_eq!(channel, 1);

        // Receiver commits the final state of the channel.
        let state = envelope(template, &sender, &receiver, channel, 7, 750);
        chain
            .commit_channel_state(receiver.eth_address(), template, &state)
            .unwrap();

        // Receiver exits; challenge period must elapse before finalizing.
        chain.start_exit(receiver.eth_address(), template).unwrap();
        assert!(matches!(
            chain.finalize_template(receiver.eth_address(), template),
            Err(ChainError::Template(
                TemplateError::ChallengePeriodActive { .. }
            ))
        ));
        chain.advance_blocks(6);
        let settlement = chain
            .finalize_template(receiver.eth_address(), template)
            .unwrap();
        assert_eq!(settlement.to_receiver, Wei::from(750u64));
        assert_eq!(settlement.to_sender, Wei::from(1_250u64));

        // Balances after settlement: sender got the unspent deposit back.
        assert_eq!(
            chain.balance(&sender.eth_address()),
            Wei::from(8_000 + 1_250u64)
        );
        assert_eq!(
            chain.balance(&receiver.eth_address()),
            Wei::from(1_000 + 750u64)
        );
        // Transactions were recorded for every step.
        assert!(chain.transactions().len() >= 4);
    }

    #[test]
    fn commit_to_unknown_template_fails() {
        let (mut chain, sender, receiver) = setup();
        let bogus = Address::from_low_u64(0xbad);
        let state = envelope(bogus, &sender, &receiver, 1, 1, 10);
        assert!(matches!(
            chain.commit_channel_state(sender.eth_address(), bogus, &state),
            Err(ChainError::UnknownTemplate(_))
        ));
        assert!(matches!(
            chain.create_payment_channel(sender.eth_address(), bogus),
            Err(ChainError::UnknownTemplate(_))
        ));
        assert!(matches!(
            chain.start_exit(sender.eth_address(), bogus),
            Err(ChainError::UnknownTemplate(_))
        ));
    }

    #[test]
    fn challenge_during_exit_updates_the_payout() {
        let (mut chain, sender, receiver) = setup();
        let template = chain
            .publish_template(template_config(&sender, &receiver, 2_000))
            .unwrap();
        let channel = chain
            .create_payment_channel(sender.eth_address(), template)
            .unwrap();

        // Sender commits an old state (100) and exits immediately.
        let stale = envelope(template, &sender, &receiver, channel, 2, 100);
        chain
            .commit_channel_state(sender.eth_address(), template, &stale)
            .unwrap();
        chain.start_exit(sender.eth_address(), template).unwrap();

        // Receiver challenges with the newer state (900) during the window.
        let fresh = envelope(template, &sender, &receiver, channel, 9, 900);
        chain
            .commit_channel_state(receiver.eth_address(), template, &fresh)
            .unwrap();

        chain.advance_blocks(10);
        let settlement = chain
            .finalize_template(receiver.eth_address(), template)
            .unwrap();
        assert_eq!(settlement.to_receiver, Wei::from(900u64));
    }

    #[test]
    fn on_chain_evm_deployment_and_call() {
        let (mut chain, sender, _) = setup();
        let runtime =
            asm::assemble("PUSH1 0x2a PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN").unwrap();
        let init = asm::wrap_as_init_code(&runtime);
        let contract = chain
            .deploy_evm_contract(sender.eth_address(), &init)
            .unwrap();
        let (output, success) = chain.call_evm_contract(sender.eth_address(), contract, &[]);
        assert!(success);
        assert_eq!(output[31], 42);
        // A reverting constructor fails deployment.
        let bad_init = asm::assemble("PUSH1 0x00 PUSH1 0x00 REVERT").unwrap();
        assert!(matches!(
            chain.deploy_evm_contract(sender.eth_address(), &bad_init),
            Err(ChainError::EvmDeploymentFailed)
        ));
    }

    #[test]
    fn validating_chain_rejects_bad_init_code_before_execution() {
        let mut chain = Blockchain::new().with_deploy_validation(true);
        let sender = PrivateKey::from_seed(b"deployer");
        chain.fund(sender.eth_address(), Wei::from(10_000u64));

        // Jump into the middle of a push immediate: statically invalid.
        let bad_init = asm::assemble("PUSH1 0x03 JUMP STOP").unwrap();
        match chain.deploy_evm_contract(sender.eth_address(), &bad_init) {
            Err(ChainError::EvmCodeRejected(AnalysisError::InvalidJumpTarget { pc, target })) => {
                assert_eq!(pc, 2);
                assert_eq!(target, 3);
            }
            other => panic!("expected EvmCodeRejected, got {other:?}"),
        }
        // Nothing executed, so no transaction was recorded either.
        assert!(chain.transactions().is_empty());

        // Well-formed contracts still deploy and run on the gated chain.
        let runtime =
            asm::assemble("PUSH1 0x2a PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN").unwrap();
        let init = asm::wrap_as_init_code(&runtime);
        let contract = chain
            .deploy_evm_contract(sender.eth_address(), &init)
            .unwrap();
        let (output, success) = chain.call_evm_contract(sender.eth_address(), contract, &[]);
        assert!(success);
        assert_eq!(output[31], 42);

        // The default chain keeps accepting the same bad code (it fails at
        // runtime instead, preserving the corpus experiments' semantics).
        let (mut open, open_sender, _) = setup();
        assert!(matches!(
            open.deploy_evm_contract(open_sender.eth_address(), &bad_init),
            Err(ChainError::EvmDeploymentFailed)
        ));
    }

    #[test]
    fn budgeted_chain_demands_a_bounded_gas_proof() {
        let mut chain = Blockchain::new().with_gas_certificate_budget(100_000);
        let sender = PrivateKey::from_seed(b"budgeted");
        chain.fund(sender.eth_address(), Wei::from(10_000u64));

        // A looping constructor can never prove a bound: refused before
        // execution, regardless of whether it would actually halt.
        let looping = asm::assemble("JUMPDEST PUSH1 0x00 JUMP").unwrap();
        match chain.deploy_evm_contract(sender.eth_address(), &looping) {
            Err(ChainError::EvmCodeOverBudget {
                certificate,
                budget,
            }) => {
                assert_eq!(certificate, GasCertificate::Unbounded { loop_head: 0 });
                assert_eq!(budget, 100_000);
            }
            other => panic!("expected EvmCodeOverBudget, got {other:?}"),
        }
        assert!(chain.transactions().is_empty());

        // A straight-line contract carries its proof and deploys.
        let runtime =
            asm::assemble("PUSH1 0x2a PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN").unwrap();
        let init = asm::wrap_as_init_code(&runtime);
        let contract = chain
            .deploy_evm_contract(sender.eth_address(), &init)
            .unwrap();
        let (output, success) = chain.call_evm_contract(sender.eth_address(), contract, &[]);
        assert!(success);
        assert_eq!(output[31], 42);
    }
}
