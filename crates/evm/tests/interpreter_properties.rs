//! Property-based tests for the interpreter.
//!
//! These check that the interpreter's arithmetic agrees with the host-side
//! `U256` implementation for arbitrary operands (i.e. the stack plumbing
//! introduces no corruption), that assembled programs always round-trip
//! through the disassembler, and that deployment metrics respect their
//! definitional invariants for arbitrary generated runtime code.

use proptest::prelude::*;
use tinyevm_evm::{asm, deploy, Evm, EvmConfig, ExecOutcome, Opcode};
use tinyevm_types::U256;

/// Builds a program that pushes `b`, pushes `a`, applies `op`, and returns
/// the 32-byte result.
fn binary_program(op: &str, a: U256, b: U256) -> Vec<u8> {
    let source = format!(
        "PUSH32 0x{:064x} PUSH32 0x{:064x} {op} PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN",
        b, a
    );
    asm::assemble(&source).expect("valid program")
}

fn run_program(code: &[u8]) -> U256 {
    let result = Evm::new(EvmConfig::cc2538())
        .execute(code, &[])
        .expect("program must not trap");
    assert_eq!(result.outcome, ExecOutcome::Return);
    U256::from_be_slice(&result.output).unwrap()
}

fn arb_u256() -> impl Strategy<Value = U256> {
    proptest::array::uniform4(any::<u64>()).prop_map(U256::from_limbs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_agrees_with_host_arithmetic(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(run_program(&binary_program("ADD", a, b)), a.wrapping_add(b));
    }

    #[test]
    fn sub_agrees_with_host_arithmetic(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(run_program(&binary_program("SUB", a, b)), a.wrapping_sub(b));
    }

    #[test]
    fn mul_agrees_with_host_arithmetic(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(run_program(&binary_program("MUL", a, b)), a.wrapping_mul(b));
    }

    #[test]
    fn div_and_mod_agree_with_host_arithmetic(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(run_program(&binary_program("DIV", a, b)), a.div(b));
        prop_assert_eq!(run_program(&binary_program("MOD", a, b)), a.rem(b));
    }

    #[test]
    fn comparisons_agree_with_host_ordering(a in arb_u256(), b in arb_u256()) {
        let lt = run_program(&binary_program("LT", a, b));
        let gt = run_program(&binary_program("GT", a, b));
        let eq = run_program(&binary_program("EQ", a, b));
        prop_assert_eq!(lt == U256::ONE, a < b);
        prop_assert_eq!(gt == U256::ONE, a > b);
        prop_assert_eq!(eq == U256::ONE, a == b);
        // Exactly one of lt/gt/eq holds.
        let sum = lt.wrapping_add(gt).wrapping_add(eq);
        prop_assert_eq!(sum, U256::ONE);
    }

    #[test]
    fn bitwise_ops_agree_with_host(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(run_program(&binary_program("AND", a, b)), a & b);
        prop_assert_eq!(run_program(&binary_program("OR", a, b)), a | b);
        prop_assert_eq!(run_program(&binary_program("XOR", a, b)), a ^ b);
    }

    #[test]
    fn mstore_mload_round_trip(value in arb_u256(), slot in 0u8..=6) {
        let offset = slot as usize * 32;
        let source = format!(
            "PUSH32 0x{value:064x} PUSH2 0x{offset:04x} MSTORE PUSH2 0x{offset:04x} MLOAD PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN",
        );
        let code = asm::assemble(&source).unwrap();
        prop_assert_eq!(run_program(&code), value);
    }

    #[test]
    fn sstore_sload_round_trip(value in arb_u256(), key in 0u8..=255) {
        let source = format!(
            "PUSH32 0x{value:064x} PUSH1 0x{key:02x} SSTORE PUSH1 0x{key:02x} SLOAD PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN",
        );
        let code = asm::assemble(&source).unwrap();
        prop_assert_eq!(run_program(&code), value);
    }

    #[test]
    fn push_values_survive_the_stack(bytes in proptest::collection::vec(any::<u8>(), 1..=32)) {
        let hex_immediate = tinyevm_types::hex::encode(&bytes);
        let source = format!(
            "PUSH{} 0x{hex_immediate} PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN",
            bytes.len()
        );
        let code = asm::assemble(&source).unwrap();
        let expected = U256::from_be_slice(&bytes).unwrap();
        prop_assert_eq!(run_program(&code), expected);
    }

    #[test]
    fn disassemble_never_panics_on_random_bytes(code in proptest::collection::vec(any::<u8>(), 0..400)) {
        let listing = asm::disassemble(&code);
        // Every byte of input is accounted for by at least one line.
        if !code.is_empty() {
            prop_assert!(!listing.is_empty());
        }
    }

    #[test]
    fn execute_never_panics_on_random_bytecode(code in proptest::collection::vec(any::<u8>(), 0..300)) {
        // Arbitrary byte soup must either run to completion or trap with a
        // structured error — never panic and never loop forever (the
        // instruction budget guarantees termination).
        let mut config = EvmConfig::cc2538();
        config.instruction_limit = 20_000;
        let _ = Evm::new(config).execute(&code, &[]);
    }

    #[test]
    fn wrapped_init_code_deploys_any_runtime_under_the_limit(
        runtime in proptest::collection::vec(any::<u8>(), 1..2048)
    ) {
        let init = asm::wrap_as_init_code(&runtime);
        let result = deploy(&EvmConfig::cc2538(), &init).unwrap();
        prop_assert_eq!(&result.runtime_code, &runtime);
        // Fig. 3b invariant: deployed memory never exceeds what was shipped.
        prop_assert!(result.deployed_memory_bytes <= init.len());
        // The constructor prologue touches only a handful of stack slots.
        prop_assert!(result.metrics.max_stack_pointer <= 4);
    }

    #[test]
    fn jumpdest_analysis_flags_only_jumpdest_bytes(code in proptest::collection::vec(any::<u8>(), 0..300)) {
        let dests = tinyevm_evm::interpreter::analyze_jumpdests(&code);
        prop_assert_eq!(dests.len(), code.len());
        for (i, &valid) in dests.iter().enumerate() {
            if valid {
                prop_assert_eq!(code[i], Opcode::JumpDest.to_byte());
            }
        }
    }
}
