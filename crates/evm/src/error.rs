//! Execution errors and trap reasons.

use crate::opcode::Opcode;

/// The reason an execution halted abnormally.
///
/// A *trap* is the EVM's equivalent of a hardware fault: the machine stops,
/// the enclosing frame fails, and — on the IoT device — the off-chain state
/// transition is simply not applied. The paper's deployability experiment
/// (Figure 3a) counts a contract as "failed" when its constructor traps with
/// a resource-limit violation such as [`TrapReason::CodeSizeExceeded`] or
/// [`TrapReason::MemoryLimitExceeded`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrapReason {
    /// The stack grew beyond the configured limit.
    StackOverflow {
        /// Configured maximum number of stack elements.
        limit: usize,
    },
    /// An opcode needed more stack elements than were present.
    StackUnderflow {
        /// The opcode that required the elements.
        opcode: Opcode,
        /// Elements it needed.
        needed: usize,
        /// Elements available.
        available: usize,
    },
    /// Touched memory beyond the configured RAM budget.
    MemoryLimitExceeded {
        /// Offset + length that was requested, in bytes.
        requested: usize,
        /// Configured limit in bytes.
        limit: usize,
    },
    /// The off-chain storage budget was exhausted.
    StorageLimitExceeded {
        /// Configured limit in bytes.
        limit: usize,
    },
    /// Jumped to a destination that is not a `JUMPDEST`.
    InvalidJump {
        /// The requested destination program counter.
        destination: usize,
    },
    /// Executed an undefined byte.
    UndefinedInstruction {
        /// The raw byte value.
        byte: u8,
    },
    /// Executed an opcode that TinyEVM removes in off-chain mode (the
    /// blockchain-information group and the gas introspection group).
    UnsupportedOpcode {
        /// The offending opcode.
        opcode: Opcode,
    },
    /// The `INVALID` (0xFE) opcode was executed.
    InvalidOpcode,
    /// Gas ran out (only possible in metered mode).
    OutOfGas {
        /// Gas limit of the frame.
        limit: u64,
    },
    /// A `RETURN` from init code produced runtime code above the limit.
    CodeSizeExceeded {
        /// Size of the produced code.
        size: usize,
        /// Configured maximum.
        limit: usize,
    },
    /// Call / create nesting exceeded the configured depth.
    CallDepthExceeded {
        /// Configured maximum depth.
        limit: usize,
    },
    /// The IoT environment rejected a sensor or actuator request.
    IotUnavailable {
        /// The sensor / actuator id that was requested.
        id: u64,
    },
    /// An `SSTORE` or state-changing call was attempted inside a static call.
    StaticModeViolation,
    /// The execution exceeded the configured instruction budget (a watchdog
    /// against non-terminating off-chain programs, which have no gas to stop
    /// them).
    InstructionLimitExceeded {
        /// Configured maximum number of executed instructions.
        limit: u64,
    },
}

impl core::fmt::Display for TrapReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TrapReason::StackOverflow { limit } => write!(f, "stack overflow (limit {limit})"),
            TrapReason::StackUnderflow {
                opcode,
                needed,
                available,
            } => write!(
                f,
                "stack underflow: {opcode:?} needs {needed} items, {available} available"
            ),
            TrapReason::MemoryLimitExceeded { requested, limit } => {
                write!(f, "memory access at {requested} exceeds limit {limit}")
            }
            TrapReason::StorageLimitExceeded { limit } => {
                write!(f, "off-chain storage limit of {limit} bytes exceeded")
            }
            TrapReason::InvalidJump { destination } => {
                write!(f, "jump to invalid destination {destination}")
            }
            TrapReason::UndefinedInstruction { byte } => {
                write!(f, "undefined instruction byte 0x{byte:02x}")
            }
            TrapReason::UnsupportedOpcode { opcode } => {
                write!(f, "opcode {opcode:?} is not supported off-chain")
            }
            TrapReason::InvalidOpcode => write!(f, "INVALID opcode executed"),
            TrapReason::OutOfGas { limit } => write!(f, "out of gas (limit {limit})"),
            TrapReason::CodeSizeExceeded { size, limit } => {
                write!(f, "runtime code of {size} bytes exceeds limit {limit}")
            }
            TrapReason::CallDepthExceeded { limit } => {
                write!(f, "call depth limit {limit} exceeded")
            }
            TrapReason::IotUnavailable { id } => {
                write!(f, "IoT sensor/actuator {id} unavailable")
            }
            TrapReason::StaticModeViolation => {
                write!(f, "state modification inside a static call")
            }
            TrapReason::InstructionLimitExceeded { limit } => {
                write!(f, "instruction budget of {limit} exhausted")
            }
        }
    }
}

/// Top-level execution error: the frame trapped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// Why the machine stopped.
    pub reason: TrapReason,
    /// Program counter at the fault.
    pub pc: usize,
    /// Number of instructions retired before the fault.
    pub instructions_executed: u64,
}

impl core::fmt::Display for ExecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "execution trapped at pc {}: {} (after {} instructions)",
            self.pc, self.reason, self.instructions_executed
        )
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let reasons = vec![
            TrapReason::StackOverflow { limit: 96 },
            TrapReason::StackUnderflow {
                opcode: Opcode::Add,
                needed: 2,
                available: 1,
            },
            TrapReason::MemoryLimitExceeded {
                requested: 9000,
                limit: 8192,
            },
            TrapReason::StorageLimitExceeded { limit: 1024 },
            TrapReason::InvalidJump { destination: 77 },
            TrapReason::UndefinedInstruction { byte: 0x0e },
            TrapReason::UnsupportedOpcode {
                opcode: Opcode::Timestamp,
            },
            TrapReason::InvalidOpcode,
            TrapReason::OutOfGas { limit: 30_000 },
            TrapReason::CodeSizeExceeded {
                size: 9001,
                limit: 8192,
            },
            TrapReason::CallDepthExceeded { limit: 8 },
            TrapReason::IotUnavailable { id: 3 },
            TrapReason::StaticModeViolation,
            TrapReason::InstructionLimitExceeded { limit: 1_000_000 },
        ];
        for reason in reasons {
            let message = format!("{reason}");
            assert!(!message.is_empty());
            let error = ExecError {
                reason: reason.clone(),
                pc: 12,
                instructions_executed: 34,
            };
            let rendered = format!("{error}");
            assert!(rendered.contains("pc 12"));
            assert!(rendered.contains("34 instructions"));
        }
    }
}
