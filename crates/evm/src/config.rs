//! Virtual-machine resource profiles.

use serde::{Deserialize, Serialize};

/// Whether execution charges gas.
///
/// The paper removes gas charging for off-chain execution — "there is no
/// charging for the off-chain computations as all operations are executed
/// locally" — but the on-chain template contract still runs metered on the
/// simulated main chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GasMode {
    /// No gas accounting; an instruction budget guards against
    /// non-termination instead.
    Unmetered,
    /// Classic gas accounting with the given limit.
    Metered {
        /// Gas available to the frame.
        limit: u64,
    },
}

/// Resource limits and behaviour switches for one virtual machine instance.
///
/// Two presets matter in practice: [`EvmConfig::cc2538`] models the paper's
/// OpenMote-B deployment (Table III memory split), and
/// [`EvmConfig::unconstrained`] models a full node for differential testing.
///
/// # Example
///
/// ```
/// use tinyevm_evm::EvmConfig;
///
/// let device = EvmConfig::cc2538();
/// assert_eq!(device.max_code_size, 8 * 1024);
/// assert_eq!(device.max_memory_bytes, 8 * 1024);
/// let full = EvmConfig::unconstrained();
/// assert!(full.max_code_size > device.max_code_size);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvmConfig {
    /// Maximum number of 256-bit stack elements. Ethereum specifies 1024;
    /// the CC2538 profile allocates 3 KB = 96 elements.
    pub max_stack_depth: usize,
    /// Random-access memory budget in bytes (paper: 8 KB).
    pub max_memory_bytes: usize,
    /// Maximum deployable runtime bytecode size in bytes (paper: 8 KB).
    pub max_code_size: usize,
    /// Maximum init-code (constructor) size that can be staged for
    /// deployment. The paper's Figure 3b shows contracts whose shipped
    /// bytecode exceeds 8 KB still deploying because the *final* deployment
    /// stays under 8 KB, so staging is allowed to be larger than the
    /// runtime ceiling (the radio delivers it in fragments).
    pub max_init_code_size: usize,
    /// Off-chain storage budget in bytes (paper: 1 KB).
    pub max_storage_bytes: usize,
    /// Maximum call / create nesting depth.
    pub max_call_depth: usize,
    /// Upper bound on executed instructions per frame; replaces gas as the
    /// termination guard in unmetered mode.
    pub instruction_limit: u64,
    /// Gas behaviour.
    pub gas_mode: GasMode,
    /// When true (TinyEVM off-chain mode), blockchain-information and gas
    /// opcodes trap; when false they return placeholder values, as a full
    /// node context would provide real ones.
    pub off_chain: bool,
    /// When true, disable the per-basic-block batching of gas and
    /// instruction-limit checks and account every opcode individually.
    /// The batched fast path is observationally identical (results, gas,
    /// metrics and trap PCs), so this exists for differential testing and
    /// for benchmarking the batching itself.
    pub per_op_metering: bool,
    /// When true, the deployment path runs the static analyzer over init
    /// and runtime code and refuses statically-rejected contracts before
    /// anything executes. Off by default: the experiment corpus contains
    /// intentionally-malformed contracts whose runtime traps are themselves
    /// the measurement.
    pub validate_on_deploy: bool,
    /// When set, deployment additionally demands a
    /// [`tinyevm_analysis::GasCertificate::Bounded`] proof with
    /// `max_gas` at or below this budget for both init and runtime code.
    /// Contracts whose worst-case cost is unbounded (reachable loop) or
    /// uncertifiable (unresolved jump, subcalls) are refused: admission
    /// requires a proof, not the absence of one. `None` (the default)
    /// disables the gate.
    #[serde(default)]
    pub gas_certificate_budget: Option<u64>,
}

impl EvmConfig {
    /// The CC2538 / OpenMote-B profile used throughout the paper's
    /// evaluation: 3 KB stack, 8 KB RAM, 8 KB code, 1 KB off-chain storage,
    /// unmetered off-chain execution.
    pub fn cc2538() -> Self {
        EvmConfig {
            // 3 KB of 32-byte words.
            max_stack_depth: 96,
            max_memory_bytes: 8 * 1024,
            max_code_size: 8 * 1024,
            max_init_code_size: 26 * 1024,
            max_storage_bytes: 1024,
            max_call_depth: 8,
            instruction_limit: 2_000_000,
            gas_mode: GasMode::Unmetered,
            off_chain: true,
            per_op_metering: false,
            validate_on_deploy: false,
            gas_certificate_budget: None,
        }
    }

    /// An Ethereum-full-node-like profile: spec stack depth, 24 KB code
    /// limit, large memory, metered execution, blockchain opcodes allowed.
    pub fn unconstrained() -> Self {
        EvmConfig {
            max_stack_depth: 1024,
            max_memory_bytes: 16 * 1024 * 1024,
            max_code_size: 24 * 1024,
            max_init_code_size: 48 * 1024,
            max_storage_bytes: 1024 * 1024,
            max_call_depth: 1024,
            instruction_limit: 50_000_000,
            gas_mode: GasMode::Metered { limit: 8_000_000 },
            off_chain: false,
            per_op_metering: false,
            validate_on_deploy: false,
            gas_certificate_budget: None,
        }
    }

    /// Returns a copy with a different code-size limit — used by the
    /// deployment-limit ablation experiment.
    pub fn with_code_limit(mut self, bytes: usize) -> Self {
        self.max_code_size = bytes;
        self
    }

    /// Returns a copy with a different memory budget.
    pub fn with_memory_limit(mut self, bytes: usize) -> Self {
        self.max_memory_bytes = bytes;
        self
    }

    /// Returns a copy with the given gas mode.
    pub fn with_gas_mode(mut self, mode: GasMode) -> Self {
        self.gas_mode = mode;
        self
    }

    /// Returns a copy with per-opcode accounting forced on (the block-batched
    /// fast path disabled).
    pub fn with_per_op_metering(mut self, enabled: bool) -> Self {
        self.per_op_metering = enabled;
        self
    }

    /// Returns a copy with the deploy-time static-analysis gate toggled.
    pub fn with_deploy_validation(mut self, enabled: bool) -> Self {
        self.validate_on_deploy = enabled;
        self
    }

    /// Returns a copy demanding a static worst-case gas proof of at most
    /// `max_gas` from every deployed contract (init and runtime code).
    pub fn with_gas_certificate_budget(mut self, max_gas: u64) -> Self {
        self.gas_certificate_budget = Some(max_gas);
        self
    }
}

impl Default for EvmConfig {
    fn default() -> Self {
        EvmConfig::cc2538()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc2538_matches_paper_allocation() {
        let config = EvmConfig::cc2538();
        assert_eq!(config.max_stack_depth * 32, 3 * 1024); // 3 KB stack
        assert_eq!(config.max_memory_bytes, 8 * 1024);
        assert_eq!(config.max_code_size, 8 * 1024);
        assert_eq!(config.max_storage_bytes, 1024);
        assert_eq!(config.gas_mode, GasMode::Unmetered);
        assert!(config.off_chain);
    }

    #[test]
    fn default_is_the_device_profile() {
        assert_eq!(EvmConfig::default(), EvmConfig::cc2538());
    }

    #[test]
    fn unconstrained_is_larger_everywhere() {
        let device = EvmConfig::cc2538();
        let full = EvmConfig::unconstrained();
        assert!(full.max_stack_depth > device.max_stack_depth);
        assert!(full.max_memory_bytes > device.max_memory_bytes);
        assert!(full.max_code_size > device.max_code_size);
        assert!(!full.off_chain);
        assert!(matches!(full.gas_mode, GasMode::Metered { .. }));
    }

    #[test]
    fn builder_style_overrides() {
        let config = EvmConfig::cc2538()
            .with_code_limit(4096)
            .with_memory_limit(2048)
            .with_gas_mode(GasMode::Metered { limit: 100 });
        assert_eq!(config.max_code_size, 4096);
        assert_eq!(config.max_memory_bytes, 2048);
        assert_eq!(config.gas_mode, GasMode::Metered { limit: 100 });
    }
}
