//! A small EVM assembler and disassembler.
//!
//! The paper's authors write their template and payment-channel contracts in
//! Solidity with inline assembly (Listings 1 and 2). This workspace has no
//! Solidity compiler, so the hand-written contracts, the synthetic corpus
//! and most tests are produced with this assembler instead: a flat list of
//! mnemonics with hex immediates, plus labels for jump targets.
//!
//! Syntax:
//!
//! * mnemonics are case-insensitive: `PUSH1 0x2a`, `add`, `SSTORE`;
//! * `PUSHn` takes a hex immediate (`0x…`) of at most `n` bytes;
//! * `@label:` defines a label at the current byte offset, and
//!   `PUSHLABEL @label` pushes its offset as a 2-byte immediate;
//! * `;` starts a comment that runs to the end of the line.
//!
//! # Example
//!
//! ```
//! use tinyevm_evm::asm::{assemble, disassemble};
//!
//! let code = assemble("PUSH1 0x01 PUSH1 0x02 ADD STOP").unwrap();
//! assert_eq!(code, vec![0x60, 0x01, 0x60, 0x02, 0x01, 0x00]);
//! let listing = disassemble(&code);
//! assert!(listing.contains("ADD"));
//! ```

use std::collections::BTreeMap;

use crate::opcode::Opcode;
use tinyevm_types::hex;

/// Errors produced by the assembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A token was not a known mnemonic.
    UnknownMnemonic(String),
    /// A `PUSHn` was not followed by an immediate.
    MissingImmediate(String),
    /// An immediate could not be parsed as hex.
    BadImmediate(String),
    /// An immediate was wider than the `PUSHn` allows.
    ImmediateTooWide {
        /// The push mnemonic.
        mnemonic: String,
        /// Bytes the immediate decodes to.
        got: usize,
        /// Maximum bytes allowed.
        max: usize,
    },
    /// `PUSHLABEL` referenced a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
}

impl core::fmt::Display for AsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AsmError::UnknownMnemonic(token) => write!(f, "unknown mnemonic {token:?}"),
            AsmError::MissingImmediate(mnemonic) => {
                write!(f, "{mnemonic} requires an immediate operand")
            }
            AsmError::BadImmediate(token) => write!(f, "cannot parse immediate {token:?}"),
            AsmError::ImmediateTooWide { mnemonic, got, max } => {
                write!(f, "{mnemonic} immediate is {got} bytes, maximum {max}")
            }
            AsmError::UndefinedLabel(label) => write!(f, "undefined label {label:?}"),
            AsmError::DuplicateLabel(label) => write!(f, "label {label:?} defined twice"),
        }
    }
}

impl std::error::Error for AsmError {}

/// Assembles a mnemonic listing into bytecode.
///
/// # Errors
///
/// Returns an [`AsmError`] for unknown mnemonics, malformed immediates or
/// label problems.
pub fn assemble(source: &str) -> Result<Vec<u8>, AsmError> {
    let tokens = tokenize(source);
    // Pass 1: compute label offsets.
    let mut labels: BTreeMap<String, usize> = BTreeMap::new();
    let mut offset = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        let token = &tokens[i];
        if let Some(label) = token.strip_prefix('@') {
            if let Some(name) = label.strip_suffix(':') {
                if labels.insert(name.to_string(), offset).is_some() {
                    return Err(AsmError::DuplicateLabel(name.to_string()));
                }
                i += 1;
                continue;
            }
        }
        if token.eq_ignore_ascii_case("PUSHLABEL") {
            offset += 3; // encoded as PUSH2 <hi> <lo>
            i += 2;
            continue;
        }
        let opcode =
            Opcode::from_mnemonic(token).ok_or_else(|| AsmError::UnknownMnemonic(token.clone()))?;
        offset += 1 + opcode.push_bytes();
        if opcode.push_bytes() > 0 {
            i += 2;
        } else {
            i += 1;
        }
    }

    // Pass 2: emit bytes.
    let mut out = Vec::with_capacity(offset);
    let mut i = 0usize;
    while i < tokens.len() {
        let token = &tokens[i];
        if token.starts_with('@') && token.ends_with(':') {
            i += 1;
            continue;
        }
        if token.eq_ignore_ascii_case("PUSHLABEL") {
            let label_token = tokens
                .get(i + 1)
                .ok_or_else(|| AsmError::MissingImmediate(token.clone()))?;
            let name = label_token.strip_prefix('@').unwrap_or(label_token);
            let target = *labels
                .get(name)
                .ok_or_else(|| AsmError::UndefinedLabel(name.to_string()))?;
            out.push(Opcode::Push2.to_byte());
            out.push((target >> 8) as u8);
            out.push(target as u8);
            i += 2;
            continue;
        }
        let opcode =
            Opcode::from_mnemonic(token).ok_or_else(|| AsmError::UnknownMnemonic(token.clone()))?;
        out.push(opcode.to_byte());
        let width = opcode.push_bytes();
        if width > 0 {
            let immediate_token = tokens
                .get(i + 1)
                .ok_or_else(|| AsmError::MissingImmediate(token.clone()))?;
            let immediate = parse_immediate(immediate_token)?;
            if immediate.len() > width {
                return Err(AsmError::ImmediateTooWide {
                    mnemonic: token.clone(),
                    got: immediate.len(),
                    max: width,
                });
            }
            // Left-pad to the push width.
            out.extend(std::iter::repeat(0u8).take(width - immediate.len()));
            out.extend_from_slice(&immediate);
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(out)
}

fn tokenize(source: &str) -> Vec<String> {
    source
        .lines()
        .map(|line| line.split(';').next().unwrap_or(""))
        .flat_map(|line| line.split_whitespace())
        .map(|token| token.to_string())
        .collect()
}

fn parse_immediate(token: &str) -> Result<Vec<u8>, AsmError> {
    let cleaned = token.strip_prefix("0x").unwrap_or(token);
    if cleaned.is_empty() {
        return Err(AsmError::BadImmediate(token.to_string()));
    }
    let padded = if cleaned.len() % 2 == 1 {
        format!("0{cleaned}")
    } else {
        cleaned.to_string()
    };
    hex::decode(&padded).map_err(|_| AsmError::BadImmediate(token.to_string()))
}

/// Disassembles bytecode into one instruction per line
/// (`offset: MNEMONIC [immediate]`).
pub fn disassemble(code: &[u8]) -> String {
    let mut out = String::new();
    let mut pc = 0usize;
    while pc < code.len() {
        let byte = code[pc];
        match Opcode::from_byte(byte) {
            Some(opcode) => {
                let width = opcode.push_bytes();
                if width > 0 {
                    let end = (pc + 1 + width).min(code.len());
                    let immediate = hex::encode(&code[pc + 1..end]);
                    out.push_str(&format!("{pc:04x}: {} 0x{immediate}\n", opcode.info().name));
                    pc = pc + 1 + width;
                } else {
                    out.push_str(&format!("{pc:04x}: {}\n", opcode.info().name));
                    pc += 1;
                }
            }
            None => {
                out.push_str(&format!("{pc:04x}: DATA 0x{byte:02x}\n"));
                pc += 1;
            }
        }
    }
    out
}

/// Builds standard init code that deploys `runtime` verbatim: the
/// constructor copies the runtime code to memory and returns it. This is the
/// same layout `solc` emits, so deployment metrics computed over it match
/// what the device would see for a compiled contract.
pub fn wrap_as_init_code(runtime: &[u8]) -> Vec<u8> {
    // PUSH2 <len> DUP1 PUSH2 <offset> PUSH1 0 CODECOPY PUSH1 0 RETURN <runtime>
    let mut prologue = vec![
        Opcode::Push2.to_byte(),
        0,
        0, // runtime length placeholder
        Opcode::Dup1.to_byte(),
        Opcode::Push2.to_byte(),
        0,
        0, // offset placeholder
        Opcode::Push1.to_byte(),
        0x00,
        Opcode::CodeCopy.to_byte(),
        Opcode::Push1.to_byte(),
        0x00,
        Opcode::Return.to_byte(),
    ];
    let offset = prologue.len();
    let len = runtime.len();
    prologue[1] = (len >> 8) as u8;
    prologue[2] = len as u8;
    prologue[5] = (offset >> 8) as u8;
    prologue[6] = offset as u8;
    prologue.extend_from_slice(runtime);
    prologue
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvmConfig;
    use crate::interpreter::{Evm, ExecOutcome};

    #[test]
    fn assemble_simple_sequence() {
        let code = assemble("PUSH1 0x01 PUSH1 0x02 ADD STOP").unwrap();
        assert_eq!(code, vec![0x60, 0x01, 0x60, 0x02, 0x01, 0x00]);
    }

    #[test]
    fn assemble_is_case_insensitive_and_ignores_comments() {
        let code = assemble("push1 0x2a ; the answer\nsstore").unwrap();
        assert_eq!(code[0], 0x60);
        assert_eq!(code[2], 0x55);
    }

    #[test]
    fn assemble_pads_short_immediates() {
        let code = assemble("PUSH4 0x01").unwrap();
        assert_eq!(code, vec![0x63, 0x00, 0x00, 0x00, 0x01]);
        let code = assemble("PUSH2 0x1").unwrap();
        assert_eq!(code, vec![0x61, 0x00, 0x01]);
    }

    #[test]
    fn assemble_rejects_wide_immediates_and_bad_tokens() {
        assert!(matches!(
            assemble("PUSH1 0x0102"),
            Err(AsmError::ImmediateTooWide { .. })
        ));
        assert_eq!(
            assemble("FROB"),
            Err(AsmError::UnknownMnemonic("FROB".to_string()))
        );
        assert!(matches!(
            assemble("PUSH1 zz"),
            Err(AsmError::BadImmediate(_))
        ));
        assert!(matches!(
            assemble("PUSH1"),
            Err(AsmError::MissingImmediate(_))
        ));
    }

    #[test]
    fn labels_resolve_to_offsets() {
        let source = "
            PUSHLABEL @end JUMP
            PUSH1 0xff PUSH1 0xff
            @end: JUMPDEST STOP
        ";
        let code = assemble(source).unwrap();
        // PUSH2(3) JUMP(1) PUSH1 PUSH1 (4) -> label at 8.
        assert_eq!(code[0], 0x61);
        assert_eq!(code[2], 8);
        assert_eq!(code[8], 0x5b);
        // And it actually runs: the junk pushes are skipped.
        let result = Evm::new(EvmConfig::cc2538()).execute(&code, &[]).unwrap();
        assert_eq!(result.outcome, ExecOutcome::Stop);
        assert_eq!(result.metrics.instructions, 4);
    }

    #[test]
    fn duplicate_and_undefined_labels_error() {
        assert_eq!(
            assemble("@a: JUMPDEST @a: JUMPDEST"),
            Err(AsmError::DuplicateLabel("a".to_string()))
        );
        assert_eq!(
            assemble("PUSHLABEL @missing"),
            Err(AsmError::UndefinedLabel("missing".to_string()))
        );
    }

    #[test]
    fn disassemble_round_trips_mnemonics() {
        let code = assemble("PUSH1 0x2a PUSH2 0xbeef ADD SSTORE STOP").unwrap();
        let listing = disassemble(&code);
        assert!(listing.contains("PUSH1 0x2a"));
        assert!(listing.contains("PUSH2 0xbeef"));
        assert!(listing.contains("ADD"));
        assert!(listing.contains("SSTORE"));
        assert!(listing.contains("STOP"));
    }

    #[test]
    fn disassemble_marks_undefined_bytes() {
        let listing = disassemble(&[0x01, 0x0d, 0x00]);
        assert!(listing.contains("DATA 0x0d"));
    }

    #[test]
    fn disassemble_handles_truncated_push() {
        // PUSH32 with only 2 immediate bytes present.
        let listing = disassemble(&[0x7f, 0xaa, 0xbb]);
        assert!(listing.contains("PUSH32 0xaabb"));
    }

    #[test]
    fn wrap_as_init_code_deploys_runtime_exactly() {
        let runtime =
            assemble("PUSH1 0x2a PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN").unwrap();
        let init = wrap_as_init_code(&runtime);
        let result = Evm::new(EvmConfig::cc2538()).execute(&init, &[]).unwrap();
        assert_eq!(result.outcome, ExecOutcome::Return);
        assert_eq!(result.output, runtime);
    }

    #[test]
    fn wrap_as_init_code_of_empty_runtime() {
        let init = wrap_as_init_code(&[]);
        let result = Evm::new(EvmConfig::cc2538()).execute(&init, &[]).unwrap();
        assert_eq!(result.outcome, ExecOutcome::Return);
        assert!(result.output.is_empty());
    }
}
