//! The host interface: what a running contract can see of the world
//! outside its own frame.
//!
//! During *off-chain* execution on the IoT device there is no blockchain to
//! ask, but a contract may still call sibling contracts that were deployed
//! into the device's local side-chain (the factory template creating payment
//! channels is exactly that pattern), query balances that the device tracks
//! locally, and emit logs that become part of the side-chain record. The
//! [`Host`] trait captures those capabilities; [`ContractStore`] is the
//! in-memory implementation used both by the device runtime and by the
//! main-chain simulator.

use std::collections::BTreeMap;

use tinyevm_analysis::AnalysisCache;
use tinyevm_trace::TraceHandle;
use tinyevm_types::{Address, U256};

use crate::config::EvmConfig;
use crate::interpreter::{CallContext, Evm, ExecOutcome};
use crate::iot::IotEnvironment;
use crate::metrics::ExecMetrics;
use crate::storage::{StorageBackend, WordStorage};

/// The kind of message call being made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// Ordinary `CALL`: callee runs with its own storage and address.
    Call,
    /// `DELEGATECALL` / `CALLCODE`: callee code runs in the caller's context.
    Delegate,
    /// `STATICCALL`: like `Call` but state changes are forbidden.
    Static,
}

/// A request from the interpreter to perform a nested call.
#[derive(Debug, Clone)]
pub struct CallRequest {
    /// What kind of call.
    pub kind: CallKind,
    /// The calling contract.
    pub caller: Address,
    /// The target address whose code runs.
    pub target: Address,
    /// The address whose storage / identity is used (differs from `target`
    /// for delegate calls).
    pub context_address: Address,
    /// Value transferred (zero for static and delegate calls).
    pub value: U256,
    /// Call data.
    pub input: Vec<u8>,
    /// Remaining call-depth budget (already decremented by the caller).
    pub depth_remaining: usize,
}

/// Result of a nested call or create.
#[derive(Debug, Clone)]
pub struct CallOutcome {
    /// True when the callee returned normally (not reverted / trapped).
    pub success: bool,
    /// Return or revert data.
    pub output: Vec<u8>,
    /// Metrics of the nested frame, absorbed into the caller's metrics.
    pub metrics: ExecMetrics,
    /// Address of the created contract (create operations only).
    pub created: Option<Address>,
}

impl CallOutcome {
    /// A failed outcome with no output.
    pub fn failure() -> Self {
        CallOutcome {
            success: false,
            output: Vec::new(),
            metrics: ExecMetrics::new(),
            created: None,
        }
    }
}

/// A log record emitted by `LOG0`..`LOG4`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Emitting contract.
    pub address: Address,
    /// Indexed topics (0 to 4).
    pub topics: Vec<U256>,
    /// Unindexed payload.
    pub data: Vec<u8>,
}

/// What a contract frame may ask of its environment.
pub trait Host {
    /// Balance of an account in the host's ledger.
    fn balance(&self, address: &Address) -> U256;

    /// Code of an account (empty if none).
    fn code(&self, address: &Address) -> Vec<u8>;

    /// Performs a nested message call.
    fn call(&mut self, request: CallRequest, iot: &mut dyn IotEnvironment) -> CallOutcome;

    /// Deploys a new contract from init code, returning the outcome with
    /// `created` set on success.
    fn create(
        &mut self,
        creator: Address,
        value: U256,
        init_code: &[u8],
        depth_remaining: usize,
        iot: &mut dyn IotEnvironment,
    ) -> CallOutcome;

    /// Records a log entry.
    fn emit_log(&mut self, entry: LogEntry);

    /// Records a self-destruct of `address` sending its balance to
    /// `beneficiary`.
    fn selfdestruct(&mut self, address: Address, beneficiary: Address);
}

/// A host with no accounts: balances are zero, there is no external code,
/// calls and creates fail. Stand-alone contract execution (the corpus
/// deployment experiment) uses this.
#[derive(Debug, Clone, Default)]
pub struct NullHost {
    logs: Vec<LogEntry>,
}

impl NullHost {
    /// Creates an empty null host.
    pub fn new() -> Self {
        Self::default()
    }

    /// Logs emitted so far.
    pub fn logs(&self) -> &[LogEntry] {
        &self.logs
    }
}

impl Host for NullHost {
    fn balance(&self, _address: &Address) -> U256 {
        U256::ZERO
    }

    fn code(&self, _address: &Address) -> Vec<u8> {
        Vec::new()
    }

    fn call(&mut self, _request: CallRequest, _iot: &mut dyn IotEnvironment) -> CallOutcome {
        CallOutcome::failure()
    }

    fn create(
        &mut self,
        _creator: Address,
        _value: U256,
        _init_code: &[u8],
        _depth_remaining: usize,
        _iot: &mut dyn IotEnvironment,
    ) -> CallOutcome {
        CallOutcome::failure()
    }

    fn emit_log(&mut self, entry: LogEntry) {
        self.logs.push(entry);
    }

    fn selfdestruct(&mut self, _address: Address, _beneficiary: Address) {}
}

/// Outcome of one nested frame run by [`ContractStore`].
struct FrameResult {
    success: bool,
    returned: bool,
    output: Vec<u8>,
    metrics: ExecMetrics,
}

/// One account in a [`ContractStore`].
#[derive(Debug, Clone, Default)]
struct AccountState {
    balance: U256,
    code: Vec<u8>,
    storage: WordStorage,
    destroyed: bool,
}

/// An in-memory world of accounts, code, balances and storage.
///
/// This is the substrate used both by the device (its local side-chain
/// contract registry: the template and the payment channels it spawns) and
/// by the main-chain simulator in `tinyevm-chain`. Nested calls recursively
/// run a fresh [`Evm`] over the callee's code.
///
/// # Example
///
/// ```
/// use tinyevm_evm::{asm, ContractStore, EvmConfig};
/// use tinyevm_types::{Address, U256};
///
/// let mut world = ContractStore::new(EvmConfig::cc2538());
/// let owner = Address::from_low_u64(1);
/// world.credit(owner, U256::from(1_000u64));
/// assert_eq!(world.balance_of(&owner), U256::from(1_000u64));
/// ```
#[derive(Debug, Clone)]
pub struct ContractStore {
    config: EvmConfig,
    accounts: BTreeMap<Address, AccountState>,
    logs: Vec<LogEntry>,
    create_nonce: u64,
    /// Per-code-hash cache of static analyses: every contract in the world
    /// is analyzed once, on its first execution, no matter how many frames
    /// run it afterwards.
    analyses: AnalysisCache,
    tracer: TraceHandle,
}

impl ContractStore {
    /// Creates an empty world that runs nested frames with `config`.
    pub fn new(config: EvmConfig) -> Self {
        ContractStore {
            config,
            accounts: BTreeMap::new(),
            logs: Vec::new(),
            create_nonce: 0,
            analyses: AnalysisCache::new(),
            tracer: TraceHandle::default(),
        }
    }

    /// Attaches a tracer: nested frames publish per-call events and the
    /// analysis cache publishes hit/miss counters. The default handle is a
    /// no-op.
    pub fn set_tracer(&mut self, tracer: TraceHandle) {
        self.tracer = tracer;
    }

    /// The store's static-analysis cache (hit/miss counters included).
    pub fn analysis_cache(&self) -> &AnalysisCache {
        &self.analyses
    }

    /// The configuration nested frames run with.
    pub fn config(&self) -> &EvmConfig {
        &self.config
    }

    /// Adds `amount` to an account balance (creating the account).
    pub fn credit(&mut self, address: Address, amount: U256) {
        let account = self.accounts.entry(address).or_default();
        account.balance = account.balance.wrapping_add(amount);
    }

    /// Balance of an account.
    pub fn balance_of(&self, address: &Address) -> U256 {
        self.accounts
            .get(address)
            .map(|a| a.balance)
            .unwrap_or(U256::ZERO)
    }

    /// Installs runtime code at an address directly (without running init
    /// code); returns the previous code if any.
    pub fn install_code(&mut self, address: Address, code: Vec<u8>) -> Vec<u8> {
        let account = self.accounts.entry(address).or_default();
        std::mem::replace(&mut account.code, code)
    }

    /// Reads the runtime code at an address.
    pub fn code_of(&self, address: &Address) -> Vec<u8> {
        self.accounts
            .get(address)
            .map(|a| a.code.clone())
            .unwrap_or_default()
    }

    /// Reads one storage slot of an account.
    pub fn storage_of(&self, address: &Address, key: U256) -> U256 {
        self.accounts
            .get(address)
            .map(|a| a.storage.load(key))
            .unwrap_or(U256::ZERO)
    }

    /// Writes one storage slot of an account directly.
    pub fn set_storage(&mut self, address: Address, key: U256, value: U256) {
        let account = self.accounts.entry(address).or_default();
        // WordStorage::store never fails.
        let _ = account.storage.store(key, value);
    }

    /// Logs emitted by all executed frames.
    pub fn logs(&self) -> &[LogEntry] {
        &self.logs
    }

    /// True if the account executed `SELFDESTRUCT`.
    pub fn is_destroyed(&self, address: &Address) -> bool {
        self.accounts
            .get(address)
            .map(|a| a.destroyed)
            .unwrap_or(false)
    }

    /// Moves value between accounts; returns false (and does nothing) when
    /// the sender's balance is insufficient.
    pub fn transfer(&mut self, from: &Address, to: &Address, value: U256) -> bool {
        if value.is_zero() {
            return true;
        }
        let from_balance = self.balance_of(from);
        if from_balance < value {
            return false;
        }
        self.accounts.entry(*from).or_default().balance = from_balance.wrapping_sub(value);
        let to_account = self.accounts.entry(*to).or_default();
        to_account.balance = to_account.balance.wrapping_add(value);
        true
    }

    /// Deterministic address for the next created contract.
    fn derive_create_address(&mut self, creator: &Address) -> Address {
        self.create_nonce += 1;
        let mut data = Vec::with_capacity(28);
        data.extend_from_slice(creator.as_bytes());
        data.extend_from_slice(&self.create_nonce.to_be_bytes());
        let digest = tinyevm_crypto::keccak256_h256(&data);
        Address::from_hash(&digest)
    }

    /// Runs `target`'s code in a fresh frame. Used by `call` and by the
    /// chain simulator to invoke contract functions from transactions.
    pub fn execute_contract(
        &mut self,
        caller: Address,
        target: Address,
        value: U256,
        input: &[u8],
        iot: &mut dyn IotEnvironment,
    ) -> CallOutcome {
        let request = CallRequest {
            kind: CallKind::Call,
            caller,
            target,
            context_address: target,
            value,
            input: input.to_vec(),
            depth_remaining: self.config.max_call_depth,
        };
        self.call(request, iot)
    }

    fn run_frame(
        &mut self,
        code: &[u8],
        context: CallContext,
        storage_address: Address,
        static_mode: bool,
        depth_remaining: usize,
        iot: &mut dyn IotEnvironment,
    ) -> FrameResult {
        // Detach the storage of the context account so the interpreter can
        // borrow both the storage and the host (self) mutably.
        let mut storage = self
            .accounts
            .entry(storage_address)
            .or_default()
            .storage
            .clone();
        // Look the analysis up (an Arc clone) before handing `self` to the
        // interpreter as the host.
        let misses_before = self.analyses.misses();
        let evictions_before = self.analyses.evictions();
        let analysis = self.analyses.analyze(code);
        if self.tracer.enabled() {
            if self.analyses.misses() > misses_before {
                self.tracer.count("evm.analysis_cache.misses", 1);
                // A miss ran the full analyzer: surface what the symbolic
                // pass concluded about this (previously unseen) code.
                self.tracer.count("analysis.verdicts", 1);
                let resolved = analysis.resolved_jumps().len() as u64;
                if resolved > 0 {
                    self.tracer.count("analysis.resolved_jumps", resolved);
                }
                if analysis.gas_certificate().is_bounded() {
                    self.tracer.count("analysis.certificates", 1);
                }
            } else {
                self.tracer.count("evm.analysis_cache.hits", 1);
            }
            let evicted = self.analyses.evictions() - evictions_before;
            if evicted > 0 {
                self.tracer.count("evm.analysis_cache.evictions", evicted);
            }
            self.tracer
                .gauge("evm.analysis_cache.entries", self.analyses.len() as f64);
        }
        let mut evm = Evm::new(self.config.clone()).with_tracer(self.tracer.clone());
        let result = evm.execute_analyzed(
            code,
            &analysis,
            context,
            &mut storage,
            self,
            iot,
            static_mode,
            depth_remaining,
        );
        match result {
            Ok(exec) => {
                let revert = exec.outcome == ExecOutcome::Revert;
                if !revert && !static_mode {
                    self.accounts.entry(storage_address).or_default().storage = storage;
                }
                FrameResult {
                    success: exec.outcome != ExecOutcome::Revert,
                    returned: exec.outcome == ExecOutcome::Return,
                    output: exec.output,
                    metrics: exec.metrics,
                }
            }
            Err(error) => {
                let mut metrics = ExecMetrics::new();
                metrics.instructions = error.instructions_executed;
                FrameResult {
                    success: false,
                    returned: false,
                    output: Vec::new(),
                    metrics,
                }
            }
        }
    }
}

impl Host for ContractStore {
    fn balance(&self, address: &Address) -> U256 {
        self.balance_of(address)
    }

    fn code(&self, address: &Address) -> Vec<u8> {
        self.code_of(address)
    }

    fn call(&mut self, request: CallRequest, iot: &mut dyn IotEnvironment) -> CallOutcome {
        if request.depth_remaining == 0 {
            return CallOutcome::failure();
        }
        let code = self.code_of(&request.target);
        if code.is_empty() {
            // Calling an account without code is a plain value transfer.
            let ok = self.transfer(&request.caller, &request.target, request.value);
            return CallOutcome {
                success: ok,
                output: Vec::new(),
                metrics: ExecMetrics::new(),
                created: None,
            };
        }
        if !request.value.is_zero()
            && !self.transfer(&request.caller, &request.context_address, request.value)
        {
            return CallOutcome::failure();
        }
        let static_mode = request.kind == CallKind::Static;
        let context = CallContext {
            address: request.context_address,
            caller: request.caller,
            origin: request.caller,
            call_value: request.value,
            call_data: request.input.clone(),
        };
        let frame = self.run_frame(
            &code,
            context,
            request.context_address,
            static_mode,
            request.depth_remaining - 1,
            iot,
        );
        CallOutcome {
            success: frame.success,
            output: frame.output,
            metrics: frame.metrics,
            created: None,
        }
    }

    fn create(
        &mut self,
        creator: Address,
        value: U256,
        init_code: &[u8],
        depth_remaining: usize,
        iot: &mut dyn IotEnvironment,
    ) -> CallOutcome {
        if depth_remaining == 0 {
            return CallOutcome::failure();
        }
        let new_address = self.derive_create_address(&creator);
        if !value.is_zero() && !self.transfer(&creator, &new_address, value) {
            return CallOutcome::failure();
        }
        let context = CallContext {
            address: new_address,
            caller: creator,
            origin: creator,
            call_value: value,
            call_data: Vec::new(),
        };
        let frame = self.run_frame(
            init_code,
            context,
            new_address,
            false,
            depth_remaining - 1,
            iot,
        );
        if !frame.success || !frame.returned || frame.output.len() > self.config.max_code_size {
            return CallOutcome {
                success: false,
                output: Vec::new(),
                metrics: frame.metrics,
                created: None,
            };
        }
        // Deploy-time gate: a world with validation enabled refuses to
        // install statically-rejected runtime code, and a world with a gas
        // budget demands a bounded worst-case-cost proof within it.
        if self.config.validate_on_deploy || self.config.gas_certificate_budget.is_some() {
            let analysis = self.analyses.analyze(&frame.output);
            let rejected = self.config.validate_on_deploy && analysis.verdict().is_rejected();
            let over_budget = self
                .config
                .gas_certificate_budget
                .is_some_and(|budget| !analysis.gas_certificate().within_gas_budget(budget));
            if rejected || over_budget {
                return CallOutcome {
                    success: false,
                    output: Vec::new(),
                    metrics: frame.metrics,
                    created: None,
                };
            }
        }
        self.install_code(new_address, frame.output.clone());
        CallOutcome {
            success: true,
            output: frame.output,
            metrics: frame.metrics,
            created: Some(new_address),
        }
    }

    fn emit_log(&mut self, entry: LogEntry) {
        self.logs.push(entry);
    }

    fn selfdestruct(&mut self, address: Address, beneficiary: Address) {
        let balance = self.balance_of(&address);
        let _ = self.transfer(&address, &beneficiary, balance);
        if let Some(account) = self.accounts.get_mut(&address) {
            account.destroyed = true;
            account.code.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iot::NullIotEnvironment;

    fn store() -> ContractStore {
        ContractStore::new(EvmConfig::cc2538())
    }

    #[test]
    fn credit_and_balance() {
        let mut world = store();
        let a = Address::from_low_u64(1);
        assert_eq!(world.balance_of(&a), U256::ZERO);
        world.credit(a, U256::from(500u64));
        world.credit(a, U256::from(100u64));
        assert_eq!(world.balance_of(&a), U256::from(600u64));
    }

    #[test]
    fn transfer_requires_funds() {
        let mut world = store();
        let a = Address::from_low_u64(1);
        let b = Address::from_low_u64(2);
        world.credit(a, U256::from(10u64));
        assert!(!world.transfer(&a, &b, U256::from(11u64)));
        assert!(world.transfer(&a, &b, U256::from(4u64)));
        assert_eq!(world.balance_of(&a), U256::from(6u64));
        assert_eq!(world.balance_of(&b), U256::from(4u64));
        assert!(world.transfer(&a, &b, U256::ZERO));
    }

    #[test]
    fn install_and_read_code() {
        let mut world = store();
        let a = Address::from_low_u64(7);
        assert!(world.code_of(&a).is_empty());
        let previous = world.install_code(a, vec![0x60, 0x00]);
        assert!(previous.is_empty());
        assert_eq!(world.code_of(&a), vec![0x60, 0x00]);
    }

    #[test]
    fn storage_accessors() {
        let mut world = store();
        let a = Address::from_low_u64(9);
        world.set_storage(a, U256::from(1u64), U256::from(42u64));
        assert_eq!(world.storage_of(&a, U256::from(1u64)), U256::from(42u64));
        assert_eq!(world.storage_of(&a, U256::from(2u64)), U256::ZERO);
    }

    #[test]
    fn call_to_empty_account_is_a_transfer() {
        let mut world = store();
        let a = Address::from_low_u64(1);
        let b = Address::from_low_u64(2);
        world.credit(a, U256::from(100u64));
        let outcome = world.execute_contract(a, b, U256::from(25u64), &[], &mut NullIotEnvironment);
        assert!(outcome.success);
        assert_eq!(world.balance_of(&b), U256::from(25u64));
    }

    #[test]
    fn null_host_fails_calls_and_creates() {
        let mut host = NullHost::new();
        let outcome = host.call(
            CallRequest {
                kind: CallKind::Call,
                caller: Address::ZERO,
                target: Address::from_low_u64(5),
                context_address: Address::from_low_u64(5),
                value: U256::ZERO,
                input: Vec::new(),
                depth_remaining: 4,
            },
            &mut NullIotEnvironment,
        );
        assert!(!outcome.success);
        let created = host.create(
            Address::ZERO,
            U256::ZERO,
            &[0x00],
            4,
            &mut NullIotEnvironment,
        );
        assert!(!created.success);
        assert_eq!(host.balance(&Address::ZERO), U256::ZERO);
        assert!(host.code(&Address::ZERO).is_empty());
        host.emit_log(LogEntry {
            address: Address::ZERO,
            topics: vec![],
            data: vec![1],
        });
        assert_eq!(host.logs().len(), 1);
    }

    #[test]
    fn selfdestruct_moves_balance_and_clears_code() {
        let mut world = store();
        let contract = Address::from_low_u64(3);
        let heir = Address::from_low_u64(4);
        world.credit(contract, U256::from(77u64));
        world.install_code(contract, vec![0x00]);
        world.selfdestruct(contract, heir);
        assert_eq!(world.balance_of(&heir), U256::from(77u64));
        assert!(world.is_destroyed(&contract));
        assert!(world.code_of(&contract).is_empty());
        assert!(!world.is_destroyed(&heir));
    }

    #[test]
    fn repeated_calls_analyze_code_once() {
        let mut world = store();
        let caller = Address::from_low_u64(1);
        let contract = Address::from_low_u64(2);
        // PUSH1 0x2a, PUSH1 0x00, MSTORE, PUSH1 0x20, PUSH1 0x00, RETURN
        world.install_code(
            contract,
            vec![0x60, 0x2a, 0x60, 0x00, 0x52, 0x60, 0x20, 0x60, 0x00, 0xf3],
        );
        const CALLS: u64 = 16;
        for _ in 0..CALLS {
            let outcome =
                world.execute_contract(caller, contract, U256::ZERO, &[], &mut NullIotEnvironment);
            assert!(outcome.success);
            assert_eq!(outcome.output[31], 0x2a);
        }
        let cache = world.analysis_cache();
        assert_eq!(
            cache.misses(),
            1,
            "the contract must be analyzed exactly once"
        );
        assert_eq!(cache.hits(), CALLS - 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn create_gate_refuses_rejected_runtime_code() {
        // Init code returning the 4-byte runtime "PUSH1 0x05 JUMP STOP",
        // whose jump target lands in the middle of the push immediate:
        //   PUSH4 0x60055600  PUSH1 0x00  MSTORE  PUSH1 0x04  PUSH1 0x1c  RETURN
        let init_code = vec![
            0x63, 0x60, 0x05, 0x56, 0x00, 0x60, 0x00, 0x52, 0x60, 0x04, 0x60, 0x1c, 0xf3,
        ];
        let creator = Address::from_low_u64(9);

        let mut open = store();
        let outcome = open.create(creator, U256::ZERO, &init_code, 4, &mut NullIotEnvironment);
        assert!(outcome.success, "an unvalidated world installs the code");
        let deployed = outcome.created.expect("address");
        assert_eq!(open.code_of(&deployed), vec![0x60, 0x05, 0x56, 0x00]);

        let mut gated = ContractStore::new(EvmConfig::cc2538().with_deploy_validation(true));
        let outcome = gated.create(creator, U256::ZERO, &init_code, 4, &mut NullIotEnvironment);
        assert!(
            !outcome.success,
            "the gated world must refuse the runtime code"
        );
        assert!(outcome.created.is_none());
    }

    #[test]
    fn create_addresses_are_unique() {
        let mut world = store();
        let creator = Address::from_low_u64(1);
        let a = world.derive_create_address(&creator);
        let b = world.derive_create_address(&creator);
        assert_ne!(a, b);
    }
}
