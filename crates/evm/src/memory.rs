//! Byte-addressed execution memory with a hard device budget.

use crate::error::TrapReason;
use tinyevm_types::U256;

/// The EVM's volatile, byte-addressed memory, bounded by the device's RAM
/// budget (8 KB in the CC2538 profile) and instrumented with the high-water
/// mark reported in the paper's Figure 3b.
///
/// Unlike mainnet EVMs, exceeding the budget is not a matter of quadratic
/// gas — it is a hard trap, because the physical RAM simply is not there.
///
/// # Example
///
/// ```
/// use tinyevm_evm::memory::Memory;
/// use tinyevm_types::U256;
///
/// let mut memory = Memory::new(1024);
/// memory.store_word(0, U256::from(7u64)).unwrap();
/// assert_eq!(memory.load_word(0).unwrap(), U256::from(7u64));
/// assert_eq!(memory.high_water_mark(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    limit: usize,
    high_water_mark: usize,
}

impl Memory {
    /// Creates empty memory with the given byte budget.
    pub fn new(limit: usize) -> Self {
        Memory {
            bytes: Vec::new(),
            limit,
            high_water_mark: 0,
        }
    }

    /// Current size in bytes (what `MSIZE` reports), word-aligned.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Largest extent ever touched, in bytes.
    pub fn high_water_mark(&self) -> usize {
        self.high_water_mark
    }

    /// The configured budget in bytes.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Ensures `offset + len` bytes are addressable, growing (word-aligned)
    /// if needed.
    ///
    /// # Errors
    ///
    /// Returns [`TrapReason::MemoryLimitExceeded`] when the extent would
    /// exceed the budget.
    pub fn expand(&mut self, offset: usize, len: usize) -> Result<(), TrapReason> {
        if len == 0 {
            return Ok(());
        }
        let end = offset
            .checked_add(len)
            .ok_or(TrapReason::MemoryLimitExceeded {
                requested: usize::MAX,
                limit: self.limit,
            })?;
        if end > self.limit {
            return Err(TrapReason::MemoryLimitExceeded {
                requested: end,
                limit: self.limit,
            });
        }
        if end > self.bytes.len() {
            // Word-align growth like the EVM's 32-byte memory expansion.
            let aligned = end.div_ceil(32) * 32;
            self.bytes.resize(aligned.min(self.limit), 0);
        }
        self.high_water_mark = self.high_water_mark.max(end);
        Ok(())
    }

    /// Reads a 32-byte word at `offset`.
    ///
    /// # Errors
    ///
    /// Returns a memory-limit trap if the access is out of budget.
    pub fn load_word(&mut self, offset: usize) -> Result<U256, TrapReason> {
        self.expand(offset, 32)?;
        let mut buf = [0u8; 32];
        buf.copy_from_slice(&self.bytes[offset..offset + 32]);
        Ok(U256::from_be_bytes(buf))
    }

    /// Writes a 32-byte word at `offset`.
    ///
    /// # Errors
    ///
    /// Returns a memory-limit trap if the access is out of budget.
    pub fn store_word(&mut self, offset: usize, value: U256) -> Result<(), TrapReason> {
        self.expand(offset, 32)?;
        self.bytes[offset..offset + 32].copy_from_slice(&value.to_be_bytes());
        Ok(())
    }

    /// Writes a single byte at `offset` (`MSTORE8`).
    ///
    /// # Errors
    ///
    /// Returns a memory-limit trap if the access is out of budget.
    pub fn store_byte(&mut self, offset: usize, value: u8) -> Result<(), TrapReason> {
        self.expand(offset, 1)?;
        self.bytes[offset] = value;
        Ok(())
    }

    /// Copies `data` into memory at `offset`, zero-padding is not applied —
    /// use [`Memory::copy_padded`] for the `*COPY` opcodes.
    ///
    /// # Errors
    ///
    /// Returns a memory-limit trap if the destination is out of budget.
    pub fn store_slice(&mut self, offset: usize, data: &[u8]) -> Result<(), TrapReason> {
        if data.is_empty() {
            return Ok(());
        }
        self.expand(offset, data.len())?;
        self.bytes[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Implements the EVM copy semantics: copies `len` bytes of `source`
    /// starting at `source_offset` into memory at `dest_offset`, treating
    /// out-of-range source bytes as zero.
    ///
    /// # Errors
    ///
    /// Returns a memory-limit trap if the destination is out of budget.
    pub fn copy_padded(
        &mut self,
        dest_offset: usize,
        source: &[u8],
        source_offset: usize,
        len: usize,
    ) -> Result<(), TrapReason> {
        if len == 0 {
            return Ok(());
        }
        self.expand(dest_offset, len)?;
        for i in 0..len {
            let byte = source.get(source_offset + i).copied().unwrap_or(0);
            self.bytes[dest_offset + i] = byte;
        }
        Ok(())
    }

    /// Reads `len` bytes starting at `offset`.
    ///
    /// # Errors
    ///
    /// Returns a memory-limit trap if the extent is out of budget.
    pub fn load_slice(&mut self, offset: usize, len: usize) -> Result<Vec<u8>, TrapReason> {
        if len == 0 {
            return Ok(Vec::new());
        }
        self.expand(offset, len)?;
        Ok(self.bytes[offset..offset + len].to_vec())
    }

    /// Borrow of the raw backing bytes (for tests and tracing).
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let memory = Memory::new(1024);
        assert_eq!(memory.size(), 0);
        assert_eq!(memory.high_water_mark(), 0);
        assert_eq!(memory.limit(), 1024);
    }

    #[test]
    fn word_round_trip_and_alignment() {
        let mut memory = Memory::new(1024);
        let value = U256::from(0xdead_beefu64);
        memory.store_word(10, value).unwrap();
        assert_eq!(memory.load_word(10).unwrap(), value);
        // Size is word-aligned: 10 + 32 = 42 -> 64.
        assert_eq!(memory.size(), 64);
        assert_eq!(memory.high_water_mark(), 42);
    }

    #[test]
    fn store_byte() {
        let mut memory = Memory::new(64);
        memory.store_byte(5, 0xab).unwrap();
        assert_eq!(memory.as_slice()[5], 0xab);
        let word = memory.load_word(0).unwrap();
        assert_eq!(word.byte_be(5), 0xab);
    }

    #[test]
    fn limit_is_a_hard_trap() {
        let mut memory = Memory::new(64);
        assert!(memory.store_word(32, U256::ONE).is_ok());
        let err = memory.store_word(40, U256::ONE).unwrap_err();
        assert_eq!(
            err,
            TrapReason::MemoryLimitExceeded {
                requested: 72,
                limit: 64
            }
        );
        // Reads past the limit trap too.
        assert!(memory.load_word(60).is_err());
    }

    #[test]
    fn zero_length_operations_do_not_expand() {
        let mut memory = Memory::new(32);
        memory.expand(1_000_000, 0).unwrap();
        memory.store_slice(1_000_000, &[]).unwrap();
        memory.copy_padded(1_000_000, &[1, 2, 3], 0, 0).unwrap();
        assert_eq!(memory.load_slice(500, 0).unwrap(), Vec::<u8>::new());
        assert_eq!(memory.size(), 0);
    }

    #[test]
    fn copy_padded_zero_fills_out_of_range_source() {
        let mut memory = Memory::new(64);
        memory.copy_padded(0, &[1, 2, 3], 1, 5).unwrap();
        assert_eq!(&memory.as_slice()[..5], &[2, 3, 0, 0, 0]);
        // Source entirely out of range is all zeros.
        memory.copy_padded(8, &[1, 2, 3], 10, 4).unwrap();
        assert_eq!(&memory.as_slice()[8..12], &[0, 0, 0, 0]);
    }

    #[test]
    fn slice_round_trip() {
        let mut memory = Memory::new(128);
        memory.store_slice(3, b"tinyevm").unwrap();
        assert_eq!(memory.load_slice(3, 7).unwrap(), b"tinyevm");
    }

    #[test]
    fn offset_overflow_is_caught() {
        let mut memory = Memory::new(64);
        let err = memory.expand(usize::MAX, 2).unwrap_err();
        assert!(matches!(err, TrapReason::MemoryLimitExceeded { .. }));
    }

    #[test]
    fn high_water_mark_is_monotonic() {
        let mut memory = Memory::new(1024);
        memory.store_word(100, U256::ONE).unwrap();
        memory.store_word(0, U256::ONE).unwrap();
        assert_eq!(memory.high_water_mark(), 132);
    }
}
