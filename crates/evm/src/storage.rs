//! Contract storage: the full 256-bit map used on-chain and TinyEVM's
//! compact 8-bit-keyed side-chain store used off-chain.
//!
//! The paper's Table I lists "storage space: 256-bit (EVM) vs 8-bit
//! (TinyEVM)". The observation behind it: the off-chain payment-channel
//! contract only needs a handful of storage slots (balances, the sequence
//! number, the latest sensor reading), so addressing them with a single
//! byte and capping the store at 1 KB keeps the whole thing in a corner of
//! the device's RAM while remaining a strict functional subset of `SSTORE`
//! / `SLOAD`.

use std::collections::BTreeMap;

use crate::error::TrapReason;
use tinyevm_types::U256;

/// Storage abstraction used by the interpreter for `SLOAD` / `SSTORE`.
pub trait StorageBackend {
    /// Reads the word at `key` (zero when absent).
    fn load(&self, key: U256) -> U256;
    /// Writes `value` at `key`.
    ///
    /// # Errors
    ///
    /// Returns a trap when the backend's capacity is exhausted.
    fn store(&mut self, key: U256, value: U256) -> Result<(), TrapReason>;
    /// Number of occupied slots.
    fn slot_count(&self) -> usize;
    /// Approximate resident size in bytes (keys + values), the quantity
    /// charged against the device budget.
    fn resident_bytes(&self) -> usize;
}

/// Full-width storage: 256-bit keys, unbounded (used for the on-chain
/// template contract executed by the chain simulator).
#[derive(Debug, Clone, Default)]
pub struct WordStorage {
    slots: BTreeMap<U256, U256>,
}

impl WordStorage {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Iterates over occupied slots in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&U256, &U256)> {
        self.slots.iter()
    }
}

impl StorageBackend for WordStorage {
    fn load(&self, key: U256) -> U256 {
        self.slots.get(&key).copied().unwrap_or(U256::ZERO)
    }

    fn store(&mut self, key: U256, value: U256) -> Result<(), TrapReason> {
        if value.is_zero() {
            self.slots.remove(&key);
        } else {
            self.slots.insert(key, value);
        }
        Ok(())
    }

    fn slot_count(&self) -> usize {
        self.slots.len()
    }

    fn resident_bytes(&self) -> usize {
        self.slots.len() * 64
    }
}

/// TinyEVM's off-chain side-chain storage: keys are truncated to 8 bits and
/// the resident size is capped (1 KB in the CC2538 profile).
///
/// # Example
///
/// ```
/// use tinyevm_evm::{SideChainStorage, storage::StorageBackend};
/// use tinyevm_types::U256;
///
/// let mut storage = SideChainStorage::new(1024);
/// storage.store(U256::from(0x0cu64), U256::from(21u64)).unwrap();
/// // Keys collide modulo 256: 0x10c maps onto the same byte key.
/// assert_eq!(storage.load(U256::from(0x10cu64)), U256::from(21u64));
/// ```
#[derive(Debug, Clone)]
pub struct SideChainStorage {
    slots: BTreeMap<u8, U256>,
    byte_limit: usize,
}

impl SideChainStorage {
    /// Creates an empty store with the given byte budget.
    pub fn new(byte_limit: usize) -> Self {
        SideChainStorage {
            slots: BTreeMap::new(),
            byte_limit,
        }
    }

    /// The byte budget.
    pub fn limit(&self) -> usize {
        self.byte_limit
    }

    /// Truncates a 256-bit key to the 8-bit key space.
    pub fn truncate_key(key: U256) -> u8 {
        key.byte_le(0)
    }

    /// Iterates over occupied slots in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&u8, &U256)> {
        self.slots.iter()
    }

    /// Reads a slot directly by its byte key.
    pub fn get(&self, key: u8) -> U256 {
        self.slots.get(&key).copied().unwrap_or(U256::ZERO)
    }
}

impl StorageBackend for SideChainStorage {
    fn load(&self, key: U256) -> U256 {
        self.get(Self::truncate_key(key))
    }

    fn store(&mut self, key: U256, value: U256) -> Result<(), TrapReason> {
        let short_key = Self::truncate_key(key);
        if value.is_zero() {
            self.slots.remove(&short_key);
            return Ok(());
        }
        let is_new = !self.slots.contains_key(&short_key);
        // Each occupied slot costs 1 key byte + 32 value bytes.
        if is_new && (self.slots.len() + 1) * 33 > self.byte_limit {
            return Err(TrapReason::StorageLimitExceeded {
                limit: self.byte_limit,
            });
        }
        self.slots.insert(short_key, value);
        Ok(())
    }

    fn slot_count(&self) -> usize {
        self.slots.len()
    }

    fn resident_bytes(&self) -> usize {
        self.slots.len() * 33
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_storage_round_trip() {
        let mut storage = WordStorage::new();
        let key = U256::from(42u64);
        assert_eq!(storage.load(key), U256::ZERO);
        storage.store(key, U256::from(7u64)).unwrap();
        assert_eq!(storage.load(key), U256::from(7u64));
        assert_eq!(storage.slot_count(), 1);
        assert_eq!(storage.resident_bytes(), 64);
    }

    #[test]
    fn word_storage_removes_zeroed_slots() {
        let mut storage = WordStorage::new();
        storage.store(U256::ONE, U256::from(5u64)).unwrap();
        storage.store(U256::ONE, U256::ZERO).unwrap();
        assert_eq!(storage.slot_count(), 0);
        assert_eq!(storage.load(U256::ONE), U256::ZERO);
    }

    #[test]
    fn word_storage_distinguishes_wide_keys() {
        let mut storage = WordStorage::new();
        let key_a = U256::from(0x01u64);
        let key_b = U256::from(0x101u64);
        storage.store(key_a, U256::from(1u64)).unwrap();
        storage.store(key_b, U256::from(2u64)).unwrap();
        assert_eq!(storage.load(key_a), U256::from(1u64));
        assert_eq!(storage.load(key_b), U256::from(2u64));
    }

    #[test]
    fn side_chain_storage_truncates_keys() {
        let mut storage = SideChainStorage::new(1024);
        let key_a = U256::from(0x01u64);
        let key_b = U256::from(0x101u64); // same low byte
        storage.store(key_a, U256::from(1u64)).unwrap();
        storage.store(key_b, U256::from(2u64)).unwrap();
        // The second write lands in the same 8-bit slot.
        assert_eq!(storage.load(key_a), U256::from(2u64));
        assert_eq!(storage.slot_count(), 1);
    }

    #[test]
    fn side_chain_storage_enforces_budget() {
        // 1 KB / 33 bytes per slot = 31 slots.
        let mut storage = SideChainStorage::new(1024);
        for i in 0..31u64 {
            storage.store(U256::from(i), U256::from(i + 1)).unwrap();
        }
        let err = storage
            .store(U256::from(200u64), U256::from(1u64))
            .unwrap_err();
        assert_eq!(err, TrapReason::StorageLimitExceeded { limit: 1024 });
        // Overwriting an existing slot is still allowed.
        storage.store(U256::from(5u64), U256::from(99u64)).unwrap();
        assert_eq!(storage.load(U256::from(5u64)), U256::from(99u64));
        // Deleting frees room for a new slot.
        storage.store(U256::from(5u64), U256::ZERO).unwrap();
        storage.store(U256::from(200u64), U256::from(1u64)).unwrap();
    }

    #[test]
    fn side_chain_storage_resident_bytes() {
        let mut storage = SideChainStorage::new(1024);
        assert_eq!(storage.resident_bytes(), 0);
        storage.store(U256::from(1u64), U256::from(1u64)).unwrap();
        storage.store(U256::from(2u64), U256::from(2u64)).unwrap();
        assert_eq!(storage.resident_bytes(), 66);
        assert_eq!(storage.limit(), 1024);
    }

    #[test]
    fn zero_writes_never_fail_even_when_full() {
        let mut storage = SideChainStorage::new(33);
        storage.store(U256::from(1u64), U256::from(1u64)).unwrap();
        // Budget is now full; zeroing any key still succeeds.
        storage.store(U256::from(7u64), U256::ZERO).unwrap();
        assert_eq!(storage.slot_count(), 1);
    }
}
