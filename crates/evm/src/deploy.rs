//! Contract deployment: executing init code on the device.
//!
//! Deployment is the macro-benchmark of the paper's evaluation (Section
//! VI-B): run the constructor (init code), take its return data as the
//! runtime code, check it against the device's 8 KB limit, and record how
//! much stack, memory and time the whole thing took. [`deploy`] implements
//! exactly that flow and returns the per-contract measurements that populate
//! Table II and Figures 3 and 4.

use tinyevm_analysis::{analyze, AnalysisError, GasCertificate, Verdict};
use tinyevm_types::{Address, U256};

use crate::config::EvmConfig;
use crate::error::{ExecError, TrapReason};
use crate::host::{Host, NullHost};
use crate::interpreter::{CallContext, Evm, ExecOutcome};
use crate::iot::{IotEnvironment, NullIotEnvironment};
use crate::metrics::ExecMetrics;
use crate::storage::SideChainStorage;

/// Why a deployment failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// The init code itself exceeds the device's bytecode ceiling and is
    /// rejected before execution (the device cannot even receive it).
    InitCodeTooLarge {
        /// Init code size in bytes.
        size: usize,
        /// Configured maximum.
        limit: usize,
    },
    /// The constructor trapped.
    ConstructorTrapped(ExecError),
    /// The constructor reverted.
    ConstructorReverted {
        /// Revert data returned by the constructor.
        output: Vec<u8>,
    },
    /// The constructor finished without returning runtime code.
    NoRuntimeCode,
    /// The returned runtime code exceeds the device limit.
    RuntimeCodeTooLarge {
        /// Runtime code size in bytes.
        size: usize,
        /// Configured maximum.
        limit: usize,
    },
    /// The static analyzer rejected the init code before execution
    /// (only with [`EvmConfig::validate_on_deploy`] enabled).
    InitCodeRejected(AnalysisError),
    /// The static analyzer rejected the constructor's returned runtime code
    /// (only with [`EvmConfig::validate_on_deploy`] enabled).
    RuntimeCodeRejected(AnalysisError),
    /// The init code lacks a worst-case gas proof within the configured
    /// budget (only with [`EvmConfig::gas_certificate_budget`] set).
    InitCodeOverBudget {
        /// What the analyzer could prove about the init code's cost.
        certificate: GasCertificate,
        /// The configured admission budget in gas units.
        budget: u64,
    },
    /// The returned runtime code lacks a worst-case gas proof within the
    /// configured budget (only with [`EvmConfig::gas_certificate_budget`]
    /// set).
    RuntimeCodeOverBudget {
        /// What the analyzer could prove about the runtime code's cost.
        certificate: GasCertificate,
        /// The configured admission budget in gas units.
        budget: u64,
    },
}

impl core::fmt::Display for DeployError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DeployError::InitCodeTooLarge { size, limit } => {
                write!(f, "init code of {size} bytes exceeds device limit {limit}")
            }
            DeployError::ConstructorTrapped(error) => write!(f, "constructor trapped: {error}"),
            DeployError::ConstructorReverted { .. } => write!(f, "constructor reverted"),
            DeployError::NoRuntimeCode => write!(f, "constructor produced no runtime code"),
            DeployError::RuntimeCodeTooLarge { size, limit } => {
                write!(
                    f,
                    "runtime code of {size} bytes exceeds device limit {limit}"
                )
            }
            DeployError::InitCodeRejected(error) => {
                write!(f, "init code rejected by static analysis: {error}")
            }
            DeployError::RuntimeCodeRejected(error) => {
                write!(f, "runtime code rejected by static analysis: {error}")
            }
            DeployError::InitCodeOverBudget {
                certificate,
                budget,
            } => {
                write!(
                    f,
                    "init code not provably within the {budget}-gas budget ({certificate})"
                )
            }
            DeployError::RuntimeCodeOverBudget {
                certificate,
                budget,
            } => {
                write!(
                    f,
                    "runtime code not provably within the {budget}-gas budget ({certificate})"
                )
            }
        }
    }
}

impl std::error::Error for DeployError {}

impl DeployError {
    /// True when the failure is a resource-limit problem (the class of
    /// failure the paper attributes the undeployable 7% to), as opposed to a
    /// defect in the contract itself.
    pub fn is_resource_limit(&self) -> bool {
        match self {
            DeployError::InitCodeTooLarge { .. } | DeployError::RuntimeCodeTooLarge { .. } => true,
            DeployError::ConstructorTrapped(error) => matches!(
                error.reason,
                TrapReason::MemoryLimitExceeded { .. }
                    | TrapReason::StackOverflow { .. }
                    | TrapReason::StorageLimitExceeded { .. }
                    | TrapReason::CodeSizeExceeded { .. }
                    | TrapReason::InstructionLimitExceeded { .. }
            ),
            _ => false,
        }
    }
}

/// A successful deployment.
#[derive(Debug, Clone)]
pub struct DeployResult {
    /// The runtime code returned by the constructor.
    pub runtime_code: Vec<u8>,
    /// Execution metrics of the constructor run.
    pub metrics: ExecMetrics,
    /// Bytes of device memory the finished deployment occupies: the runtime
    /// code that must be kept resident. This is the "Memory Usage" series of
    /// the paper's Figure 3b, which observes that it never exceeds the
    /// shipped contract size. Storage written by the constructor is reported
    /// separately in [`ExecMetrics::storage_bytes`].
    pub deployed_memory_bytes: usize,
    /// Size of the init code that was shipped to the device.
    pub init_code_size: usize,
}

impl DeployResult {
    /// Convenience accessor for the runtime code size.
    pub fn runtime_code_size(&self) -> usize {
        self.runtime_code.len()
    }
}

/// Deploys a contract: executes `init_code` as a constructor and validates
/// the returned runtime code against the device profile.
///
/// Equivalent to [`deploy_with`] using no host accounts, no IoT peripherals
/// and empty constructor arguments.
///
/// # Errors
///
/// Returns a [`DeployError`] describing why the contract cannot run on the
/// device.
pub fn deploy(config: &EvmConfig, init_code: &[u8]) -> Result<DeployResult, DeployError> {
    deploy_with(
        config,
        init_code,
        &[],
        &mut NullHost::new(),
        &mut NullIotEnvironment,
    )
}

/// Deploys a contract with explicit constructor arguments, host and IoT
/// environment.
///
/// Constructor arguments follow the Ethereum convention of being appended to
/// the init code; the paper's payment-channel constructor additionally reads
/// a sensor through the IoT opcode during deployment, which is why the
/// environment is threaded through here.
///
/// # Errors
///
/// Returns a [`DeployError`] describing why the contract cannot run on the
/// device.
pub fn deploy_with(
    config: &EvmConfig,
    init_code: &[u8],
    constructor_args: &[u8],
    host: &mut dyn Host,
    iot: &mut dyn IotEnvironment,
) -> Result<DeployResult, DeployError> {
    // Init code larger than the staging area cannot even be received by the
    // device. Constructor arguments ride along with it.
    let staged_size = init_code.len() + constructor_args.len();
    if staged_size > config.max_init_code_size {
        return Err(DeployError::InitCodeTooLarge {
            size: staged_size,
            limit: config.max_init_code_size,
        });
    }

    let mut full_code = Vec::with_capacity(staged_size);
    full_code.extend_from_slice(init_code);
    full_code.extend_from_slice(constructor_args);

    // Deploy-time gate: refuse statically-rejected init code before a single
    // instruction runs. Constructor arguments are appended to the code but
    // never executed, so only the init code proper is analyzed.
    if config.validate_on_deploy || config.gas_certificate_budget.is_some() {
        let analysis = analyze(init_code);
        if config.validate_on_deploy {
            if let Verdict::Rejected(error) = analysis.verdict() {
                return Err(DeployError::InitCodeRejected(error.clone()));
            }
        }
        if let Some(budget) = config.gas_certificate_budget {
            if !analysis.gas_certificate().within_gas_budget(budget) {
                return Err(DeployError::InitCodeOverBudget {
                    certificate: *analysis.gas_certificate(),
                    budget,
                });
            }
        }
    }

    let mut evm = Evm::new(config.clone());
    let mut storage = SideChainStorage::new(config.max_storage_bytes);
    let context = CallContext {
        address: Address::from_low_u64(0xC0DE),
        caller: Address::from_low_u64(0xCA11E6),
        origin: Address::from_low_u64(0xCA11E6),
        call_value: U256::ZERO,
        call_data: constructor_args.to_vec(),
    };
    let result = evm
        .execute_in_frame(
            &full_code,
            context,
            &mut storage,
            host,
            iot,
            false,
            config.max_call_depth,
        )
        .map_err(DeployError::ConstructorTrapped)?;

    match result.outcome {
        ExecOutcome::Revert => Err(DeployError::ConstructorReverted {
            output: result.output,
        }),
        ExecOutcome::Stop | ExecOutcome::SelfDestruct => Err(DeployError::NoRuntimeCode),
        ExecOutcome::Return => {
            let runtime_code = result.output;
            if runtime_code.is_empty() {
                return Err(DeployError::NoRuntimeCode);
            }
            if runtime_code.len() > config.max_code_size {
                return Err(DeployError::RuntimeCodeTooLarge {
                    size: runtime_code.len(),
                    limit: config.max_code_size,
                });
            }
            if config.validate_on_deploy || config.gas_certificate_budget.is_some() {
                let analysis = analyze(&runtime_code);
                if config.validate_on_deploy {
                    if let Verdict::Rejected(error) = analysis.verdict() {
                        return Err(DeployError::RuntimeCodeRejected(error.clone()));
                    }
                }
                if let Some(budget) = config.gas_certificate_budget {
                    if !analysis.gas_certificate().within_gas_budget(budget) {
                        return Err(DeployError::RuntimeCodeOverBudget {
                            certificate: *analysis.gas_certificate(),
                            budget,
                        });
                    }
                }
            }
            let deployed_memory_bytes = runtime_code.len();
            Ok(DeployResult {
                runtime_code,
                metrics: result.metrics,
                deployed_memory_bytes,
                init_code_size: staged_size,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{assemble, wrap_as_init_code};
    use crate::iot::ScriptedSensors;

    fn config() -> EvmConfig {
        EvmConfig::cc2538()
    }

    #[test]
    fn deploys_a_simple_contract() {
        let runtime =
            assemble("PUSH1 0x2a PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN").unwrap();
        let init = wrap_as_init_code(&runtime);
        let result = deploy(&config(), &init).unwrap();
        assert_eq!(result.runtime_code, runtime);
        assert_eq!(result.init_code_size, init.len());
        assert!(result.metrics.instructions > 0);
        assert!(result.metrics.max_stack_pointer >= 2);
        assert_eq!(result.runtime_code_size(), runtime.len());
    }

    #[test]
    fn deployed_memory_never_exceeds_init_size_for_codecopy_contracts() {
        // The paper observes that final deployment memory never exceeds the
        // shipped contract size (Fig. 3b); for CODECOPY-style constructors
        // the runtime is a strict subset of the init code.
        let runtime = vec![0x00u8; 1000]; // STOP sled
        let init = wrap_as_init_code(&runtime);
        let result = deploy(&config(), &init).unwrap();
        assert!(result.deployed_memory_bytes <= init.len());
    }

    #[test]
    fn rejects_init_code_over_the_staging_limit() {
        let huge = vec![0x00u8; 30_000];
        let error = deploy(&config(), &huge).unwrap_err();
        assert_eq!(
            error,
            DeployError::InitCodeTooLarge {
                size: 30_000,
                limit: 26 * 1024
            }
        );
        assert!(error.is_resource_limit());
    }

    #[test]
    fn init_code_above_8kb_can_still_deploy_a_small_runtime() {
        // Figure 3b: shipped bytecode above 8 KB deploys as long as the
        // final deployment stays under the limit.
        let runtime =
            assemble("PUSH1 0x01 PUSH1 0x00 MSTORE8 PUSH1 0x01 PUSH1 0x00 RETURN").unwrap();
        let mut init = wrap_as_init_code(&runtime);
        // Pad the init code with unreachable bytes beyond 8 KB.
        init.extend(std::iter::repeat(0xfe).take(10_000));
        assert!(init.len() > 8 * 1024);
        let result = deploy(&config(), &init).unwrap();
        assert_eq!(result.runtime_code, runtime);
    }

    #[test]
    fn rejects_oversized_runtime_code() {
        // Init code that fits but RETURNs 5000 bytes of zeros from memory —
        // fine under an 8 KB profile, rejected under a 4 KB profile.
        let init = assemble("PUSH2 0x1388 PUSH1 0x00 RETURN").unwrap();
        assert!(deploy(&config(), &init).is_ok());
        let small = config().with_code_limit(4096).with_memory_limit(8192);
        let error = deploy(&small, &init).unwrap_err();
        assert_eq!(
            error,
            DeployError::RuntimeCodeTooLarge {
                size: 5000,
                limit: 4096
            }
        );
        assert!(error.is_resource_limit());
    }

    #[test]
    fn constructor_revert_is_reported() {
        let init = assemble("PUSH1 0x00 PUSH1 0x00 REVERT").unwrap();
        let error = deploy(&config(), &init).unwrap_err();
        assert!(matches!(error, DeployError::ConstructorReverted { .. }));
        assert!(!error.is_resource_limit());
    }

    #[test]
    fn constructor_stop_means_no_runtime_code() {
        let init = assemble("PUSH1 0x01 PUSH1 0x00 SSTORE STOP").unwrap();
        let error = deploy(&config(), &init).unwrap_err();
        assert_eq!(error, DeployError::NoRuntimeCode);
        let init = assemble("PUSH1 0x00 PUSH1 0x00 RETURN").unwrap();
        assert_eq!(
            deploy(&config(), &init).unwrap_err(),
            DeployError::NoRuntimeCode
        );
    }

    #[test]
    fn constructor_trap_is_reported_with_reason() {
        let init = assemble("PUSH1 0x01 PUSH4 0xffffffff MSTORE").unwrap();
        let error = deploy(&config(), &init).unwrap_err();
        match &error {
            DeployError::ConstructorTrapped(exec) => {
                assert!(matches!(
                    exec.reason,
                    TrapReason::MemoryLimitExceeded { .. }
                ));
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(error.is_resource_limit());
    }

    #[test]
    fn constructor_arguments_are_visible_as_calldata() {
        // Constructor stores calldata word 0 into storage slot 0, then
        // returns a 1-byte runtime.
        let init = assemble(
            "PUSH1 0x00 CALLDATALOAD PUSH1 0x00 SSTORE PUSH1 0x01 PUSH1 0x00 MSTORE8 PUSH1 0x01 PUSH1 0x00 RETURN",
        )
        .unwrap();
        let mut args = vec![0u8; 32];
        args[31] = 0x55;
        let result = deploy_with(
            &config(),
            &init,
            &args,
            &mut NullHost::new(),
            &mut NullIotEnvironment,
        )
        .unwrap();
        assert_eq!(result.runtime_code, vec![0x01]);
        assert!(result.metrics.storage_bytes > 0);
    }

    #[test]
    fn constructor_can_read_a_sensor_during_deployment() {
        // This is the paper's Listing 2 pattern: the payment-channel
        // constructor executes the IoT opcode and SSTOREs the reading.
        let init = assemble(
            "PUSH1 0x00 PUSH1 0x00 IOT PUSH1 0x0c SSTORE PUSH1 0x01 PUSH1 0x00 MSTORE8 PUSH1 0x01 PUSH1 0x00 RETURN",
        )
        .unwrap();
        let mut sensors = ScriptedSensors::new().with_reading(0, U256::from(23u64));
        let result =
            deploy_with(&config(), &init, &[], &mut NullHost::new(), &mut sensors).unwrap();
        assert_eq!(result.metrics.iot_invocations, 1);
        // Without the sensor the same deployment traps.
        let error = deploy(&config(), &init).unwrap_err();
        assert!(matches!(error, DeployError::ConstructorTrapped(_)));
    }

    #[test]
    fn display_messages() {
        let errors: Vec<DeployError> = vec![
            DeployError::InitCodeTooLarge { size: 1, limit: 2 },
            DeployError::ConstructorReverted { output: vec![] },
            DeployError::NoRuntimeCode,
            DeployError::RuntimeCodeTooLarge { size: 3, limit: 2 },
            DeployError::InitCodeRejected(AnalysisError::UndefinedInstruction {
                pc: 0,
                byte: 0x0e,
            }),
            DeployError::RuntimeCodeRejected(AnalysisError::InvalidJumpTarget { pc: 2, target: 9 }),
        ];
        for error in errors {
            assert!(!format!("{error}").is_empty());
        }
    }

    fn gated() -> EvmConfig {
        config().with_deploy_validation(true)
    }

    #[test]
    fn gate_rejects_init_code_with_bad_jump_target() {
        // PUSH1 3, JUMP, STOP — destination 3 is not a JUMPDEST.
        let init = assemble("PUSH1 0x03 JUMP STOP").unwrap();
        let error = deploy(&gated(), &init).unwrap_err();
        assert_eq!(
            error,
            DeployError::InitCodeRejected(AnalysisError::InvalidJumpTarget { pc: 2, target: 3 })
        );
        assert!(!error.is_resource_limit());
        // Without the gate the same contract runs and traps mid-execution.
        assert!(matches!(
            deploy(&config(), &init).unwrap_err(),
            DeployError::ConstructorTrapped(_)
        ));
    }

    #[test]
    fn gate_rejects_init_code_with_truncated_push() {
        let init = vec![0x61, 0xaa]; // PUSH2 with one immediate byte
        let error = deploy(&gated(), &init).unwrap_err();
        assert!(matches!(
            error,
            DeployError::InitCodeRejected(AnalysisError::TruncatedPush {
                pc: 0,
                missing: 1,
                ..
            })
        ));
    }

    #[test]
    fn gate_rejects_init_code_with_certain_stack_underflow() {
        let init = assemble("ADD STOP").unwrap();
        let error = deploy(&gated(), &init).unwrap_err();
        assert!(matches!(
            error,
            DeployError::InitCodeRejected(AnalysisError::StackUnderflow {
                pc: 0,
                needed: 2,
                ..
            })
        ));
    }

    #[test]
    fn gate_rejects_statically_invalid_runtime_code() {
        // The init code itself is clean (the runtime rides along as an
        // unreachable data segment), but the *returned* runtime contains a
        // jump to an invalid destination.
        let bad_runtime = assemble("PUSH1 0x05 JUMP STOP").unwrap();
        let init = wrap_as_init_code(&bad_runtime);
        let error = deploy(&gated(), &init).unwrap_err();
        assert_eq!(
            error,
            DeployError::RuntimeCodeRejected(AnalysisError::InvalidJumpTarget { pc: 2, target: 5 })
        );
        // The default profile still deploys it: the corpus relies on being
        // able to install intentionally-weird contracts.
        assert!(deploy(&config(), &init).is_ok());
    }

    #[test]
    fn gate_accepts_well_formed_contracts() {
        let runtime =
            assemble("PUSH1 0x2a PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN").unwrap();
        let init = wrap_as_init_code(&runtime);
        let result = deploy(&gated(), &init).unwrap();
        assert_eq!(result.runtime_code, runtime);
    }

    #[test]
    fn budget_gate_admits_cheap_contracts_and_refuses_tight_budgets() {
        let runtime =
            assemble("PUSH1 0x2a PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN").unwrap();
        let init = wrap_as_init_code(&runtime);
        // A generous budget admits; the un-budgeted profile is unaffected.
        assert!(deploy(&config().with_gas_certificate_budget(100_000), &init).is_ok());
        // A one-gas budget refuses the init code with its certificate.
        let error = deploy(&config().with_gas_certificate_budget(1), &init).unwrap_err();
        match error {
            DeployError::InitCodeOverBudget {
                certificate,
                budget: 1,
            } => assert!(certificate.is_bounded()),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn budget_gate_refuses_unbounded_runtime_code() {
        // Clean constructor, but the returned runtime loops forever:
        // JUMPDEST, PUSH1 0, JUMP — no finite worst-case bound exists.
        let looping = assemble("JUMPDEST PUSH1 0x00 JUMP").unwrap();
        let init = wrap_as_init_code(&looping);
        let error = deploy(&config().with_gas_certificate_budget(1_000_000), &init).unwrap_err();
        assert_eq!(
            error,
            DeployError::RuntimeCodeOverBudget {
                certificate: GasCertificate::Unbounded { loop_head: 0 },
                budget: 1_000_000,
            }
        );
        assert!(!error.is_resource_limit());
        // Without the budget the same contract deploys fine.
        assert!(deploy(&config(), &init).is_ok());
    }
}
