//! The customized Ethereum Virtual Machine at the heart of TinyEVM.
//!
//! This crate is the paper's primary contribution: an EVM that keeps the
//! 256-bit word size (so unmodified Ethereum bytecode runs), but is adapted
//! to a low-power IoT device:
//!
//! * **Resource-limited** — stack, random-access memory, bytecode size and
//!   off-chain storage are bounded by an [`EvmConfig`] profile; the default
//!   [`EvmConfig::cc2538`] profile mirrors the paper's 3 KB stack / 8 KB RAM
//!   / 8 KB code / 1 KB storage allocation.
//! * **Off-chain** — gas metering is disabled ([`GasMode::Unmetered`]) and
//!   the six blockchain-information opcodes trap, because there is no chain
//!   to ask during local execution. A metered mode is retained for the
//!   on-chain template contract run by `tinyevm-chain`.
//! * **IoT-extended** — the unused opcode `0x0C` is repurposed as the
//!   [`IOT` opcode](opcode::Opcode::Iot): contracts can read sensors and
//!   drive actuators through the host's [`IotEnvironment`].
//!
//! The crate also ships an [`asm`] assembler/disassembler used by the test
//! suite, the contract corpus generator and the examples, and a
//! [`deploy`] module implementing constructor-style contract deployment with
//! the metrics (peak stack pointer, memory high-water mark, executed
//! instruction histogram) that the paper's evaluation reports.
//!
//! # Example
//!
//! ```
//! use tinyevm_evm::{asm, Evm, EvmConfig, ExecOutcome};
//!
//! // PUSH1 21, PUSH1 2, MUL, PUSH1 0, MSTORE, PUSH1 32, PUSH1 0, RETURN
//! let code = asm::assemble(
//!     "PUSH1 0x15 PUSH1 0x02 MUL PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN",
//! ).unwrap();
//! let mut evm = Evm::new(EvmConfig::cc2538());
//! let result = evm.execute(&code, &[]).unwrap();
//! assert_eq!(result.outcome, ExecOutcome::Return);
//! assert_eq!(result.output[31], 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod config;
pub mod deploy;
pub mod error;
pub mod host;
pub mod interpreter;
pub mod iot;
pub mod memory;
pub mod metrics;
pub mod stack;
pub mod storage;

/// The opcode table now lives in `tinyevm-analysis` (the static analyzer
/// needs it without depending on the interpreter); re-exported here so
/// `tinyevm_evm::opcode::*` paths keep working.
pub use tinyevm_analysis::opcode;

pub use config::{EvmConfig, GasMode};
pub use deploy::{deploy, deploy_with, DeployError, DeployResult};
pub use error::{ExecError, TrapReason};
pub use host::{CallOutcome, ContractStore, Host, NullHost};
pub use interpreter::{CallContext, Evm, ExecOutcome, ExecResult};
pub use iot::{IotEnvironment, IotRequest, NullIotEnvironment, ScriptedSensors};
pub use metrics::ExecMetrics;
pub use opcode::{Opcode, OpcodeCategory, OpcodeInfo};
pub use stack::Stack;
pub use storage::{SideChainStorage, WordStorage};
