//! The TinyEVM bytecode interpreter.
//!
//! Frames execute against a shared [`CodeAnalysis`] artifact from
//! `tinyevm-analysis`: the jumpdest bitmap is precomputed (instead of the
//! historical per-frame scan), and basic blocks whose instructions cannot
//! trap mid-block are accounted *per block* — one instruction-limit check,
//! one gas check and one bulk metrics update at block entry — rather than
//! per opcode. Blocks containing memory, storage, call or IoT opcodes
//! before their final instruction, and blocks whose budgets are nearly
//! exhausted, fall back to the per-opcode slow path, which keeps execution
//! results, gas accounting, [`ExecMetrics`] and trap PCs byte-identical to
//! per-opcode interpretation (`EvmConfig::per_op_metering` forces the slow
//! path everywhere for differential testing).

use tinyevm_analysis::{analyze, CodeAnalysis};
use tinyevm_trace::{TraceEvent, TraceHandle};
use tinyevm_types::{Address, I256, U256};

use crate::config::{EvmConfig, GasMode};
use crate::error::{ExecError, TrapReason};
use crate::host::{CallKind, CallRequest, Host, LogEntry, NullHost};
use crate::iot::{IotEnvironment, IotRequest, NullIotEnvironment};
use crate::memory::Memory;
use crate::metrics::ExecMetrics;
use crate::opcode::Opcode;
use crate::stack::Stack;
use crate::storage::{SideChainStorage, StorageBackend};

/// Identity and inputs of one execution frame.
#[derive(Debug, Clone)]
pub struct CallContext {
    /// The executing contract's own address (`ADDRESS`).
    pub address: Address,
    /// The immediate caller (`CALLER`).
    pub caller: Address,
    /// The transaction originator (`ORIGIN`).
    pub origin: Address,
    /// Value transferred with the call (`CALLVALUE`).
    pub call_value: U256,
    /// Call data bytes.
    pub call_data: Vec<u8>,
}

impl Default for CallContext {
    fn default() -> Self {
        CallContext {
            address: Address::ZERO,
            caller: Address::ZERO,
            origin: Address::ZERO,
            call_value: U256::ZERO,
            call_data: Vec::new(),
        }
    }
}

/// How a frame finished (traps are reported as [`ExecError`] instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecOutcome {
    /// `STOP` or running off the end of the code.
    Stop,
    /// `RETURN` with output data.
    Return,
    /// `REVERT` with revert data; state changes must be discarded.
    Revert,
    /// `SELFDESTRUCT`.
    SelfDestruct,
}

/// The result of a completed (non-trapping) frame.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// How the frame finished.
    pub outcome: ExecOutcome,
    /// Return or revert data.
    pub output: Vec<u8>,
    /// Metrics collected over the frame and its sub-frames.
    pub metrics: ExecMetrics,
}

impl ExecResult {
    /// True unless the frame reverted.
    pub fn is_success(&self) -> bool {
        self.outcome != ExecOutcome::Revert
    }
}

/// The TinyEVM virtual machine.
///
/// An [`Evm`] value is little more than a configuration; each call to an
/// `execute*` method runs one frame with fresh stack and memory, which is
/// exactly how the MCU implementation works (a static arena reused per
/// execution).
///
/// # Example
///
/// ```
/// use tinyevm_evm::{asm, Evm, EvmConfig};
///
/// let code = asm::assemble("PUSH1 0x05 PUSH1 0x07 ADD PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN").unwrap();
/// let mut evm = Evm::new(EvmConfig::cc2538());
/// let result = evm.execute(&code, &[]).unwrap();
/// assert_eq!(result.output[31], 12);
/// ```
#[derive(Debug, Clone)]
pub struct Evm {
    config: EvmConfig,
    tracer: TraceHandle,
}

impl Evm {
    /// Creates a machine with the given resource profile.
    pub fn new(config: EvmConfig) -> Self {
        Evm {
            config,
            tracer: TraceHandle::default(),
        }
    }

    /// Attaches a tracer: every completed frame publishes a
    /// [`TraceEvent::ContractCall`] with the opcode-category cycle
    /// breakdown. The default handle is a no-op.
    pub fn with_tracer(mut self, tracer: TraceHandle) -> Self {
        self.tracer = tracer;
        self
    }

    /// The machine's configuration.
    pub fn config(&self) -> &EvmConfig {
        &self.config
    }

    /// Executes `code` standalone: default context, fresh side-chain
    /// storage, no host accounts, no IoT peripherals.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the execution traps.
    pub fn execute(&mut self, code: &[u8], call_data: &[u8]) -> Result<ExecResult, ExecError> {
        let mut storage = SideChainStorage::new(self.config.max_storage_bytes);
        let mut host = NullHost::new();
        let mut iot = NullIotEnvironment;
        let context = CallContext {
            call_data: call_data.to_vec(),
            ..CallContext::default()
        };
        let depth = self.config.max_call_depth;
        self.execute_in_frame(
            code,
            context,
            &mut storage,
            &mut host,
            &mut iot,
            false,
            depth,
        )
    }

    /// Executes `code` standalone but with an IoT environment, so contracts
    /// using the `0x0C` opcode can reach sensors and actuators.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the execution traps.
    pub fn execute_with_iot(
        &mut self,
        code: &[u8],
        call_data: &[u8],
        iot: &mut dyn IotEnvironment,
    ) -> Result<ExecResult, ExecError> {
        let mut storage = SideChainStorage::new(self.config.max_storage_bytes);
        let mut host = NullHost::new();
        let context = CallContext {
            call_data: call_data.to_vec(),
            ..CallContext::default()
        };
        let depth = self.config.max_call_depth;
        self.execute_in_frame(code, context, &mut storage, &mut host, iot, false, depth)
    }

    /// Executes one frame with explicit storage, host and IoT environment.
    ///
    /// This is the entry point the payment-channel runtime and the chain
    /// simulator use; `execute` and `execute_with_iot` are conveniences over
    /// it.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the execution traps (resource exhaustion,
    /// invalid jump, unsupported opcode, and so on).
    #[allow(clippy::too_many_arguments)]
    pub fn execute_in_frame(
        &mut self,
        code: &[u8],
        context: CallContext,
        storage: &mut dyn StorageBackend,
        host: &mut dyn Host,
        iot: &mut dyn IotEnvironment,
        static_mode: bool,
        depth_remaining: usize,
    ) -> Result<ExecResult, ExecError> {
        let analysis = analyze(code);
        self.execute_analyzed(
            code,
            &analysis,
            context,
            storage,
            host,
            iot,
            static_mode,
            depth_remaining,
        )
    }

    /// Executes one frame against a precomputed [`CodeAnalysis`] for `code`.
    ///
    /// This is the fast path: callers that run the same contract repeatedly
    /// (the contract store, the payment-channel runtime) analyze the code
    /// once — typically through `tinyevm_analysis::AnalysisCache`, keyed by
    /// code hash — and every frame after that borrows the shared artifact.
    /// `analysis` must have been produced from exactly this `code`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the execution traps.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_analyzed(
        &mut self,
        code: &[u8],
        analysis: &CodeAnalysis,
        context: CallContext,
        storage: &mut dyn StorageBackend,
        host: &mut dyn Host,
        iot: &mut dyn IotEnvironment,
        static_mode: bool,
        depth_remaining: usize,
    ) -> Result<ExecResult, ExecError> {
        debug_assert_eq!(analysis.code_len(), code.len());
        let result = Frame {
            config: &self.config,
            code,
            analysis,
            context,
            storage,
            host,
            iot,
            static_mode,
            depth_remaining,
            stack: Stack::new(self.config.max_stack_depth),
            memory: Memory::new(self.config.max_memory_bytes),
            metrics: ExecMetrics::new(),
            return_data: Vec::new(),
            gas_remaining: match self.config.gas_mode {
                GasMode::Metered { limit } => limit,
                GasMode::Unmetered => u64::MAX,
            },
            pc: 0,
            block_limit: 0,
            batched: false,
            block_jump_proven: false,
        }
        .run();
        self.tracer.event(|| match &result {
            Ok(exec) => {
                let outcome = match exec.outcome {
                    ExecOutcome::Stop => "stop",
                    ExecOutcome::Return => "return",
                    ExecOutcome::Revert => "revert",
                    ExecOutcome::SelfDestruct => "selfdestruct",
                };
                contract_call_event(outcome, &exec.metrics)
            }
            Err(error) => {
                let mut metrics = ExecMetrics::new();
                metrics.instructions = error.instructions_executed;
                contract_call_event("trap", &metrics)
            }
        });
        result
    }
}

/// Builds the per-frame trace event, splitting the cycle budget by opcode
/// category. Only runs when a recorder is attached.
fn contract_call_event(outcome: &str, metrics: &ExecMetrics) -> TraceEvent {
    use tinyevm_analysis::opcode::OpcodeCategory;
    let mut by_category = [0u64; 5];
    for byte in 0..=255u8 {
        let executions = metrics.opcode_histogram[byte as usize];
        if executions == 0 {
            continue;
        }
        if let Some(opcode) = Opcode::from_byte(byte) {
            let info = opcode.info();
            let index = match info.category {
                OpcodeCategory::Operation => 0,
                OpcodeCategory::SmartContract => 1,
                OpcodeCategory::Memory => 2,
                OpcodeCategory::Blockchain => 3,
                OpcodeCategory::Iot => 4,
            };
            by_category[index] += executions * info.mcu_cycles as u64;
        }
    }
    TraceEvent::ContractCall {
        outcome: outcome.to_string(),
        instructions: metrics.instructions,
        mcu_cycles: metrics.mcu_cycles,
        operation_cycles: by_category[0],
        smart_contract_cycles: by_category[1],
        memory_cycles: by_category[2],
        blockchain_cycles: by_category[3],
        iot_cycles: by_category[4],
        keccak_invocations: metrics.keccak_invocations,
    }
}

/// One in-flight execution frame.
struct Frame<'a> {
    config: &'a EvmConfig,
    code: &'a [u8],
    analysis: &'a CodeAnalysis,
    context: CallContext,
    storage: &'a mut dyn StorageBackend,
    host: &'a mut dyn Host,
    iot: &'a mut dyn IotEnvironment,
    static_mode: bool,
    depth_remaining: usize,
    stack: Stack,
    memory: Memory,
    metrics: ExecMetrics,
    return_data: Vec<u8>,
    gas_remaining: u64,
    pc: usize,
    /// First pc past the current basic block; reaching it (or jumping,
    /// which resets it to 0) re-enters block accounting.
    block_limit: usize,
    /// True while executing a block whose budgets were charged in bulk at
    /// entry, so the per-opcode bookkeeping must not run.
    batched: bool,
    /// True while executing a block whose terminating jump's destination the
    /// static analyzer proved to be a valid `JUMPDEST`, so the runtime
    /// bitmap check can be skipped.
    block_jump_proven: bool,
}

enum Step {
    Continue,
    Finish(ExecOutcome, Vec<u8>),
}

impl<'a> Frame<'a> {
    fn run(mut self) -> Result<ExecResult, ExecError> {
        loop {
            if self.pc >= self.code.len() {
                return Ok(self.finish(ExecOutcome::Stop, Vec::new()));
            }
            if self.pc >= self.block_limit {
                self.enter_block();
            }
            let byte = self.code[self.pc];
            let opcode = match Opcode::from_byte(byte) {
                Some(op) => op,
                None => return Err(self.trap(TrapReason::UndefinedInstruction { byte })),
            };
            if !self.batched {
                self.metrics.record(opcode);
                if self.metrics.instructions > self.config.instruction_limit {
                    return Err(self.trap(TrapReason::InstructionLimitExceeded {
                        limit: self.config.instruction_limit,
                    }));
                }
                if let GasMode::Metered { limit } = self.config.gas_mode {
                    let cost = opcode.info().gas;
                    if cost > self.gas_remaining {
                        return Err(self.trap(TrapReason::OutOfGas { limit }));
                    }
                    self.gas_remaining -= cost;
                    self.metrics.gas_used += cost;
                }
                if self.config.off_chain && opcode.removed_off_chain() {
                    return Err(self.trap(TrapReason::UnsupportedOpcode { opcode }));
                }
                self.stack
                    .require(opcode, opcode.info().inputs)
                    .map_err(|reason| self.trap(reason))?;
            }

            match self.step(opcode) {
                Ok(Step::Continue) => {}
                Ok(Step::Finish(outcome, output)) => return Ok(self.finish(outcome, output)),
                Err(reason) => return Err(self.trap(reason)),
            }
        }
    }

    /// Called whenever execution crosses into a new basic block. Decides
    /// between batched accounting (charge the whole block's instruction
    /// count, gas, cycles and histogram now; skip per-opcode bookkeeping
    /// until the block ends) and the per-opcode slow path.
    ///
    /// Batching is only chosen when it is observationally equivalent:
    /// the block must be unable to trap before its final instruction (the
    /// analyzer's `interior_trap_risk` covers dispatch traps; the budget
    /// checks below rule out limit, gas, underflow and overflow traps), and
    /// must not contain opcodes whose behaviour depends on the accounting
    /// state itself (`GAS` under metering, off-chain-removed opcodes whose
    /// trap fires in the per-opcode preamble). A trap at the final
    /// instruction is fine: the per-opcode interpreter would have recorded
    /// the whole block by then too, so the reported pc and instruction
    /// count match exactly.
    fn enter_block(&mut self) {
        self.batched = false;
        self.block_jump_proven = false;
        let analysis = self.analysis;
        let block = match analysis.block_at(self.pc) {
            Some(block) => block,
            None => {
                // Not a block leader (cannot happen for analyses produced
                // from this code); run per-opcode, one instruction at a time.
                self.block_limit = self.pc + 1;
                return;
            }
        };
        self.block_limit = block.end.max(self.pc + 1);
        self.block_jump_proven = block.jump_target_proven;
        if self.config.per_op_metering
            || block.interior_trap_risk
            || block.has_undefined
            || (self.config.off_chain && block.has_removed_off_chain)
        {
            return;
        }
        let metered = matches!(self.config.gas_mode, GasMode::Metered { .. });
        if metered && block.has_gas_op {
            return;
        }
        let instructions = block.instructions as u64;
        if self.metrics.instructions + instructions > self.config.instruction_limit {
            return;
        }
        if self.stack.depth() < block.stack_required
            || self.stack.depth() + block.max_stack_growth > self.config.max_stack_depth
        {
            return;
        }
        if metered && block.static_gas > self.gas_remaining {
            return;
        }
        self.metrics.instructions += instructions;
        self.metrics.mcu_cycles += block.mcu_cycles;
        for &(byte, count) in &block.histogram {
            self.metrics.opcode_histogram[byte as usize] += count as u64;
        }
        if metered {
            self.gas_remaining -= block.static_gas;
            self.metrics.gas_used += block.static_gas;
        }
        self.batched = true;
    }

    fn finish(mut self, outcome: ExecOutcome, output: Vec<u8>) -> ExecResult {
        self.metrics.max_stack_pointer = self.stack.max_pointer();
        self.metrics.memory_high_water = self
            .metrics
            .memory_high_water
            .max(self.memory.high_water_mark());
        self.metrics.storage_bytes = self.storage.resident_bytes();
        ExecResult {
            outcome,
            output,
            metrics: self.metrics,
        }
    }

    fn trap(&mut self, reason: TrapReason) -> ExecError {
        self.metrics.max_stack_pointer = self.stack.max_pointer();
        self.metrics.memory_high_water = self
            .metrics
            .memory_high_water
            .max(self.memory.high_water_mark());
        ExecError {
            reason,
            pc: self.pc,
            instructions_executed: self.metrics.instructions,
        }
    }

    fn step(&mut self, opcode: Opcode) -> Result<Step, TrapReason> {
        use Opcode::*;
        let mut next_pc = self.pc + 1;
        match opcode {
            Stop => return Ok(Step::Finish(ExecOutcome::Stop, Vec::new())),

            // --- arithmetic ------------------------------------------------
            Add => self.binary_op(|a, b| a.wrapping_add(b))?,
            Mul => self.binary_op(|a, b| a.wrapping_mul(b))?,
            Sub => self.binary_op(|a, b| a.wrapping_sub(b))?,
            Div => self.binary_op(|a, b| a.div(b))?,
            SDiv => self.binary_op(|a, b| I256::from(a).sdiv(I256::from(b)).into_raw())?,
            Mod => self.binary_op(|a, b| a.rem(b))?,
            SMod => self.binary_op(|a, b| I256::from(a).smod(I256::from(b)).into_raw())?,
            AddMod => self.ternary_op(|a, b, m| a.add_mod(b, m))?,
            MulMod => self.ternary_op(|a, b, m| a.mul_mod(b, m))?,
            Exp => self.binary_op(|a, b| a.wrapping_pow(b))?,
            SignExtend => self.binary_op(|index, value| value.sign_extend(index))?,

            // --- comparison / bitwise -------------------------------------
            Lt => self.binary_op(|a, b| bool_word(a < b))?,
            Gt => self.binary_op(|a, b| bool_word(a > b))?,
            Slt => self.binary_op(|a, b| bool_word(I256::from(a).slt(I256::from(b))))?,
            Sgt => self.binary_op(|a, b| bool_word(I256::from(a).sgt(I256::from(b))))?,
            Eq => self.binary_op(|a, b| bool_word(a == b))?,
            IsZero => self.unary_op(|a| bool_word(a.is_zero()))?,
            And => self.binary_op(|a, b| a & b)?,
            Or => self.binary_op(|a, b| a | b)?,
            Xor => self.binary_op(|a, b| a ^ b)?,
            Not => self.unary_op(|a| !a)?,
            Byte => self.binary_op(|index, value| {
                U256::from(value.byte_be(index.to_usize().unwrap_or(usize::MAX).min(32)) as u64)
            })?,
            Shl => self.binary_op(|shift, value| value.shl(shift_amount(shift)))?,
            Shr => self.binary_op(|shift, value| value.shr(shift_amount(shift)))?,
            Sar => self.binary_op(|shift, value| value.sar(shift_amount(shift)))?,

            // --- hashing ---------------------------------------------------
            Sha3 => {
                let offset = self.pop_usize()?;
                let len = self.pop_usize()?;
                let data = self.memory.load_slice(offset, len)?;
                self.metrics.keccak_invocations += 1;
                self.metrics.keccak_bytes += len as u64;
                let digest = tinyevm_crypto::keccak256(&data);
                self.stack.push(U256::from_be_bytes(digest))?;
            }

            // --- IoT opcode ------------------------------------------------
            Iot => {
                let selector = self.stack.pop()?;
                let parameter = self.stack.pop()?;
                let request = IotRequest::decode(selector, parameter);
                self.metrics.iot_invocations += 1;
                match self.iot.handle(request) {
                    Some(value) => self.stack.push(value)?,
                    None => {
                        return Err(TrapReason::IotUnavailable {
                            id: request.peripheral_id(),
                        })
                    }
                }
            }

            // --- environment ----------------------------------------------
            Address => self.stack.push(self.context.address.to_u256())?,
            Balance => {
                let address = tinyevm_types::Address::from_u256(self.stack.pop()?);
                let balance = self.host.balance(&address);
                self.stack.push(balance)?;
            }
            Origin => self.stack.push(self.context.origin.to_u256())?,
            Caller => self.stack.push(self.context.caller.to_u256())?,
            CallValue => self.stack.push(self.context.call_value)?,
            CallDataLoad => {
                let offset = self.pop_usize()?;
                let mut word = [0u8; 32];
                for (i, byte) in word.iter_mut().enumerate() {
                    *byte = self
                        .context
                        .call_data
                        .get(offset.saturating_add(i))
                        .copied()
                        .unwrap_or(0);
                }
                self.stack.push(U256::from_be_bytes(word))?;
            }
            CallDataSize => self.stack.push(U256::from(self.context.call_data.len()))?,
            CallDataCopy => {
                let dest = self.pop_usize()?;
                let src = self.pop_usize()?;
                let len = self.pop_usize()?;
                let data = self.context.call_data.clone();
                self.memory.copy_padded(dest, &data, src, len)?;
            }
            CodeSize => self.stack.push(U256::from(self.code.len()))?,
            CodeCopy => {
                let dest = self.pop_usize()?;
                let src = self.pop_usize()?;
                let len = self.pop_usize()?;
                let code = self.code.to_vec();
                self.memory.copy_padded(dest, &code, src, len)?;
            }
            GasPrice => self.stack.push(U256::ZERO)?,
            ExtCodeSize => {
                let address = tinyevm_types::Address::from_u256(self.stack.pop()?);
                self.stack
                    .push(U256::from(self.host.code(&address).len()))?;
            }
            ExtCodeCopy => {
                let address = tinyevm_types::Address::from_u256(self.stack.pop()?);
                let dest = self.pop_usize()?;
                let src = self.pop_usize()?;
                let len = self.pop_usize()?;
                let code = self.host.code(&address);
                self.memory.copy_padded(dest, &code, src, len)?;
            }
            ReturnDataSize => self.stack.push(U256::from(self.return_data.len()))?,
            ReturnDataCopy => {
                let dest = self.pop_usize()?;
                let src = self.pop_usize()?;
                let len = self.pop_usize()?;
                let data = self.return_data.clone();
                self.memory.copy_padded(dest, &data, src, len)?;
            }
            ExtCodeHash => {
                let address = tinyevm_types::Address::from_u256(self.stack.pop()?);
                let code = self.host.code(&address);
                if code.is_empty() {
                    self.stack.push(U256::ZERO)?;
                } else {
                    self.stack
                        .push(U256::from_be_bytes(tinyevm_crypto::keccak256(&code)))?;
                }
            }

            // --- blockchain information (on-chain mode only) ----------------
            BlockHash => {
                self.stack.pop()?;
                self.stack.push(U256::ZERO)?;
            }
            Coinbase | Timestamp | Number | Difficulty | GasLimit => {
                self.stack.push(U256::ZERO)?;
            }

            // --- stack / memory / storage -----------------------------------
            Pop => {
                self.stack.pop()?;
            }
            MLoad => {
                let offset = self.pop_usize()?;
                let value = self.memory.load_word(offset)?;
                self.stack.push(value)?;
            }
            MStore => {
                let offset = self.pop_usize()?;
                let value = self.stack.pop()?;
                self.memory.store_word(offset, value)?;
            }
            MStore8 => {
                let offset = self.pop_usize()?;
                let value = self.stack.pop()?;
                self.memory.store_byte(offset, value.byte_le(0))?;
            }
            SLoad => {
                let key = self.stack.pop()?;
                self.stack.push(self.storage.load(key))?;
            }
            SStore => {
                if self.static_mode {
                    return Err(TrapReason::StaticModeViolation);
                }
                let key = self.stack.pop()?;
                let value = self.stack.pop()?;
                self.storage.store(key, value)?;
            }
            Jump => {
                let destination = self.pop_usize()?;
                self.validate_jump(destination)?;
                next_pc = destination;
                self.block_limit = 0;
            }
            JumpI => {
                let destination = self.pop_usize()?;
                let condition = self.stack.pop()?;
                if !condition.is_zero() {
                    self.validate_jump(destination)?;
                    next_pc = destination;
                    self.block_limit = 0;
                }
            }
            Pc => self.stack.push(U256::from(self.pc))?,
            MSize => self.stack.push(U256::from(self.memory.size()))?,
            Gas => self.stack.push(U256::from(self.gas_remaining))?,
            JumpDest => {}

            // --- pushes, dups, swaps ----------------------------------------
            Push1 | Push2 | Push3 | Push4 | Push5 | Push6 | Push7 | Push8 | Push9 | Push10
            | Push11 | Push12 | Push13 | Push14 | Push15 | Push16 | Push17 | Push18 | Push19
            | Push20 | Push21 | Push22 | Push23 | Push24 | Push25 | Push26 | Push27 | Push28
            | Push29 | Push30 | Push31 | Push32 => {
                let count = opcode.push_bytes();
                let start = self.pc + 1;
                let mut word = [0u8; 32];
                for i in 0..count {
                    word[32 - count + i] = self.code.get(start + i).copied().unwrap_or(0);
                }
                self.stack.push(U256::from_be_bytes(word))?;
                next_pc = start + count;
            }
            Dup1 | Dup2 | Dup3 | Dup4 | Dup5 | Dup6 | Dup7 | Dup8 | Dup9 | Dup10 | Dup11
            | Dup12 | Dup13 | Dup14 | Dup15 | Dup16 => {
                self.stack.dup(opcode, opcode.dup_depth())?;
            }
            Swap1 | Swap2 | Swap3 | Swap4 | Swap5 | Swap6 | Swap7 | Swap8 | Swap9 | Swap10
            | Swap11 | Swap12 | Swap13 | Swap14 | Swap15 | Swap16 => {
                self.stack.swap(opcode, opcode.swap_depth())?;
            }

            // --- logging -----------------------------------------------------
            Log0 | Log1 | Log2 | Log3 | Log4 => {
                if self.static_mode {
                    return Err(TrapReason::StaticModeViolation);
                }
                let offset = self.pop_usize()?;
                let len = self.pop_usize()?;
                let mut topics = Vec::with_capacity(opcode.log_topics());
                for _ in 0..opcode.log_topics() {
                    topics.push(self.stack.pop()?);
                }
                let data = self.memory.load_slice(offset, len)?;
                self.host.emit_log(LogEntry {
                    address: self.context.address,
                    topics,
                    data,
                });
            }

            // --- calls and creation ------------------------------------------
            Create => {
                if self.static_mode {
                    return Err(TrapReason::StaticModeViolation);
                }
                let value = self.stack.pop()?;
                let offset = self.pop_usize()?;
                let len = self.pop_usize()?;
                if self.depth_remaining == 0 {
                    return Err(TrapReason::CallDepthExceeded {
                        limit: self.config.max_call_depth,
                    });
                }
                let init_code = self.memory.load_slice(offset, len)?;
                let outcome = self.host.create(
                    self.context.address,
                    value,
                    &init_code,
                    self.depth_remaining,
                    self.iot,
                );
                self.metrics.absorb(&outcome.metrics);
                self.return_data = if outcome.success {
                    Vec::new()
                } else {
                    outcome.output
                };
                match outcome.created {
                    Some(address) if outcome.success => self.stack.push(address.to_u256())?,
                    _ => self.stack.push(U256::ZERO)?,
                }
            }
            Call | CallCode | DelegateCall | StaticCall => {
                let step = self.do_call(opcode)?;
                if let Step::Finish(..) = step {
                    return Ok(step);
                }
            }
            Return => {
                let offset = self.pop_usize()?;
                let len = self.pop_usize()?;
                let output = self.memory.load_slice(offset, len)?;
                return Ok(Step::Finish(ExecOutcome::Return, output));
            }
            Revert => {
                let offset = self.pop_usize()?;
                let len = self.pop_usize()?;
                let output = self.memory.load_slice(offset, len)?;
                return Ok(Step::Finish(ExecOutcome::Revert, output));
            }
            Invalid => return Err(TrapReason::InvalidOpcode),
            SelfDestruct => {
                if self.static_mode {
                    return Err(TrapReason::StaticModeViolation);
                }
                let beneficiary = tinyevm_types::Address::from_u256(self.stack.pop()?);
                self.host.selfdestruct(self.context.address, beneficiary);
                return Ok(Step::Finish(ExecOutcome::SelfDestruct, Vec::new()));
            }
        }
        self.pc = next_pc;
        Ok(Step::Continue)
    }

    fn do_call(&mut self, opcode: Opcode) -> Result<Step, TrapReason> {
        // gas operand is ignored in unmetered mode but still popped.
        let _gas = self.stack.pop()?;
        let target = tinyevm_types::Address::from_u256(self.stack.pop()?);
        let value = if matches!(opcode, Opcode::Call | Opcode::CallCode) {
            self.stack.pop()?
        } else {
            U256::ZERO
        };
        let in_offset = self.pop_usize()?;
        let in_len = self.pop_usize()?;
        let out_offset = self.pop_usize()?;
        let out_len = self.pop_usize()?;

        if self.static_mode && !value.is_zero() {
            return Err(TrapReason::StaticModeViolation);
        }
        if self.depth_remaining == 0 {
            return Err(TrapReason::CallDepthExceeded {
                limit: self.config.max_call_depth,
            });
        }

        let input = self.memory.load_slice(in_offset, in_len)?;
        let kind = match opcode {
            Opcode::DelegateCall | Opcode::CallCode => CallKind::Delegate,
            Opcode::StaticCall => CallKind::Static,
            _ => CallKind::Call,
        };
        let context_address = match kind {
            CallKind::Delegate => self.context.address,
            _ => target,
        };
        let request = CallRequest {
            kind,
            caller: self.context.address,
            target,
            context_address,
            value,
            input,
            depth_remaining: self.depth_remaining,
        };
        let outcome = self.host.call(request, self.iot);
        self.metrics.absorb(&outcome.metrics);
        self.return_data = outcome.output.clone();
        let copy_len = out_len.min(outcome.output.len());
        self.memory
            .copy_padded(out_offset, &outcome.output, 0, copy_len)?;
        self.stack.push(bool_word(outcome.success))?;
        Ok(Step::Continue)
    }

    fn validate_jump(&self, destination: usize) -> Result<(), TrapReason> {
        if self.block_jump_proven {
            // The symbolic pass proved the destination this block's jump
            // pops is a valid JUMPDEST on every path; skip the bitmap probe.
            debug_assert!(self.analysis.is_jumpdest(destination));
            return Ok(());
        }
        if !self.analysis.is_jumpdest(destination) {
            return Err(TrapReason::InvalidJump { destination });
        }
        Ok(())
    }

    fn unary_op<F: FnOnce(U256) -> U256>(&mut self, f: F) -> Result<(), TrapReason> {
        let a = self.stack.pop()?;
        self.stack.push(f(a))
    }

    fn binary_op<F: FnOnce(U256, U256) -> U256>(&mut self, f: F) -> Result<(), TrapReason> {
        let a = self.stack.pop()?;
        let b = self.stack.pop()?;
        self.stack.push(f(a, b))
    }

    fn ternary_op<F: FnOnce(U256, U256, U256) -> U256>(&mut self, f: F) -> Result<(), TrapReason> {
        let a = self.stack.pop()?;
        let b = self.stack.pop()?;
        let c = self.stack.pop()?;
        self.stack.push(f(a, b, c))
    }

    fn pop_usize(&mut self) -> Result<usize, TrapReason> {
        let value = self.stack.pop()?;
        value.to_usize().ok_or(TrapReason::MemoryLimitExceeded {
            requested: usize::MAX,
            limit: self.config.max_memory_bytes,
        })
    }
}

/// Marks every byte position that is a valid `JUMPDEST` (i.e. the byte is
/// `0x5B` and it is not immediate data of a preceding `PUSH`).
pub fn analyze_jumpdests(code: &[u8]) -> Vec<bool> {
    let mut valid = vec![false; code.len()];
    let mut pc = 0usize;
    while pc < code.len() {
        let byte = code[pc];
        if byte == Opcode::JumpDest.to_byte() {
            valid[pc] = true;
        }
        if (0x60..=0x7f).contains(&byte) {
            pc += (byte - 0x5f) as usize;
        }
        pc += 1;
    }
    valid
}

fn bool_word(value: bool) -> U256 {
    if value {
        U256::ONE
    } else {
        U256::ZERO
    }
}

fn shift_amount(shift: U256) -> u32 {
    shift.to_usize().map(|s| s.min(256) as u32).unwrap_or(256)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::iot::ScriptedSensors;

    fn run(source: &str) -> ExecResult {
        let code = assemble(source).expect("assembly failed");
        Evm::new(EvmConfig::cc2538())
            .execute(&code, &[])
            .expect("execution failed")
    }

    fn run_expect_trap(source: &str) -> TrapReason {
        let code = assemble(source).expect("assembly failed");
        Evm::new(EvmConfig::cc2538())
            .execute(&code, &[])
            .expect_err("expected a trap")
            .reason
    }

    fn returned_word(result: &ExecResult) -> U256 {
        U256::from_be_slice(&result.output).unwrap()
    }

    #[test]
    fn empty_code_stops_cleanly() {
        let mut evm = Evm::new(EvmConfig::cc2538());
        let result = evm.execute(&[], &[]).unwrap();
        assert_eq!(result.outcome, ExecOutcome::Stop);
        assert!(result.output.is_empty());
        assert_eq!(result.metrics.instructions, 0);
    }

    #[test]
    fn arithmetic_add_and_return() {
        let result =
            run("PUSH1 0x05 PUSH1 0x07 ADD PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
        assert_eq!(result.outcome, ExecOutcome::Return);
        assert_eq!(returned_word(&result), U256::from(12u64));
    }

    #[test]
    fn arithmetic_division_by_zero_yields_zero() {
        let result =
            run("PUSH1 0x00 PUSH1 0x07 DIV PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
        assert_eq!(returned_word(&result), U256::ZERO);
    }

    #[test]
    fn signed_division() {
        // -10 / 3 = -3 (SDIV truncates toward zero)
        let result = run(
            "PUSH1 0x03 PUSH1 0x0a PUSH1 0x00 SUB SDIV PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN",
        );
        // Result should be -3 mod 2^256
        assert_eq!(returned_word(&result), U256::from(3u64).wrapping_neg());
    }

    #[test]
    fn comparisons_and_bitwise() {
        let result = run("PUSH1 0x02 PUSH1 0x01 LT PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
        assert_eq!(returned_word(&result), U256::ONE); // 1 < 2
        let result = run("PUSH1 0x0f PUSH1 0xf0 OR PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
        assert_eq!(returned_word(&result), U256::from(0xffu64));
        let result = run("PUSH1 0x01 ISZERO PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
        assert_eq!(returned_word(&result), U256::ZERO);
    }

    #[test]
    fn exp_and_mulmod() {
        let result =
            run("PUSH1 0x0a PUSH1 0x02 EXP PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
        assert_eq!(returned_word(&result), U256::from(1024u64));
        let result =
            run("PUSH1 0x05 PUSH1 0x09 PUSH1 0x07 MULMOD PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
        assert_eq!(returned_word(&result), U256::from(3u64)); // 7*9 mod 5
    }

    #[test]
    fn byte_and_shifts() {
        let result =
            run("PUSH1 0xff PUSH1 0x1f BYTE PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
        assert_eq!(returned_word(&result), U256::from(0xffu64)); // byte 31 of 0xff
        let result =
            run("PUSH1 0x01 PUSH1 0x04 SHL PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
        assert_eq!(returned_word(&result), U256::from(16u64));
        let result =
            run("PUSH1 0x10 PUSH1 0x04 SHR PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
        assert_eq!(returned_word(&result), U256::ONE);
    }

    #[test]
    fn sha3_hashes_memory() {
        // keccak256 of 32 zero bytes.
        let result =
            run("PUSH1 0x20 PUSH1 0x00 SHA3 PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
        let expected = tinyevm_crypto::keccak256(&[0u8; 32]);
        assert_eq!(result.output, expected.to_vec());
        assert_eq!(result.metrics.keccak_invocations, 1);
        assert_eq!(result.metrics.keccak_bytes, 32);
    }

    #[test]
    fn memory_and_msize() {
        let result = run(
            "PUSH1 0x2a PUSH1 0x40 MSTORE MSIZE PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN",
        );
        // Storing at 0x40 expands memory to 0x60 = 96 bytes.
        assert_eq!(returned_word(&result), U256::from(96u64));
    }

    #[test]
    fn mstore8_writes_single_byte() {
        let result = run("PUSH1 0xab PUSH1 0x00 MSTORE8 PUSH1 0x20 PUSH1 0x00 RETURN");
        assert_eq!(result.output[0], 0xab);
        assert!(result.output[1..].iter().all(|&b| b == 0));
    }

    #[test]
    fn storage_round_trip() {
        let result = run(
            "PUSH1 0x2a PUSH1 0x07 SSTORE PUSH1 0x07 SLOAD PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN",
        );
        assert_eq!(returned_word(&result), U256::from(0x2au64));
        assert!(result.metrics.storage_bytes > 0);
    }

    #[test]
    fn jumps_and_conditional_jumps() {
        // Jump over an INVALID opcode.
        let result = run("PUSH1 0x04 JUMP INVALID JUMPDEST PUSH1 0x07 PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
        assert_eq!(returned_word(&result), U256::from(7u64));
        // JUMPI not taken falls through to INVALID → trap.
        let reason = run_expect_trap("PUSH1 0x00 PUSH1 0x06 JUMPI INVALID JUMPDEST STOP");
        assert_eq!(reason, TrapReason::InvalidOpcode);
    }

    #[test]
    fn invalid_jump_target_traps() {
        let reason = run_expect_trap("PUSH1 0x03 JUMP STOP");
        assert_eq!(reason, TrapReason::InvalidJump { destination: 3 });
        // Jumping into push data is invalid even if the byte there is 0x5b.
        let reason = run_expect_trap("PUSH1 0x02 JUMP PUSH1 0x5b STOP");
        assert!(matches!(reason, TrapReason::InvalidJump { .. }));
    }

    #[test]
    fn calldata_opcodes() {
        let code = assemble("PUSH1 0x00 CALLDATALOAD PUSH1 0x00 MSTORE CALLDATASIZE PUSH1 0x20 MSTORE PUSH1 0x40 PUSH1 0x00 RETURN").unwrap();
        let mut calldata = vec![0u8; 32];
        calldata[31] = 99;
        calldata.push(0xaa); // 33 bytes total
        let result = Evm::new(EvmConfig::cc2538())
            .execute(&code, &calldata)
            .unwrap();
        assert_eq!(
            U256::from_be_slice(&result.output[..32]).unwrap(),
            U256::from(99u64)
        );
        assert_eq!(
            U256::from_be_slice(&result.output[32..]).unwrap(),
            U256::from(33u64)
        );
    }

    #[test]
    fn codesize_and_codecopy() {
        let result = run("CODESIZE PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
        assert_eq!(returned_word(&result), U256::from(9u64));
    }

    #[test]
    fn environment_opcodes_default_context() {
        let result = run("CALLER ADDRESS ORIGIN CALLVALUE ADD ADD ADD PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
        assert_eq!(returned_word(&result), U256::ZERO);
    }

    #[test]
    fn dup_and_swap_families() {
        let result = run(
            "PUSH1 0x01 PUSH1 0x02 PUSH1 0x03 DUP3 PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN",
        );
        assert_eq!(returned_word(&result), U256::ONE);
        let result =
            run("PUSH1 0x01 PUSH1 0x02 SWAP1 PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
        assert_eq!(returned_word(&result), U256::ONE);
    }

    #[test]
    fn push32_and_pc() {
        let result = run("PUSH32 0x0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20 PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
        assert_eq!(result.output[0], 0x01);
        assert_eq!(result.output[31], 0x20);
        let result = run("PC PC ADD PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
        assert_eq!(returned_word(&result), U256::from(1u64)); // 0 + 1
    }

    #[test]
    fn revert_returns_data_and_flags_failure() {
        let result = run("PUSH1 0x2a PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 REVERT");
        assert_eq!(result.outcome, ExecOutcome::Revert);
        assert!(!result.is_success());
        assert_eq!(returned_word(&result), U256::from(0x2au64));
    }

    #[test]
    fn stack_underflow_and_overflow_trap() {
        let reason = run_expect_trap("ADD");
        assert!(matches!(reason, TrapReason::StackUnderflow { .. }));

        // Push more than the 96-element CC2538 stack allows.
        let mut source = String::new();
        for _ in 0..100 {
            source.push_str("PUSH1 0x01 ");
        }
        let reason = run_expect_trap(&source);
        assert_eq!(reason, TrapReason::StackOverflow { limit: 96 });
    }

    #[test]
    fn memory_budget_trap() {
        // Store beyond the 8 KB budget.
        let reason = run_expect_trap("PUSH1 0x01 PUSH2 0x2100 MSTORE");
        assert!(matches!(reason, TrapReason::MemoryLimitExceeded { .. }));
    }

    #[test]
    fn undefined_instruction_traps() {
        let mut evm = Evm::new(EvmConfig::cc2538());
        let error = evm.execute(&[0x0d], &[]).unwrap_err();
        assert_eq!(
            error.reason,
            TrapReason::UndefinedInstruction { byte: 0x0d }
        );
    }

    #[test]
    fn blockchain_opcodes_trap_off_chain_but_not_on_chain() {
        let reason = run_expect_trap("TIMESTAMP");
        assert_eq!(
            reason,
            TrapReason::UnsupportedOpcode {
                opcode: Opcode::Timestamp
            }
        );
        let reason = run_expect_trap("GAS");
        assert_eq!(
            reason,
            TrapReason::UnsupportedOpcode {
                opcode: Opcode::Gas
            }
        );

        // The unconstrained (full-node) profile answers them instead.
        let code = assemble("TIMESTAMP NUMBER ADD PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN")
            .unwrap();
        let result = Evm::new(EvmConfig::unconstrained())
            .execute(&code, &[])
            .unwrap();
        assert_eq!(result.outcome, ExecOutcome::Return);
    }

    #[test]
    fn iot_opcode_reads_scripted_sensor() {
        // Selector 0 (read sensor 0), parameter 0.
        let code =
            assemble("PUSH1 0x00 PUSH1 0x00 IOT PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN")
                .unwrap();
        let mut sensors = ScriptedSensors::new().with_reading(0, U256::from(215u64));
        let result = Evm::new(EvmConfig::cc2538())
            .execute_with_iot(&code, &[], &mut sensors)
            .unwrap();
        assert_eq!(
            U256::from_be_slice(&result.output).unwrap(),
            U256::from(215u64)
        );
        assert_eq!(result.metrics.iot_invocations, 1);
    }

    #[test]
    fn iot_opcode_traps_without_peripherals() {
        let reason = run_expect_trap("PUSH1 0x00 PUSH1 0x00 IOT");
        assert_eq!(reason, TrapReason::IotUnavailable { id: 0 });
    }

    #[test]
    fn instruction_limit_guards_infinite_loops() {
        let mut config = EvmConfig::cc2538();
        config.instruction_limit = 1_000;
        let code = assemble("JUMPDEST PUSH1 0x00 JUMP").unwrap();
        let error = Evm::new(config).execute(&code, &[]).unwrap_err();
        assert_eq!(
            error.reason,
            TrapReason::InstructionLimitExceeded { limit: 1_000 }
        );
    }

    #[test]
    fn metered_mode_runs_out_of_gas() {
        let config = EvmConfig::unconstrained().with_gas_mode(GasMode::Metered { limit: 10 });
        let code =
            assemble("PUSH1 0x01 PUSH1 0x02 ADD PUSH1 0x03 ADD PUSH1 0x04 ADD STOP").unwrap();
        let error = Evm::new(config).execute(&code, &[]).unwrap_err();
        assert_eq!(error.reason, TrapReason::OutOfGas { limit: 10 });
    }

    #[test]
    fn metrics_track_stack_and_memory_high_water() {
        let result =
            run("PUSH1 0x01 PUSH1 0x02 PUSH1 0x03 POP POP POP PUSH1 0x2a PUSH1 0x60 MSTORE STOP");
        assert_eq!(result.metrics.max_stack_pointer, 3);
        assert_eq!(result.metrics.memory_high_water, 0x60 + 32);
        assert!(result.metrics.instructions >= 10);
        assert!(result.metrics.mcu_cycles > 0);
        assert_eq!(result.metrics.count(Opcode::MStore), 1);
    }

    #[test]
    fn logs_reach_the_host() {
        let code =
            assemble("PUSH1 0x2a PUSH1 0x00 MSTORE PUSH1 0xbb PUSH1 0x20 PUSH1 0x00 LOG1 STOP")
                .unwrap();
        let mut evm = Evm::new(EvmConfig::cc2538());
        let mut storage = SideChainStorage::new(1024);
        let mut host = NullHost::new();
        let mut iot = NullIotEnvironment;
        let result = evm
            .execute_in_frame(
                &code,
                CallContext::default(),
                &mut storage,
                &mut host,
                &mut iot,
                false,
                4,
            )
            .unwrap();
        assert_eq!(result.outcome, ExecOutcome::Stop);
        assert_eq!(host.logs().len(), 1);
        assert_eq!(host.logs()[0].topics, vec![U256::from(0xbbu64)]);
        assert_eq!(host.logs()[0].data.len(), 32);
    }

    #[test]
    fn static_mode_rejects_state_changes() {
        let code = assemble("PUSH1 0x01 PUSH1 0x00 SSTORE STOP").unwrap();
        let mut evm = Evm::new(EvmConfig::cc2538());
        let mut storage = SideChainStorage::new(1024);
        let mut host = NullHost::new();
        let mut iot = NullIotEnvironment;
        let error = evm
            .execute_in_frame(
                &code,
                CallContext::default(),
                &mut storage,
                &mut host,
                &mut iot,
                true,
                4,
            )
            .unwrap_err();
        assert_eq!(error.reason, TrapReason::StaticModeViolation);
    }

    #[test]
    fn jumpdest_analysis_skips_push_data() {
        let code = assemble("PUSH2 0x5b5b JUMPDEST STOP").unwrap();
        let dests = analyze_jumpdests(&code);
        assert!(!dests[1]);
        assert!(!dests[2]);
        assert!(dests[3]);
    }

    #[test]
    fn balance_of_unknown_account_is_zero() {
        let result = run("PUSH1 0x42 BALANCE PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
        assert_eq!(returned_word(&result), U256::ZERO);
    }

    #[test]
    fn extcode_opcodes_with_null_host() {
        let result = run("PUSH1 0x42 EXTCODESIZE PUSH1 0x42 EXTCODEHASH ADD PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
        assert_eq!(returned_word(&result), U256::ZERO);
    }

    #[test]
    fn returndata_is_empty_without_calls() {
        let result = run("RETURNDATASIZE PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
        assert_eq!(returned_word(&result), U256::ZERO);
    }

    #[test]
    fn call_to_null_host_pushes_failure() {
        let result = run(
            "PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x00 PUSH1 0x42 PUSH1 0x00 CALL PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN",
        );
        assert_eq!(returned_word(&result), U256::ZERO);
    }

    #[test]
    fn signextend_opcode() {
        let result =
            run("PUSH1 0xff PUSH1 0x00 SIGNEXTEND PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN");
        assert_eq!(returned_word(&result), U256::MAX);
    }
}
