//! The 256-bit operand stack.

use crate::error::TrapReason;
use crate::opcode::Opcode;
use tinyevm_types::U256;

/// The EVM operand stack, bounded by the device profile and instrumented
/// with the maximum-stack-pointer statistic that the paper's Figure 3c
/// reports.
///
/// # Example
///
/// ```
/// use tinyevm_evm::Stack;
/// use tinyevm_types::U256;
///
/// let mut stack = Stack::new(96);
/// stack.push(U256::from(1u64)).unwrap();
/// stack.push(U256::from(2u64)).unwrap();
/// assert_eq!(stack.pop().unwrap(), U256::from(2u64));
/// assert_eq!(stack.max_pointer(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Stack {
    items: Vec<U256>,
    limit: usize,
    max_pointer: usize,
}

impl Stack {
    /// Creates an empty stack with the given element limit.
    pub fn new(limit: usize) -> Self {
        Stack {
            items: Vec::with_capacity(limit.min(64)),
            limit,
            max_pointer: 0,
        }
    }

    /// Current number of elements (the stack pointer).
    pub fn depth(&self) -> usize {
        self.items.len()
    }

    /// Highest stack pointer observed since creation (Figure 3c metric).
    pub fn max_pointer(&self) -> usize {
        self.max_pointer
    }

    /// Configured element limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Returns `true` when no elements are present.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Pushes a word.
    ///
    /// # Errors
    ///
    /// Returns [`TrapReason::StackOverflow`] when the limit is reached.
    pub fn push(&mut self, value: U256) -> Result<(), TrapReason> {
        if self.items.len() >= self.limit {
            return Err(TrapReason::StackOverflow { limit: self.limit });
        }
        self.items.push(value);
        self.max_pointer = self.max_pointer.max(self.items.len());
        Ok(())
    }

    /// Pops a word.
    ///
    /// # Errors
    ///
    /// Returns [`TrapReason::StackUnderflow`] on an empty stack; the
    /// reported opcode is `POP` because the interpreter checks arity before
    /// dispatch and only direct misuse reaches this path.
    pub fn pop(&mut self) -> Result<U256, TrapReason> {
        self.items.pop().ok_or(TrapReason::StackUnderflow {
            opcode: Opcode::Pop,
            needed: 1,
            available: 0,
        })
    }

    /// Checks that `needed` elements are available for `opcode`.
    ///
    /// # Errors
    ///
    /// Returns [`TrapReason::StackUnderflow`] naming the opcode.
    pub fn require(&self, opcode: Opcode, needed: usize) -> Result<(), TrapReason> {
        if self.items.len() < needed {
            return Err(TrapReason::StackUnderflow {
                opcode,
                needed,
                available: self.items.len(),
            });
        }
        Ok(())
    }

    /// Reads the element `depth_from_top` positions below the top (0 = top)
    /// without removing it.
    pub fn peek(&self, depth_from_top: usize) -> Option<U256> {
        let len = self.items.len();
        if depth_from_top < len {
            Some(self.items[len - 1 - depth_from_top])
        } else {
            None
        }
    }

    /// Duplicates the element at 1-based `depth` onto the top (`DUPn`).
    ///
    /// # Errors
    ///
    /// Returns stack underflow / overflow traps as appropriate.
    pub fn dup(&mut self, opcode: Opcode, depth: usize) -> Result<(), TrapReason> {
        self.require(opcode, depth)?;
        let value = self.items[self.items.len() - depth];
        self.push(value)
    }

    /// Swaps the top with the element at 1-based `depth` below it (`SWAPn`).
    ///
    /// # Errors
    ///
    /// Returns [`TrapReason::StackUnderflow`] if fewer than `depth + 1`
    /// elements are present.
    pub fn swap(&mut self, opcode: Opcode, depth: usize) -> Result<(), TrapReason> {
        self.require(opcode, depth + 1)?;
        let top = self.items.len() - 1;
        self.items.swap(top, top - depth);
        Ok(())
    }

    /// A read-only view of the elements, bottom first (used by tests and the
    /// disassembling tracer).
    pub fn as_slice(&self) -> &[U256] {
        &self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word(v: u64) -> U256 {
        U256::from(v)
    }

    #[test]
    fn push_pop_round_trip() {
        let mut stack = Stack::new(16);
        assert!(stack.is_empty());
        stack.push(word(1)).unwrap();
        stack.push(word(2)).unwrap();
        assert_eq!(stack.depth(), 2);
        assert_eq!(stack.pop().unwrap(), word(2));
        assert_eq!(stack.pop().unwrap(), word(1));
        assert!(stack.pop().is_err());
    }

    #[test]
    fn overflow_at_limit() {
        let mut stack = Stack::new(3);
        for i in 0..3 {
            stack.push(word(i)).unwrap();
        }
        assert_eq!(
            stack.push(word(9)),
            Err(TrapReason::StackOverflow { limit: 3 })
        );
    }

    #[test]
    fn max_pointer_tracks_high_water_mark() {
        let mut stack = Stack::new(16);
        stack.push(word(1)).unwrap();
        stack.push(word(2)).unwrap();
        stack.push(word(3)).unwrap();
        stack.pop().unwrap();
        stack.pop().unwrap();
        stack.push(word(4)).unwrap();
        assert_eq!(stack.depth(), 2);
        assert_eq!(stack.max_pointer(), 3);
    }

    #[test]
    fn require_names_the_opcode() {
        let stack = Stack::new(16);
        let err = stack.require(Opcode::Add, 2).unwrap_err();
        assert_eq!(
            err,
            TrapReason::StackUnderflow {
                opcode: Opcode::Add,
                needed: 2,
                available: 0
            }
        );
    }

    #[test]
    fn peek_views_without_popping() {
        let mut stack = Stack::new(16);
        stack.push(word(10)).unwrap();
        stack.push(word(20)).unwrap();
        assert_eq!(stack.peek(0), Some(word(20)));
        assert_eq!(stack.peek(1), Some(word(10)));
        assert_eq!(stack.peek(2), None);
        assert_eq!(stack.depth(), 2);
    }

    #[test]
    fn dup_copies_deep_element() {
        let mut stack = Stack::new(16);
        stack.push(word(1)).unwrap();
        stack.push(word(2)).unwrap();
        stack.push(word(3)).unwrap();
        stack.dup(Opcode::Dup3, 3).unwrap();
        assert_eq!(stack.peek(0), Some(word(1)));
        assert_eq!(stack.depth(), 4);
        assert!(stack.dup(Opcode::Dup16, 16).is_err());
    }

    #[test]
    fn swap_exchanges_with_depth() {
        let mut stack = Stack::new(16);
        stack.push(word(1)).unwrap();
        stack.push(word(2)).unwrap();
        stack.push(word(3)).unwrap();
        stack.swap(Opcode::Swap2, 2).unwrap();
        assert_eq!(stack.peek(0), Some(word(1)));
        assert_eq!(stack.peek(2), Some(word(3)));
        assert!(stack.swap(Opcode::Swap16, 16).is_err());
    }

    #[test]
    fn dup_respects_limit() {
        let mut stack = Stack::new(2);
        stack.push(word(1)).unwrap();
        stack.push(word(2)).unwrap();
        assert_eq!(
            stack.dup(Opcode::Dup1, 1),
            Err(TrapReason::StackOverflow { limit: 2 })
        );
    }

    #[test]
    fn as_slice_is_bottom_first() {
        let mut stack = Stack::new(4);
        stack.push(word(1)).unwrap();
        stack.push(word(2)).unwrap();
        assert_eq!(stack.as_slice(), &[word(1), word(2)]);
    }
}
