//! The IoT opcode's host interface.
//!
//! TinyEVM's key language extension is the `0x0C` opcode: a smart contract
//! can ask the device it runs on to read a sensor or drive an actuator,
//! removing the need for an external oracle. The interpreter forwards those
//! requests to an [`IotEnvironment`] supplied by the host — on a real
//! OpenMote that would be the Contiki-NG driver layer; in this workspace it
//! is the sensor registry of `tinyevm-device`.
//!
//! The opcode pops two words, `(selector, parameter)`, and pushes one result
//! word. The selector's low byte distinguishes a read (`0x00`) from an
//! actuation (`0x01`); the remaining bytes identify the peripheral.

use tinyevm_types::U256;

/// A decoded IoT opcode request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IotRequest {
    /// Read sensor `id`, with a device-specific `parameter` (for example a
    /// channel or oversampling setting).
    ReadSensor {
        /// Peripheral identifier.
        id: u64,
        /// Device-specific parameter.
        parameter: u64,
    },
    /// Drive actuator `id` with `value`.
    Actuate {
        /// Peripheral identifier.
        id: u64,
        /// Value to apply.
        value: u64,
    },
}

impl IotRequest {
    /// Decodes the two stack operands of the IoT opcode.
    ///
    /// `selector` layout (low 16 bytes used): byte 0 is the operation
    /// (0 = read, anything else = actuate), bytes 1..=8 are the peripheral
    /// id.
    pub fn decode(selector: U256, parameter: U256) -> IotRequest {
        let op = selector.byte_le(0);
        let mut id_bytes = [0u8; 8];
        for (i, b) in id_bytes.iter_mut().enumerate() {
            *b = selector.byte_le(1 + i);
        }
        let id = u64::from_le_bytes(id_bytes);
        let parameter_low = parameter.low_u64();
        if op == 0 {
            IotRequest::ReadSensor {
                id,
                parameter: parameter_low,
            }
        } else {
            IotRequest::Actuate {
                id,
                value: parameter_low,
            }
        }
    }

    /// Encodes this request back into the `(selector, parameter)` operand
    /// pair — the inverse of [`IotRequest::decode`], used by the assembler
    /// helpers and tests.
    pub fn encode(&self) -> (U256, U256) {
        match *self {
            IotRequest::ReadSensor { id, parameter } => {
                (Self::selector_word(0, id), U256::from(parameter))
            }
            IotRequest::Actuate { id, value } => (Self::selector_word(1, id), U256::from(value)),
        }
    }

    fn selector_word(op: u8, id: u64) -> U256 {
        let mut bytes = [0u8; 32];
        bytes[31] = op;
        let id_bytes = id.to_le_bytes();
        for i in 0..8 {
            bytes[30 - i] = id_bytes[i];
        }
        U256::from_be_bytes(bytes)
    }

    /// The peripheral id addressed by this request.
    pub fn peripheral_id(&self) -> u64 {
        match *self {
            IotRequest::ReadSensor { id, .. } | IotRequest::Actuate { id, .. } => id,
        }
    }
}

/// Host-side provider of sensors and actuators.
pub trait IotEnvironment {
    /// Handles an IoT opcode request, returning the word to push (a sensor
    /// reading, or an acknowledgement for an actuation), or `None` when the
    /// peripheral does not exist — which traps the contract.
    fn handle(&mut self, request: IotRequest) -> Option<U256>;
}

/// An environment with no peripherals: every IoT opcode traps. This is what
/// the corpus-deployment experiments use, since off-the-shelf Ethereum
/// contracts never contain the opcode.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullIotEnvironment;

impl IotEnvironment for NullIotEnvironment {
    fn handle(&mut self, _request: IotRequest) -> Option<U256> {
        None
    }
}

/// A scripted environment for tests and examples: fixed readings per sensor
/// id and a log of actuations.
#[derive(Debug, Clone, Default)]
pub struct ScriptedSensors {
    readings: std::collections::BTreeMap<u64, U256>,
    actuations: Vec<(u64, u64)>,
}

impl ScriptedSensors {
    /// Creates an environment with no sensors.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value returned for sensor `id`.
    pub fn with_reading(mut self, id: u64, value: U256) -> Self {
        self.readings.insert(id, value);
        self
    }

    /// Actuations performed so far, in order, as `(id, value)` pairs.
    pub fn actuations(&self) -> &[(u64, u64)] {
        &self.actuations
    }
}

impl IotEnvironment for ScriptedSensors {
    fn handle(&mut self, request: IotRequest) -> Option<U256> {
        match request {
            IotRequest::ReadSensor { id, .. } => self.readings.get(&id).copied(),
            IotRequest::Actuate { id, value } => {
                if self.readings.contains_key(&id) {
                    self.actuations.push((id, value));
                    Some(U256::ONE)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_read_request() {
        let (selector, parameter) = IotRequest::ReadSensor {
            id: 0x1234,
            parameter: 7,
        }
        .encode();
        let decoded = IotRequest::decode(selector, parameter);
        assert_eq!(
            decoded,
            IotRequest::ReadSensor {
                id: 0x1234,
                parameter: 7
            }
        );
        assert_eq!(decoded.peripheral_id(), 0x1234);
    }

    #[test]
    fn decode_actuate_request() {
        let (selector, parameter) = IotRequest::Actuate { id: 9, value: 55 }.encode();
        let decoded = IotRequest::decode(selector, parameter);
        assert_eq!(decoded, IotRequest::Actuate { id: 9, value: 55 });
    }

    #[test]
    fn zero_selector_is_a_read_of_sensor_zero() {
        let decoded = IotRequest::decode(U256::ZERO, U256::ZERO);
        assert_eq!(
            decoded,
            IotRequest::ReadSensor {
                id: 0,
                parameter: 0
            }
        );
    }

    #[test]
    fn null_environment_rejects_everything() {
        let mut env = NullIotEnvironment;
        assert_eq!(
            env.handle(IotRequest::ReadSensor {
                id: 0,
                parameter: 0
            }),
            None
        );
    }

    #[test]
    fn scripted_sensors_return_configured_readings() {
        let mut env = ScriptedSensors::new().with_reading(1, U256::from(215u64));
        assert_eq!(
            env.handle(IotRequest::ReadSensor {
                id: 1,
                parameter: 0
            }),
            Some(U256::from(215u64))
        );
        assert_eq!(
            env.handle(IotRequest::ReadSensor {
                id: 2,
                parameter: 0
            }),
            None
        );
    }

    #[test]
    fn scripted_sensors_log_actuations() {
        let mut env = ScriptedSensors::new().with_reading(3, U256::ZERO);
        assert_eq!(
            env.handle(IotRequest::Actuate { id: 3, value: 90 }),
            Some(U256::ONE)
        );
        assert_eq!(env.handle(IotRequest::Actuate { id: 4, value: 1 }), None);
        assert_eq!(env.actuations(), &[(3, 90)]);
    }
}
