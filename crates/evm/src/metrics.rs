//! Execution metrics.
//!
//! The paper's evaluation is driven almost entirely by numbers the virtual
//! machine can observe about itself while running: the maximum stack
//! pointer (Figure 3c), the memory high-water mark (Figure 3b), and the
//! amount of work executed, which the device model converts into time
//! (Figure 4) and energy (Table IV). [`ExecMetrics`] collects exactly those
//! observables.

use serde::{Deserialize, Serialize};

use crate::opcode::Opcode;

/// Counters collected during one execution frame (including sub-calls).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecMetrics {
    /// Total instructions retired.
    pub instructions: u64,
    /// Estimated MCU cycles, summed from each opcode's base cost.
    pub mcu_cycles: u64,
    /// Highest stack pointer observed (number of 256-bit elements).
    pub max_stack_pointer: usize,
    /// Memory high-water mark in bytes.
    pub memory_high_water: usize,
    /// Bytes resident in storage when the frame finished.
    pub storage_bytes: usize,
    /// Gas consumed (only meaningful in metered mode).
    pub gas_used: u64,
    /// Number of Keccak-256 invocations (the `SHA3` opcode), needed by the
    /// device model because hashing runs in software on the MCU.
    pub keccak_invocations: u64,
    /// Total bytes hashed by `SHA3`.
    pub keccak_bytes: u64,
    /// Number of IoT opcode executions (sensor reads / actuations).
    pub iot_invocations: u64,
    /// Per-opcode execution histogram, indexed by opcode byte.
    #[serde(with = "serde_bytes_histogram")]
    pub opcode_histogram: [u64; 256],
}

impl Default for ExecMetrics {
    fn default() -> Self {
        ExecMetrics {
            instructions: 0,
            mcu_cycles: 0,
            max_stack_pointer: 0,
            memory_high_water: 0,
            storage_bytes: 0,
            gas_used: 0,
            keccak_invocations: 0,
            keccak_bytes: 0,
            iot_invocations: 0,
            opcode_histogram: [0u64; 256],
        }
    }
}

impl ExecMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one executed opcode.
    pub fn record(&mut self, opcode: Opcode) {
        self.instructions += 1;
        self.mcu_cycles += opcode.info().mcu_cycles as u64;
        self.opcode_histogram[opcode.to_byte() as usize] += 1;
    }

    /// Number of times `opcode` was executed.
    pub fn count(&self, opcode: Opcode) -> u64 {
        self.opcode_histogram[opcode.to_byte() as usize]
    }

    /// Merges the metrics of a completed sub-frame into this frame.
    pub fn absorb(&mut self, child: &ExecMetrics) {
        self.instructions += child.instructions;
        self.mcu_cycles += child.mcu_cycles;
        self.max_stack_pointer = self.max_stack_pointer.max(child.max_stack_pointer);
        self.memory_high_water = self.memory_high_water.max(child.memory_high_water);
        self.storage_bytes = self.storage_bytes.max(child.storage_bytes);
        self.gas_used += child.gas_used;
        self.keccak_invocations += child.keccak_invocations;
        self.keccak_bytes += child.keccak_bytes;
        self.iot_invocations += child.iot_invocations;
        for i in 0..256 {
            self.opcode_histogram[i] += child.opcode_histogram[i];
        }
    }

    /// Stack bytes corresponding to the maximum stack pointer (32 bytes per
    /// element), the "Stack (Bytes)" column of the paper's Table II.
    pub fn stack_bytes(&self) -> usize {
        self.max_stack_pointer * 32
    }
}

mod serde_bytes_histogram {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(value: &[u64; 256], serializer: S) -> Result<S::Ok, S::Error> {
        value.as_slice().serialize(serializer)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(deserializer: D) -> Result<[u64; 256], D::Error> {
        let values: Vec<u64> = Vec::deserialize(deserializer)?;
        let mut out = [0u64; 256];
        for (i, v) in values.into_iter().take(256).enumerate() {
            out[i] = v;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_updates_counters_and_histogram() {
        let mut metrics = ExecMetrics::new();
        metrics.record(Opcode::Add);
        metrics.record(Opcode::Add);
        metrics.record(Opcode::Mul);
        assert_eq!(metrics.instructions, 3);
        assert_eq!(metrics.count(Opcode::Add), 2);
        assert_eq!(metrics.count(Opcode::Mul), 1);
        assert_eq!(metrics.count(Opcode::Stop), 0);
        assert_eq!(
            metrics.mcu_cycles,
            2 * Opcode::Add.info().mcu_cycles as u64 + Opcode::Mul.info().mcu_cycles as u64
        );
    }

    #[test]
    fn absorb_merges_child_frames() {
        let mut parent = ExecMetrics::new();
        parent.record(Opcode::Call);
        parent.max_stack_pointer = 5;
        parent.memory_high_water = 100;

        let mut child = ExecMetrics::new();
        child.record(Opcode::Add);
        child.max_stack_pointer = 9;
        child.memory_high_water = 40;
        child.keccak_invocations = 2;
        child.iot_invocations = 1;

        parent.absorb(&child);
        assert_eq!(parent.instructions, 2);
        assert_eq!(parent.max_stack_pointer, 9);
        assert_eq!(parent.memory_high_water, 100);
        assert_eq!(parent.keccak_invocations, 2);
        assert_eq!(parent.iot_invocations, 1);
        assert_eq!(parent.count(Opcode::Add), 1);
        assert_eq!(parent.count(Opcode::Call), 1);
    }

    #[test]
    fn stack_bytes_are_32_per_element() {
        let mut metrics = ExecMetrics::new();
        metrics.max_stack_pointer = 8;
        assert_eq!(metrics.stack_bytes(), 256);
    }

    #[test]
    fn default_is_zeroed() {
        let metrics = ExecMetrics::default();
        assert_eq!(metrics.instructions, 0);
        assert_eq!(metrics.mcu_cycles, 0);
        assert!(metrics.opcode_histogram.iter().all(|&c| c == 0));
    }
}
