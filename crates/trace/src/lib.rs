#![forbid(unsafe_code)]
//! Structured event tracing and metrics for the TinyEVM stack.
//!
//! The source paper is a measurement study: Table IV (per-power-state
//! energy), Figure 4 (execution time) and Figure 5 (the current-draw
//! timeline) all come from instrumenting the node. This crate is the
//! reproduction's equivalent instrument bus. Long-lived components —
//! devices, links, endpoints, drivers, the virtual machine — accept a
//! [`TraceHandle`] through a `with_tracer(...)` builder and publish two
//! kinds of observations through it:
//!
//! * **typed events** ([`TraceEvent`]): power-state transitions, per-frame
//!   radio TX/RX, protocol round phases, contract-call summaries — the raw
//!   material for Figure-5-style timelines, exported as JSONL;
//! * **metrics** ([`MetricsRegistry`]): named [`Counter`]s, [`Gauge`]s and
//!   exact-quantile [`Histogram`]s (p50/p90/p99/max over the recorded
//!   samples) — the material for latency/energy tables.
//!
//! The default handle is a no-op: it holds no recorder, every publish
//! method is one `Option` branch, and event/label construction is deferred
//! behind closures so an untraced run does no formatting, no allocation and
//! no locking. The equivalence suites pin that a noop-traced run is
//! byte-identical to the untraced code it replaced. Attach a
//! [`RecordingTracer`] (ring-buffered, bounded) only when a harness
//! actually wants the data:
//!
//! ```
//! use tinyevm_trace::{TraceHandle, TraceEvent};
//!
//! let tracer = TraceHandle::recording(1024);
//! tracer.event(|| TraceEvent::Phase {
//!     node: "sender".into(),
//!     peer: "receiver".into(),
//!     phase: "payment".into(),
//!     sequence: 1,
//!     duration_us: 355_000,
//! });
//! tracer.observe("round_latency_ms", 583.8);
//! let snapshot = tracer.snapshot().unwrap();
//! assert_eq!(snapshot.events.len(), 1);
//! assert_eq!(snapshot.metrics.histogram("round_latency_ms").unwrap().count(), 1);
//! ```

pub mod event;
pub mod json;
pub mod metrics;
pub mod tracer;

pub use event::TraceEvent;
pub use json::value_to_json;
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary, MetricsRegistry};
pub use tracer::{NoopTracer, RecordingTracer, TraceHandle, TraceSnapshot, Tracer};
