//! The tracer trait, the no-op and recording implementations, and the
//! cloneable [`TraceHandle`] components actually hold.
//!
//! Components never own a tracer type directly: they hold a `TraceHandle`,
//! which is either empty (the default — every publish is one `Option`
//! branch and the closure arguments are never run) or an
//! `Arc<Mutex<RecordingTracer>>` shared with the harness that wants the
//! data. This keeps `RecordingTracer` out of every hot path while letting
//! any clone of the handle read the snapshot back at the end of a run.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::event::TraceEvent;
use crate::metrics::{Histogram, MetricsRegistry};

/// A sink for structured events and metrics.
///
/// The two implementations are [`NoopTracer`] (drops everything,
/// `enabled() == false`) and [`RecordingTracer`] (bounded ring of events
/// plus a [`MetricsRegistry`]).
pub trait Tracer {
    /// True when publishing has any effect. Callers use this to skip
    /// constructing expensive event payloads.
    fn enabled(&self) -> bool;
    /// Records one typed event.
    fn record_event(&mut self, event: TraceEvent);
    /// Adds `delta` to the named counter.
    fn add_counter(&mut self, name: &str, delta: u64);
    /// Sets the named gauge.
    fn set_gauge(&mut self, name: &str, value: f64);
    /// Records one histogram sample.
    fn observe(&mut self, name: &str, value: f64);
}

/// The default sink: drops everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn enabled(&self) -> bool {
        false
    }
    fn record_event(&mut self, _event: TraceEvent) {}
    fn add_counter(&mut self, _name: &str, _delta: u64) {}
    fn set_gauge(&mut self, _name: &str, _value: f64) {}
    fn observe(&mut self, _name: &str, _value: f64) {}
}

/// A bounded recording sink: a ring buffer of the most recent events plus
/// a metrics registry.
///
/// When the ring is full the *oldest* event is dropped and
/// [`RecordingTracer::dropped`] counts it, so a long soak keeps the tail
/// of the timeline and the memory bound holds. Metrics are not ring
/// buffered — counters and gauges are O(1) per name, and histograms carry
/// their own sample cap.
#[derive(Debug, Clone, Default)]
pub struct RecordingTracer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    metrics: MetricsRegistry,
}

/// Default event-ring capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 16_384;

impl RecordingTracer {
    /// Creates a recorder with the default event capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// Creates a recorder keeping at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        RecordingTracer {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
            metrics: MetricsRegistry::new(),
        }
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The metrics recorded so far.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Renders all recorded events as JSONL: one JSON object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }

    /// Copies the current state out as an owned [`TraceSnapshot`].
    pub fn snapshot(&self) -> TraceSnapshot {
        TraceSnapshot {
            events: self.events.iter().cloned().collect(),
            dropped: self.dropped,
            metrics: self.metrics.clone(),
        }
    }
}

impl Tracer for RecordingTracer {
    fn enabled(&self) -> bool {
        true
    }

    fn record_event(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped = self.dropped.saturating_add(1);
        }
        self.events.push_back(event);
    }

    fn add_counter(&mut self, name: &str, delta: u64) {
        self.metrics.count(name, delta);
    }

    fn set_gauge(&mut self, name: &str, value: f64) {
        self.metrics.gauge(name, value);
    }

    fn observe(&mut self, name: &str, value: f64) {
        self.metrics.observe(name, value);
    }
}

/// An owned copy of a recording's state, safe to inspect after the traced
/// components are gone.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Recorded events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events evicted from the ring.
    pub dropped: u64,
    /// All named metrics.
    pub metrics: MetricsRegistry,
}

impl TraceSnapshot {
    /// Renders the snapshot's events as JSONL.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }

    /// Events of one kind, in order.
    pub fn events_of_kind<'a>(
        &'a self,
        kind: &'a str,
    ) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.kind() == kind)
    }

    /// The named histogram, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.metrics.histogram(name)
    }
}

/// The handle components hold: either empty (no-op, the default) or a
/// shared reference to one [`RecordingTracer`].
///
/// Every publish method takes the payload lazily — a closure for events
/// and labelled gauges, plain values only where construction is free — so
/// the disabled path never formats, allocates or locks. Clones share the
/// recorder: attach one handle to a whole fleet and snapshot it once.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle {
    inner: Option<Arc<Mutex<RecordingTracer>>>,
}

impl TraceHandle {
    /// The no-op handle (same as `TraceHandle::default()`).
    pub fn noop() -> Self {
        TraceHandle { inner: None }
    }

    /// A handle backed by a fresh recorder keeping at most `capacity`
    /// events.
    pub fn recording(capacity: usize) -> Self {
        TraceHandle {
            inner: Some(Arc::new(Mutex::new(RecordingTracer::with_capacity(
                capacity,
            )))),
        }
    }

    /// True when a recorder is attached.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Publishes one event; `make` only runs when recording.
    #[inline]
    pub fn event<F: FnOnce() -> TraceEvent>(&self, make: F) {
        if let Some(inner) = &self.inner {
            inner.lock().expect("tracer lock").record_event(make());
        }
    }

    /// Adds `delta` to the named counter.
    #[inline]
    pub fn count(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.lock().expect("tracer lock").add_counter(name, delta);
        }
    }

    /// Sets the named gauge.
    #[inline]
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.lock().expect("tracer lock").set_gauge(name, value);
        }
    }

    /// Sets a gauge whose name needs formatting (e.g. a per-peer label);
    /// `name` only runs when recording.
    #[inline]
    pub fn gauge_labeled<F: FnOnce() -> String>(&self, name: F, value: f64) {
        if let Some(inner) = &self.inner {
            inner.lock().expect("tracer lock").set_gauge(&name(), value);
        }
    }

    /// Records one histogram sample.
    #[inline]
    pub fn observe(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.lock().expect("tracer lock").observe(name, value);
        }
    }

    /// Records a histogram sample under a formatted name; `name` only runs
    /// when recording.
    #[inline]
    pub fn observe_labeled<F: FnOnce() -> String>(&self, name: F, value: f64) {
        if let Some(inner) = &self.inner {
            inner.lock().expect("tracer lock").observe(&name(), value);
        }
    }

    /// Copies the recorder's state out (`None` for a no-op handle).
    pub fn snapshot(&self) -> Option<TraceSnapshot> {
        self.inner
            .as_ref()
            .map(|inner| inner.lock().expect("tracer lock").snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase_event(sequence: u64) -> TraceEvent {
        TraceEvent::Phase {
            node: "sender".into(),
            peer: "receiver".into(),
            phase: "payment".into(),
            sequence,
            duration_us: 1_000,
        }
    }

    #[test]
    fn noop_handle_runs_no_closures() {
        let handle = TraceHandle::default();
        assert!(!handle.enabled());
        handle.event(|| unreachable!("noop handle must not build events"));
        handle.gauge_labeled(|| unreachable!("noop handle must not format labels"), 1.0);
        handle.count("x", 1);
        handle.observe("y", 2.0);
        assert!(handle.snapshot().is_none());
    }

    #[test]
    fn recording_handle_shares_state_across_clones() {
        let handle = TraceHandle::recording(8);
        let clone = handle.clone();
        handle.event(|| phase_event(1));
        clone.event(|| phase_event(2));
        clone.count("rounds", 1);
        handle.gauge_labeled(|| format!("balance.{}", "receiver"), 30.0);
        handle.observe_labeled(|| "latency".to_string(), 5.0);
        let snapshot = handle.snapshot().unwrap();
        assert_eq!(snapshot.events.len(), 2);
        assert_eq!(snapshot.metrics.counter("rounds"), 1);
        assert_eq!(snapshot.metrics.gauge_value("balance.receiver"), Some(30.0));
        assert_eq!(snapshot.histogram("latency").unwrap().count(), 1);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut tracer = RecordingTracer::with_capacity(3);
        for sequence in 0..5 {
            tracer.record_event(phase_event(sequence));
        }
        assert_eq!(tracer.dropped(), 2);
        let kept: Vec<u64> = tracer
            .events()
            .map(|e| match e {
                TraceEvent::Phase { sequence, .. } => *sequence,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![2, 3, 4]);
        let snapshot = tracer.snapshot();
        assert_eq!(snapshot.dropped, 2);
        assert_eq!(snapshot.events_of_kind("Phase").count(), 3);
        assert_eq!(snapshot.events_of_kind("Round").count(), 0);
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let mut tracer = RecordingTracer::new();
        tracer.record_event(phase_event(1));
        tracer.record_event(phase_event(2));
        let jsonl = tracer.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with("{\"type\":\"Phase\""));
            assert!(line.ends_with('}'));
        }
        assert_eq!(jsonl, tracer.snapshot().to_jsonl());
    }

    #[test]
    fn noop_tracer_trait_impl_discards() {
        let mut noop = NoopTracer;
        assert!(!noop.enabled());
        noop.record_event(phase_event(1));
        noop.add_counter("a", 1);
        noop.set_gauge("b", 2.0);
        noop.observe("c", 3.0);
    }
}
