//! A tiny JSON renderer over the vendored serde's `Value` model.
//!
//! The workspace has no `serde_json`; this module is the one place that
//! turns `serde::Value` trees into JSON text, shared by the JSONL trace
//! export and the schema-stability golden tests. The rendering is
//! deterministic: struct fields keep declaration order (the `Value::Map`
//! preserves it), floats use Rust's shortest round-trip formatting, and
//! non-finite floats render as `null`.

use serde::Value;

/// Renders a `Value` tree as compact JSON (no whitespace).
pub fn value_to_json(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value);
    out
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Unit => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if v.is_finite() {
                out.push_str(&v.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (index, item) in items.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(fields) => {
            out.push('{');
            for (index, (name, field)) in fields.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                write_string(out, name);
                out.push(':');
                write_value(out, field);
            }
            out.push('}');
        }
        // Enum variants render as a tagged object: the struct-variant
        // payload's fields are inlined after the tag, other payloads go
        // under "value".
        Value::Variant(tag, payload) => {
            out.push('{');
            out.push_str("\"type\":");
            write_string(out, tag);
            match payload.as_ref() {
                Value::Unit => {}
                Value::Map(fields) => {
                    for (name, field) in fields {
                        out.push(',');
                        write_string(out, name);
                        out.push(':');
                        write_value(out, field);
                    }
                }
                other => {
                    out.push_str(",\"value\":");
                    write_value(out, other);
                }
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_every_value_shape() {
        assert_eq!(value_to_json(&Value::Unit), "null");
        assert_eq!(value_to_json(&Value::Bool(true)), "true");
        assert_eq!(value_to_json(&Value::UInt(42)), "42");
        assert_eq!(value_to_json(&Value::Int(-7)), "-7");
        assert_eq!(value_to_json(&Value::F64(1.5)), "1.5");
        assert_eq!(value_to_json(&Value::F64(24.0)), "24");
        assert_eq!(value_to_json(&Value::F64(f64::NAN)), "null");
        assert_eq!(value_to_json(&Value::Str("a\"b\n".into())), "\"a\\\"b\\n\"");
        assert_eq!(
            value_to_json(&Value::Seq(vec![Value::UInt(1), Value::UInt(2)])),
            "[1,2]"
        );
        assert_eq!(
            value_to_json(&Value::Map(vec![
                ("a".into(), Value::UInt(1)),
                ("b".into(), Value::Bool(false)),
            ])),
            "{\"a\":1,\"b\":false}"
        );
        assert_eq!(
            value_to_json(&Value::Variant(
                "Power".into(),
                Box::new(Value::Map(vec![("node".into(), Value::Str("s".into()))]))
            )),
            "{\"type\":\"Power\",\"node\":\"s\"}"
        );
        assert_eq!(
            value_to_json(&Value::Variant("Idle".into(), Box::new(Value::Unit))),
            "{\"type\":\"Idle\"}"
        );
        assert_eq!(
            value_to_json(&Value::Variant(
                "Pair".into(),
                Box::new(Value::Seq(vec![Value::UInt(1), Value::UInt(2)]))
            )),
            "{\"type\":\"Pair\",\"value\":[1,2]}"
        );
    }
}
