//! The typed events the stack publishes.
//!
//! Fields are plain strings and integers (microseconds, bytes, cycle
//! counts) so the crate sits at the very bottom of the dependency stack —
//! every layer can emit without `tinyevm-trace` knowing about addresses,
//! opcodes or power-state enums. Serialization goes through the vendored
//! serde's `Value` model; [`TraceEvent::to_json`] renders one event as one
//! JSON object, and a recorded run exports as JSONL (one event per line).
//! The shape of these objects is schema: the golden-vector suite pins it.

use serde::{Deserialize, Serialize};

use crate::json::value_to_json;

/// One structured observation from somewhere in the stack.
///
/// Times are microseconds of *simulated* device/link time (the models are
/// deterministic), not host wall-clock, so traces are reproducible
/// byte-for-byte across runs and machines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// One power-state residency interval of a device's energy meter — the
    /// Figure 5 current timeline, one entry per state transition.
    Power {
        /// Device label (e.g. `"sender"`, `"sensor 0x0001"`).
        node: String,
        /// Power-state label in the paper's Table IV vocabulary.
        state: String,
        /// Interval start on the device's simulated clock.
        start_us: u64,
        /// Interval length.
        duration_us: u64,
        /// Current draw in that state (mA), so the event stream alone can
        /// reproduce the Figure 5 plot.
        current_ma: f64,
    },
    /// One link-layer frame put on the air (including each retransmission).
    FrameTx {
        /// Transmitting node label.
        from: String,
        /// Receiving node label.
        to: String,
        /// On-air size of the frame, headers included.
        bytes: u64,
        /// Time-on-air of this frame.
        airtime_us: u64,
        /// True when this transmission repeats a lost frame.
        retransmission: bool,
    },
    /// One frame the seeded loss process dropped before delivery.
    FrameLost {
        /// Transmitting node label.
        from: String,
        /// Intended receiver label.
        to: String,
        /// On-air size of the lost frame.
        bytes: u64,
    },
    /// One completed phase of a payment-channel round on one endpoint
    /// (reading → payment → ack → close).
    Phase {
        /// Endpoint label.
        node: String,
        /// Peer the channel runs against.
        peer: String,
        /// Phase name: `"reading"`, `"payment"`, `"ack"` or `"close"`.
        phase: String,
        /// Payment sequence number the phase belongs to (0 for close).
        sequence: u64,
        /// Device-time the phase took on this endpoint.
        duration_us: u64,
    },
    /// One completed payment round as the paying endpoint saw it.
    Round {
        /// Paying endpoint label.
        node: String,
        /// Receiving peer label.
        peer: String,
        /// Payment sequence number.
        sequence: u64,
        /// Cumulative channel balance after the round (wei).
        cumulative_wei: u64,
        /// End-to-end latency of the round.
        latency_us: u64,
    },
    /// One disturbance a seeded fault plan injected into a transfer.
    Fault {
        /// Transmitting node label.
        from: String,
        /// Receiving node label.
        to: String,
        /// Fault kind: `"corrupt"`, `"duplicate"`, `"reorder"`, `"replay"`,
        /// `"delay"` or `"partition"`.
        fault: String,
        /// Link-local id of the message the fault hit.
        message_id: u64,
    },
    /// One contention slot in which two or more frames overlapped on the
    /// shared medium and (unless captured) were destroyed.
    Collision {
        /// Medium-wide contention-slot index of the overlap.
        slot: u64,
        /// How many senders transmitted in the slot.
        contenders: u32,
        /// True when the strongest frame cleared the capture threshold and
        /// was decoded anyway.
        captured: bool,
    },
    /// One sender growing its contention window after a collision and
    /// drawing a fresh backoff wait.
    Backoff {
        /// Backing-off sender label.
        node: String,
        /// Contention window after the (binary exponential) growth, slots.
        window_slots: u32,
        /// Slots the sender will wait before recontending.
        wait_slots: u32,
    },
    /// One completed contract-call frame of the virtual machine, with the
    /// MCU-cycle budget broken down by opcode category.
    ContractCall {
        /// How the frame finished (`"stop"`, `"return"`, `"revert"`,
        /// `"selfdestruct"` or `"trap"`).
        outcome: String,
        /// Instructions retired, sub-frames included.
        instructions: u64,
        /// Total estimated MCU cycles.
        mcu_cycles: u64,
        /// Cycles spent in arithmetic/comparison/hash operation opcodes.
        operation_cycles: u64,
        /// Cycles spent in call/log/create smart-contract opcodes.
        smart_contract_cycles: u64,
        /// Cycles spent in stack/memory/storage opcodes.
        memory_cycles: u64,
        /// Cycles spent in blockchain-information opcodes.
        blockchain_cycles: u64,
        /// Cycles spent in the IoT opcode.
        iot_cycles: u64,
        /// Keccak-256 invocations (hashing runs in software on the MCU).
        keccak_invocations: u64,
    },
}

impl TraceEvent {
    /// Renders the event as one JSON object (one JSONL line, without the
    /// trailing newline).
    pub fn to_json(&self) -> String {
        let value = serde::to_value(self).expect("trace events always serialize");
        value_to_json(&value)
    }

    /// The event's variant name, as tagged in the JSON export.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Power { .. } => "Power",
            TraceEvent::FrameTx { .. } => "FrameTx",
            TraceEvent::FrameLost { .. } => "FrameLost",
            TraceEvent::Phase { .. } => "Phase",
            TraceEvent::Round { .. } => "Round",
            TraceEvent::Fault { .. } => "Fault",
            TraceEvent::Collision { .. } => "Collision",
            TraceEvent::Backoff { .. } => "Backoff",
            TraceEvent::ContractCall { .. } => "ContractCall",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_the_value_model() {
        let events = [
            TraceEvent::Power {
                node: "sender".into(),
                state: "TX".into(),
                start_us: 10,
                duration_us: 25,
                current_ma: 24.0,
            },
            TraceEvent::FrameTx {
                from: "0x0001".into(),
                to: "0x00fe".into(),
                bytes: 127,
                airtime_us: 4_064,
                retransmission: true,
            },
            TraceEvent::FrameLost {
                from: "0x0001".into(),
                to: "0x00fe".into(),
                bytes: 127,
            },
            TraceEvent::Phase {
                node: "sender".into(),
                peer: "receiver".into(),
                phase: "payment".into(),
                sequence: 3,
                duration_us: 355_000,
            },
            TraceEvent::Round {
                node: "sender".into(),
                peer: "receiver".into(),
                sequence: 3,
                cumulative_wei: 30_000,
                latency_us: 1_435_600,
            },
            TraceEvent::Fault {
                from: "0x0001".into(),
                to: "0x00fe".into(),
                fault: "corrupt".into(),
                message_id: 12,
            },
            TraceEvent::Collision {
                slot: 811,
                contenders: 3,
                captured: false,
            },
            TraceEvent::Backoff {
                node: "0x0001".into(),
                window_slots: 16,
                wait_slots: 9,
            },
            TraceEvent::ContractCall {
                outcome: "return".into(),
                instructions: 120,
                mcu_cycles: 600,
                operation_cycles: 200,
                smart_contract_cycles: 0,
                memory_cycles: 380,
                blockchain_cycles: 0,
                iot_cycles: 20,
                keccak_invocations: 1,
            },
        ];
        for event in events {
            let value = serde::to_value(&event).unwrap();
            let back: TraceEvent = serde::from_value(value).unwrap();
            assert_eq!(back, event);
            assert!(event.to_json().contains(event.kind()));
        }
    }
}
