//! Named counters, gauges and exact-quantile histograms.
//!
//! The registry is deliberately simple: `BTreeMap`s keyed by name, so
//! snapshots iterate in a stable order and render deterministically. The
//! histogram keeps the raw samples (bounded) and extracts quantiles by the
//! nearest-rank definition, which the property suite pins against a
//! sorted-vector oracle.

use std::collections::BTreeMap;

/// A monotonically increasing count (retransmissions, cache hits, frames).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Adds `delta` to the counter, saturating at `u64::MAX`.
    pub fn add(&mut self, delta: u64) {
        self.value = self.value.saturating_add(delta);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A point-in-time value (a channel balance, a queue depth).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge {
    value: f64,
}

impl Gauge {
    /// Overwrites the gauge.
    pub fn set(&mut self, value: f64) {
        self.value = value;
    }

    /// The last value set.
    pub fn get(&self) -> f64 {
        self.value
    }
}

/// A distribution of samples with exact quantile extraction.
///
/// Samples are stored raw up to `cap`; once the cap is reached further
/// observations are counted (in [`Histogram::count`]) but not stored, so a
/// soak run cannot grow memory without bound. Quantiles are exact over the
/// *stored* samples, by the nearest-rank definition: for `0 < q <= 1` over
/// `n` ascending samples, the quantile is the sample at index
/// `ceil(q * n) - 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    samples: Vec<f64>,
    observed: u64,
    cap: usize,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Default bound on stored samples per histogram.
pub const DEFAULT_HISTOGRAM_CAP: usize = 65_536;

impl Histogram {
    /// Creates an empty histogram with the default sample cap.
    pub fn new() -> Self {
        Self::with_cap(DEFAULT_HISTOGRAM_CAP)
    }

    /// Creates an empty histogram storing at most `cap` samples.
    pub fn with_cap(cap: usize) -> Self {
        Histogram {
            samples: Vec::new(),
            observed: 0,
            cap: cap.max(1),
        }
    }

    /// Records one sample (non-finite samples are counted but not stored,
    /// so they cannot poison the quantiles).
    pub fn observe(&mut self, value: f64) {
        self.observed = self.observed.saturating_add(1);
        if value.is_finite() && self.samples.len() < self.cap {
            self.samples.push(value);
        }
    }

    /// Total observations, including any beyond the storage cap.
    pub fn count(&self) -> u64 {
        self.observed
    }

    /// Number of samples actually stored.
    pub fn stored(&self) -> usize {
        self.samples.len()
    }

    /// The raw stored samples, in observation order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The nearest-rank `q`-quantile over the stored samples
    /// (`None` when empty). `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("stored samples are finite"));
        let n = sorted.len();
        let q = q.clamp(0.0, 1.0);
        let rank = (q * n as f64).ceil() as usize;
        Some(sorted[rank.clamp(1, n) - 1])
    }

    /// Median (p50).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Largest stored sample.
    pub fn max(&self) -> Option<f64> {
        self.quantile(1.0)
    }

    /// Arithmetic mean of the stored samples.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Sum of the stored samples.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// The quantile digest most tables want.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            p50: self.p50().unwrap_or(0.0),
            p90: self.p90().unwrap_or(0.0),
            p99: self.p99().unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
            mean: self.mean().unwrap_or(0.0),
        }
    }
}

/// The p50/p90/p99/max/mean digest of one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSummary {
    /// Total observations.
    pub count: u64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
}

/// All named metrics of one recording.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter, creating it at zero on first use.
    pub fn count(&mut self, name: &str, delta: u64) {
        self.counters.entry(name.to_owned()).or_default().add(delta);
    }

    /// Sets the named gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.entry(name.to_owned()).or_default().set(value);
    }

    /// Records one sample into the named histogram.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .observe(value);
    }

    /// The named counter's value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).map(Counter::get).unwrap_or(0)
    }

    /// The named gauge's value, if ever set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).map(Gauge::get)
    }

    /// The named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let mut registry = MetricsRegistry::new();
        registry.count("net.retransmissions", 2);
        registry.count("net.retransmissions", 3);
        assert_eq!(registry.counter("net.retransmissions"), 5);
        assert_eq!(registry.counter("never.touched"), 0);
        let mut counter = Counter::default();
        counter.add(u64::MAX);
        counter.add(10);
        assert_eq!(counter.get(), u64::MAX);
    }

    #[test]
    fn gauges_keep_the_last_value() {
        let mut registry = MetricsRegistry::new();
        registry.gauge("balance", 10.0);
        registry.gauge("balance", 25.0);
        assert_eq!(registry.gauge_value("balance"), Some(25.0));
        assert_eq!(registry.gauge_value("missing"), None);
    }

    #[test]
    fn quantiles_follow_nearest_rank() {
        let mut histogram = Histogram::new();
        for value in [10.0, 20.0, 30.0, 40.0, 50.0] {
            histogram.observe(value);
        }
        assert_eq!(histogram.p50(), Some(30.0));
        assert_eq!(histogram.p90(), Some(50.0));
        assert_eq!(histogram.p99(), Some(50.0));
        assert_eq!(histogram.max(), Some(50.0));
        assert_eq!(histogram.quantile(0.2), Some(10.0));
        assert_eq!(histogram.quantile(0.0), Some(10.0));
        assert_eq!(histogram.mean(), Some(30.0));
        // Single sample: every quantile is that sample.
        let mut one = Histogram::new();
        one.observe(7.5);
        assert_eq!(one.p50(), Some(7.5));
        assert_eq!(one.p99(), Some(7.5));
        // Empty: no quantiles.
        assert_eq!(Histogram::new().p50(), None);
    }

    #[test]
    fn histogram_cap_bounds_storage_but_not_the_count() {
        let mut histogram = Histogram::with_cap(4);
        for i in 0..10 {
            histogram.observe(i as f64);
        }
        assert_eq!(histogram.stored(), 4);
        assert_eq!(histogram.count(), 10);
        assert_eq!(histogram.max(), Some(3.0));
    }

    #[test]
    fn non_finite_samples_are_counted_but_not_stored() {
        let mut histogram = Histogram::new();
        histogram.observe(f64::NAN);
        histogram.observe(f64::INFINITY);
        histogram.observe(1.0);
        assert_eq!(histogram.count(), 3);
        assert_eq!(histogram.stored(), 1);
        assert_eq!(histogram.p50(), Some(1.0));
    }

    #[test]
    fn registry_iterates_in_name_order() {
        let mut registry = MetricsRegistry::new();
        registry.observe("z", 1.0);
        registry.observe("a", 2.0);
        registry.count("m", 1);
        let names: Vec<&str> = registry.histograms().map(|(name, _)| name).collect();
        assert_eq!(names, vec!["a", "z"]);
        assert!(!registry.is_empty());
        let summary = registry.histogram("a").unwrap().summary();
        assert_eq!(summary.count, 1);
        assert_eq!(summary.p50, 2.0);
    }
}
