//! The device memory budget (paper Table III).
//!
//! The CC2538 has 32 KB of RAM and 512 KB of ROM. The paper splits the RAM
//! between the Contiki-NG operating system (10,394 bytes, 33%), the TinyEVM
//! virtual machine arenas (13,286 bytes, 42%) and the deployed smart-contract
//! template (2,035 bytes, 5%), leaving about 20% free. [`Footprint`] models
//! that budget so experiments can check whether a given configuration still
//! fits the part — and regenerate Table III.

use serde::{Deserialize, Serialize};

/// One row of the footprint table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FootprintComponent {
    /// Component name (e.g. "Contiki-NG OS").
    pub name: String,
    /// RAM bytes used.
    pub ram_bytes: usize,
    /// ROM bytes used.
    pub rom_bytes: usize,
}

/// The device memory budget and its occupants.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Footprint {
    /// Total RAM of the part, in bytes.
    pub ram_total: usize,
    /// Total ROM of the part, in bytes.
    pub rom_total: usize,
    /// Components occupying the budget.
    pub components: Vec<FootprintComponent>,
}

impl Footprint {
    /// RAM size of the CC2538 (32 KB).
    pub const CC2538_RAM: usize = 32 * 1024;
    /// ROM size of the CC2538 (512 KB).
    pub const CC2538_ROM: usize = 512 * 1024;

    /// The paper's Table III configuration: Contiki-NG, the TinyEVM arenas
    /// (stack + RAM + storage + interpreter state) and a deployed template
    /// of `template_bytes` (2,035 bytes in the paper).
    pub fn tinyevm_on_cc2538(template_bytes: usize) -> Self {
        Footprint {
            ram_total: Self::CC2538_RAM,
            rom_total: Self::CC2538_ROM,
            components: vec![
                FootprintComponent {
                    name: "Contiki-NG OS".to_string(),
                    ram_bytes: 10_394,
                    rom_bytes: 40_527,
                },
                FootprintComponent {
                    name: "TinyEVM".to_string(),
                    // 3 KB stack + 8 KB RAM + 1 KB storage + ~1.2 KB
                    // interpreter state = 13,286 bytes (Table III).
                    ram_bytes: 13_286,
                    rom_bytes: 1_937,
                },
                FootprintComponent {
                    name: "Smart Contract Template".to_string(),
                    ram_bytes: template_bytes,
                    rom_bytes: 0,
                },
            ],
        }
    }

    /// An empty budget for a custom platform.
    pub fn new(ram_total: usize, rom_total: usize) -> Self {
        Footprint {
            ram_total,
            rom_total,
            components: Vec::new(),
        }
    }

    /// Adds a component to the budget.
    pub fn add_component(&mut self, name: &str, ram_bytes: usize, rom_bytes: usize) {
        self.components.push(FootprintComponent {
            name: name.to_string(),
            ram_bytes,
            rom_bytes,
        });
    }

    /// Total RAM used by all components.
    pub fn ram_used(&self) -> usize {
        self.components.iter().map(|c| c.ram_bytes).sum()
    }

    /// Total ROM used by all components.
    pub fn rom_used(&self) -> usize {
        self.components.iter().map(|c| c.rom_bytes).sum()
    }

    /// RAM still available.
    pub fn ram_available(&self) -> usize {
        self.ram_total.saturating_sub(self.ram_used())
    }

    /// ROM still available.
    pub fn rom_available(&self) -> usize {
        self.rom_total.saturating_sub(self.rom_used())
    }

    /// RAM utilisation of one component as a percentage of the part's RAM.
    pub fn ram_percent(&self, component: &FootprintComponent) -> f64 {
        component.ram_bytes as f64 / self.ram_total as f64 * 100.0
    }

    /// ROM utilisation of one component as a percentage of the part's ROM.
    pub fn rom_percent(&self, component: &FootprintComponent) -> f64 {
        component.rom_bytes as f64 / self.rom_total as f64 * 100.0
    }

    /// True when the configuration fits the part.
    pub fn fits(&self) -> bool {
        self.ram_used() <= self.ram_total && self.rom_used() <= self.rom_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_three_reproduction() {
        let footprint = Footprint::tinyevm_on_cc2538(2_035);
        assert_eq!(footprint.ram_total, 32 * 1024);
        assert_eq!(footprint.rom_total, 512 * 1024);
        // Total footprint from the paper: 25,715 bytes of RAM (80%),
        // 53,239 bytes of ROM (about 11%, the paper rounds the total), and
        // roughly 6.3 KB of RAM left.
        assert_eq!(footprint.ram_used(), 25_715);
        assert_eq!(footprint.rom_used(), 42_464);
        assert_eq!(footprint.ram_available(), 7_053);
        assert!(footprint.fits());

        let percentages: Vec<f64> = footprint
            .components
            .iter()
            .map(|c| footprint.ram_percent(c))
            .collect();
        // Contiki-NG ≈ 32%, TinyEVM ≈ 41%, template ≈ 6% (paper: 33/42/5
        // after rounding).
        assert!((percentages[0] - 31.7).abs() < 1.5);
        assert!((percentages[1] - 40.5).abs() < 1.5);
        assert!((percentages[2] - 6.2).abs() < 1.5);
        // ROM usage is dominated by the OS and stays around 10%.
        assert!(footprint.rom_percent(&footprint.components[0]) < 10.0);
        assert!((footprint.rom_used() as f64 / footprint.rom_total as f64) * 100.0 < 12.0);
    }

    #[test]
    fn custom_budget_accounting() {
        let mut footprint = Footprint::new(1000, 2000);
        footprint.add_component("a", 300, 500);
        footprint.add_component("b", 200, 100);
        assert_eq!(footprint.ram_used(), 500);
        assert_eq!(footprint.rom_used(), 600);
        assert_eq!(footprint.ram_available(), 500);
        assert_eq!(footprint.rom_available(), 1400);
        assert!(footprint.fits());
        footprint.add_component("too big", 600, 0);
        assert!(!footprint.fits());
        assert_eq!(footprint.ram_available(), 0);
    }

    #[test]
    fn larger_templates_shrink_headroom() {
        let small = Footprint::tinyevm_on_cc2538(1_000);
        let large = Footprint::tinyevm_on_cc2538(8_192);
        assert!(small.ram_available() > large.ram_available());
        assert!(large.fits(), "an 8 KB template still fits the part");
    }
}
