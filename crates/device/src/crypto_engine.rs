//! The CC2538 cryptographic engine model.
//!
//! The paper offloads ECDSA and SHA-256 to the SoC's hardware engine
//! (clocked at 250 MHz) and runs Keccak-256 in software; Table V gives the
//! measured latencies. This module wraps the real implementations from
//! `tinyevm-crypto` with those latencies, so callers get correct signatures
//! *and* device-faithful timing / energy accounting.

use std::time::Duration;

use tinyevm_crypto::secp256k1::{PrivateKey, PublicKey, Signature};
use tinyevm_crypto::{keccak256, sha256};

use crate::energy::{EnergyMeter, PowerState};

/// Latency model of one cryptographic operation class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CryptoLatencies {
    /// ECDSA signature generation (hardware, Table V: 350 ms).
    pub ecdsa_sign: Duration,
    /// ECDSA verification / public-key recovery (hardware; the paper does
    /// not list it separately, the engine takes a comparable time to a
    /// signature).
    pub ecdsa_verify: Duration,
    /// SHA-256 (hardware, Table V: 1 ms).
    pub sha256: Duration,
    /// Keccak-256 (software on the MCU, Table V: 5 ms).
    pub keccak256: Duration,
}

impl CryptoLatencies {
    /// The Table V latencies.
    pub fn cc2538() -> Self {
        CryptoLatencies {
            ecdsa_sign: Duration::from_millis(350),
            ecdsa_verify: Duration::from_millis(350),
            sha256: Duration::from_millis(1),
            keccak256: Duration::from_millis(5),
        }
    }
}

/// The hardware crypto engine plus the software Keccak path.
///
/// Every operation records its time into the supplied [`EnergyMeter`]:
/// hardware operations as [`PowerState::CryptoEngine`], the software Keccak
/// as [`PowerState::CpuActive`].
///
/// # Example
///
/// ```
/// use tinyevm_device::{CryptoEngine, EnergyMeter};
/// use tinyevm_crypto::secp256k1::PrivateKey;
///
/// let engine = CryptoEngine::cc2538();
/// let mut meter = EnergyMeter::cc2538();
/// let key = PrivateKey::from_seed(b"sensor");
/// let digest = engine.keccak256(&mut meter, b"payment");
/// let signature = engine.sign(&mut meter, &key, &digest);
/// assert!(engine.verify(&mut meter, &key.public_key(), &digest, &signature));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CryptoEngine {
    latencies: CryptoLatencies,
}

impl CryptoEngine {
    /// Engine with the CC2538 latencies.
    pub fn cc2538() -> Self {
        CryptoEngine {
            latencies: CryptoLatencies::cc2538(),
        }
    }

    /// Engine with custom latencies (for ablations).
    pub fn with_latencies(latencies: CryptoLatencies) -> Self {
        CryptoEngine { latencies }
    }

    /// The configured latencies.
    pub fn latencies(&self) -> CryptoLatencies {
        self.latencies
    }

    /// Total crypto time of one transaction round (one Keccak + one SHA-256
    /// + one ECDSA signature), the paper's Table V "total" row (356 ms).
    pub fn transaction_round_time(&self) -> Duration {
        self.latencies.keccak256 + self.latencies.sha256 + self.latencies.ecdsa_sign
    }

    /// Keccak-256 (software): hashes `data` and charges CPU time.
    pub fn keccak256(&self, meter: &mut EnergyMeter, data: &[u8]) -> [u8; 32] {
        meter.record(PowerState::CpuActive, self.latencies.keccak256);
        keccak256(data)
    }

    /// SHA-256 (hardware engine).
    pub fn sha256(&self, meter: &mut EnergyMeter, data: &[u8]) -> [u8; 32] {
        meter.record(PowerState::CryptoEngine, self.latencies.sha256);
        sha256(data)
    }

    /// ECDSA signature over a prehashed digest (hardware engine).
    pub fn sign(&self, meter: &mut EnergyMeter, key: &PrivateKey, digest: &[u8; 32]) -> Signature {
        meter.record(PowerState::CryptoEngine, self.latencies.ecdsa_sign);
        key.sign_prehashed(digest)
    }

    /// ECDSA verification (hardware engine).
    pub fn verify(
        &self,
        meter: &mut EnergyMeter,
        public_key: &PublicKey,
        digest: &[u8; 32],
        signature: &Signature,
    ) -> bool {
        meter.record(PowerState::CryptoEngine, self.latencies.ecdsa_verify);
        public_key.verify_prehashed(digest, signature)
    }

    /// Recovers the signer address from a signature (hardware engine).
    pub fn recover_address(
        &self,
        meter: &mut EnergyMeter,
        digest: &[u8; 32],
        signature: &Signature,
    ) -> Option<tinyevm_types::Address> {
        meter.record(PowerState::CryptoEngine, self.latencies.ecdsa_verify);
        signature.recover_address(digest).ok()
    }
}

impl Default for CryptoEngine {
    fn default() -> Self {
        CryptoEngine::cc2538()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_table_five() {
        let latencies = CryptoLatencies::cc2538();
        assert_eq!(latencies.ecdsa_sign, Duration::from_millis(350));
        assert_eq!(latencies.sha256, Duration::from_millis(1));
        assert_eq!(latencies.keccak256, Duration::from_millis(5));
        // Total transaction round: 356 ms (Table V).
        assert_eq!(
            CryptoEngine::cc2538().transaction_round_time(),
            Duration::from_millis(356)
        );
    }

    #[test]
    fn operations_charge_the_meter() {
        let engine = CryptoEngine::cc2538();
        let mut meter = EnergyMeter::cc2538();
        let key = PrivateKey::from_seed(b"meter test");
        let digest = engine.keccak256(&mut meter, b"data");
        let _ = engine.sha256(&mut meter, b"data");
        let signature = engine.sign(&mut meter, &key, &digest);
        assert!(engine.verify(&mut meter, &key.public_key(), &digest, &signature));
        assert_eq!(
            meter.time_in(PowerState::CpuActive),
            Duration::from_millis(5)
        );
        assert_eq!(
            meter.time_in(PowerState::CryptoEngine),
            Duration::from_millis(1 + 350 + 350)
        );
    }

    #[test]
    fn signatures_produced_by_the_engine_are_real() {
        let engine = CryptoEngine::cc2538();
        let mut meter = EnergyMeter::cc2538();
        let key = PrivateKey::from_seed(b"real signature");
        let digest = keccak256(b"channel state 7");
        let signature = engine.sign(&mut meter, &key, &digest);
        // Verifiable both through the engine and directly with the library.
        assert!(key.public_key().verify_prehashed(&digest, &signature));
        assert_eq!(
            engine.recover_address(&mut meter, &digest, &signature),
            Some(key.eth_address())
        );
        // A wrong digest does not recover the same address.
        let other = keccak256(b"tampered");
        assert_ne!(
            engine.recover_address(&mut meter, &other, &signature),
            Some(key.eth_address())
        );
    }

    #[test]
    fn custom_latencies_apply() {
        let engine = CryptoEngine::with_latencies(CryptoLatencies {
            ecdsa_sign: Duration::from_millis(10),
            ecdsa_verify: Duration::from_millis(10),
            sha256: Duration::from_millis(2),
            keccak256: Duration::from_millis(3),
        });
        assert_eq!(engine.transaction_round_time(), Duration::from_millis(15));
        assert_eq!(engine.latencies().sha256, Duration::from_millis(2));
    }
}
