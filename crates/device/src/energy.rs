//! Energest-style energy accounting.
//!
//! Contiki-NG's Energest module estimates energy by tracking how long the
//! node spends in each power state and multiplying by a per-state current
//! and the supply voltage. The paper's Table IV reports exactly that for one
//! off-chain payment round on the CC2538 at 2.1 V:
//!
//! | state            | current | time    | energy |
//! |------------------|---------|---------|--------|
//! | crypto engine    | 26 mA   | 350 ms  | 19.1 mJ |
//! | TX               | 24 mA   | 32 ms   | 1.6 mJ |
//! | RX               | 20 mA   | 52 ms   | 2.1 mJ |
//! | CPU @ 32 MHz     | 13 mA   | 150 ms  | 4.1 mJ |
//! | CPU @ LPM2       | 1.3 mA  | 982 ms  | 2.7 mJ |
//!
//! [`EnergyMeter`] reimplements that integrator and additionally records a
//! timeline of `(start, duration, state)` entries so the Figure 5 current
//! trace can be regenerated.

use std::time::Duration;

use serde::{Deserialize, Serialize};
use tinyevm_trace::{TraceEvent, TraceHandle};

/// A power state of the device, in the Energest sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerState {
    /// CPU active, executing the virtual machine or protocol code.
    CpuActive,
    /// CPU in low-power mode 2 (the paper configures LPM2 when idle).
    Lpm2,
    /// Radio transmitting.
    Tx,
    /// Radio receiving.
    Rx,
    /// Hardware cryptographic engine busy.
    CryptoEngine,
}

impl PowerState {
    /// All states in the order Table IV lists them.
    pub const ALL: [PowerState; 5] = [
        PowerState::CryptoEngine,
        PowerState::Tx,
        PowerState::Rx,
        PowerState::CpuActive,
        PowerState::Lpm2,
    ];

    /// Current draw in milliamps for the CC2538 (Table IV).
    pub fn current_ma(self) -> f64 {
        match self {
            PowerState::CryptoEngine => 26.0,
            PowerState::Tx => 24.0,
            PowerState::Rx => 20.0,
            PowerState::CpuActive => 13.0,
            PowerState::Lpm2 => 1.3,
        }
    }

    /// Index of the state inside [`PowerState::ALL`] (used for the
    /// per-state residency accumulators).
    fn index(self) -> usize {
        match self {
            PowerState::CryptoEngine => 0,
            PowerState::Tx => 1,
            PowerState::Rx => 2,
            PowerState::CpuActive => 3,
            PowerState::Lpm2 => 4,
        }
    }

    /// Human-readable label matching the paper's table rows.
    pub fn label(self) -> &'static str {
        match self {
            PowerState::CryptoEngine => "Cryptographic Engine",
            PowerState::Tx => "TX",
            PowerState::Rx => "RX",
            PowerState::CpuActive => "CPU @ 32 MHz",
            PowerState::Lpm2 => "CPU @ LPM2",
        }
    }
}

/// One contiguous interval spent in a power state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineEntry {
    /// Offset from the start of the measurement.
    pub start: Duration,
    /// How long the state was held.
    pub duration: Duration,
    /// The state.
    pub state: PowerState,
}

impl TimelineEntry {
    /// Current drawn during this entry, in mA.
    pub fn current_ma(&self) -> f64 {
        self.state.current_ma()
    }

    /// End of the interval.
    pub fn end(&self) -> Duration {
        self.start + self.duration
    }
}

/// Energy figures for one power state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateEnergy {
    /// The state.
    pub state: PowerState,
    /// Accumulated residency.
    pub time: Duration,
    /// Current draw used for the computation, in mA.
    pub current_ma: f64,
    /// Energy in millijoules at the configured supply voltage.
    pub energy_mj: f64,
}

/// The full energy report (Table IV equivalent).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Supply voltage used.
    pub voltage: f64,
    /// Per-state rows, in Table IV order.
    pub states: Vec<StateEnergy>,
}

impl EnergyReport {
    /// Total time across all states.
    pub fn total_time(&self) -> Duration {
        self.states.iter().map(|s| s.time).sum()
    }

    /// Total energy in millijoules.
    pub fn total_energy_mj(&self) -> f64 {
        self.states.iter().map(|s| s.energy_mj).sum()
    }

    /// Energy of one state in millijoules.
    pub fn energy_of(&self, state: PowerState) -> f64 {
        self.states
            .iter()
            .find(|s| s.state == state)
            .map(|s| s.energy_mj)
            .unwrap_or(0.0)
    }

    /// Time spent in one state.
    pub fn time_of(&self, state: PowerState) -> Duration {
        self.states
            .iter()
            .find(|s| s.state == state)
            .map(|s| s.time)
            .unwrap_or(Duration::ZERO)
    }

    /// Fraction of total energy attributable to `state` (0.0 when nothing
    /// has been recorded).
    pub fn share_of(&self, state: PowerState) -> f64 {
        let total = self.total_energy_mj();
        if total == 0.0 {
            0.0
        } else {
            self.energy_of(state) / total
        }
    }

    /// Estimates how many repetitions of the measured activity a battery of
    /// `battery_joules` can sustain (the paper's 10 kJ AA-pair estimate that
    /// yields "roughly 333,000 payments").
    pub fn payments_per_battery(&self, battery_joules: f64) -> u64 {
        let energy_j = self.total_energy_mj() / 1000.0;
        if energy_j <= 0.0 {
            return 0;
        }
        (battery_joules / energy_j) as u64
    }

    /// Estimates battery lifetime given one measured activity every
    /// `interval`, using the paper's methodology: lifetime = (battery /
    /// per-activity energy) × interval. The paper explicitly leaves deep
    /// sleep and battery leakage out of this estimate; use
    /// [`EnergyReport::battery_lifetime_with_idle`] for the variant that
    /// charges LPM2 current between activities.
    pub fn battery_lifetime(&self, battery_joules: f64, interval: Duration) -> Duration {
        let payments = self.payments_per_battery(battery_joules);
        if payments == 0 {
            return Duration::MAX;
        }
        Duration::from_secs_f64(payments as f64 * interval.as_secs_f64())
    }

    /// Battery lifetime when the idle time between activities is charged at
    /// the LPM2 current — the more conservative estimate the paper alludes
    /// to when it notes that deep-sleep consumption "needs to be considered".
    pub fn battery_lifetime_with_idle(&self, battery_joules: f64, interval: Duration) -> Duration {
        let active_energy_j = self.total_energy_mj() / 1000.0;
        let active_time = self.total_time();
        let idle_time = interval.saturating_sub(active_time);
        let idle_energy_j =
            PowerState::Lpm2.current_ma() / 1000.0 * self.voltage * idle_time.as_secs_f64();
        let per_interval = active_energy_j + idle_energy_j;
        if per_interval <= 0.0 {
            return Duration::MAX;
        }
        let intervals = battery_joules / per_interval;
        Duration::from_secs_f64(intervals * interval.as_secs_f64())
    }
}

/// An Energest-style state-residency energy meter with a timeline.
///
/// Residency totals (and therefore every energy figure in
/// [`EnergyMeter::report`]) live in per-state accumulators, independent of
/// the timeline. The timeline itself is a *bounded* Figure 5 trace:
/// adjacent intervals in the same state are merged into one entry, and
/// once [`EnergyMeter::with_timeline_cap`]'s cap is reached the oldest
/// entries are evicted (counted in
/// [`EnergyMeter::timeline_truncated`]). Capping or compaction never
/// changes the energy report.
///
/// # Example
///
/// ```
/// use tinyevm_device::{EnergyMeter, PowerState};
/// use std::time::Duration;
///
/// let mut meter = EnergyMeter::cc2538();
/// meter.record(PowerState::CryptoEngine, Duration::from_millis(350));
/// meter.record(PowerState::CpuActive, Duration::from_millis(150));
/// let report = meter.report();
/// assert!(report.energy_of(PowerState::CryptoEngine) > report.energy_of(PowerState::CpuActive));
/// ```
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    voltage: f64,
    timeline: Vec<TimelineEntry>,
    timeline_cap: usize,
    timeline_truncated: u64,
    totals: [Duration; PowerState::ALL.len()],
    clock: Duration,
    tracer: TraceHandle,
    trace_label: String,
}

/// Default bound on retained timeline entries. A payment round produces a
/// few dozen state transitions, so this keeps hundreds of rounds of
/// Figure 5 context while bounding a soak run's memory.
pub const DEFAULT_TIMELINE_CAP: usize = 8_192;

impl EnergyMeter {
    /// A meter for the CC2538 at the paper's 2.1 V supply.
    pub fn cc2538() -> Self {
        Self::with_voltage(2.1)
    }

    /// A meter with a custom supply voltage.
    pub fn with_voltage(voltage: f64) -> Self {
        EnergyMeter {
            voltage,
            timeline: Vec::new(),
            timeline_cap: DEFAULT_TIMELINE_CAP,
            timeline_truncated: 0,
            totals: [Duration::ZERO; PowerState::ALL.len()],
            clock: Duration::ZERO,
            tracer: TraceHandle::default(),
            trace_label: String::new(),
        }
    }

    /// Sets the maximum number of retained timeline entries (minimum 1).
    pub fn with_timeline_cap(mut self, cap: usize) -> Self {
        self.timeline_cap = cap.max(1);
        self
    }

    /// Attaches a tracer: every recorded interval is published as a
    /// [`TraceEvent::Power`] with `label` as the node name.
    pub fn set_tracer(&mut self, label: &str, tracer: TraceHandle) {
        self.trace_label = label.to_string();
        self.tracer = tracer;
    }

    /// The supply voltage.
    pub fn voltage(&self) -> f64 {
        self.voltage
    }

    /// The simulated wall-clock time elapsed so far.
    pub fn now(&self) -> Duration {
        self.clock
    }

    /// Records `duration` spent in `state`, advancing the simulated clock.
    pub fn record(&mut self, state: PowerState, duration: Duration) {
        if duration.is_zero() {
            return;
        }
        self.tracer.event(|| TraceEvent::Power {
            node: self.trace_label.clone(),
            state: state.label().to_string(),
            start_us: self.clock.as_micros() as u64,
            duration_us: duration.as_micros() as u64,
            current_ma: state.current_ma(),
        });
        self.totals[state.index()] += duration;
        // Contiguous same-state intervals compact into one timeline entry
        // (the Figure 5 trace only changes on state *transitions*).
        match self.timeline.last_mut() {
            Some(last) if last.state == state && last.end() == self.clock => {
                last.duration += duration;
            }
            _ => {
                if self.timeline.len() == self.timeline_cap {
                    self.timeline.remove(0);
                    self.timeline_truncated += 1;
                }
                self.timeline.push(TimelineEntry {
                    start: self.clock,
                    duration,
                    state,
                });
            }
        }
        self.clock += duration;
    }

    /// The recorded timeline (Figure 5 raw data): state-transition
    /// intervals, bounded by the timeline cap.
    pub fn timeline(&self) -> &[TimelineEntry] {
        &self.timeline
    }

    /// Number of timeline entries evicted because the cap was reached.
    pub fn timeline_truncated(&self) -> u64 {
        self.timeline_truncated
    }

    /// Resets the meter and timeline.
    pub fn reset(&mut self) {
        self.timeline.clear();
        self.timeline_truncated = 0;
        self.totals = [Duration::ZERO; PowerState::ALL.len()];
        self.clock = Duration::ZERO;
    }

    /// Total residency of one state (exact even after timeline eviction).
    pub fn time_in(&self, state: PowerState) -> Duration {
        self.totals[state.index()]
    }

    /// Builds the Table IV style report.
    pub fn report(&self) -> EnergyReport {
        let states = PowerState::ALL
            .iter()
            .map(|&state| {
                let time = self.time_in(state);
                let current_ma = state.current_ma();
                // E [mJ] = I [mA] * V [V] * t [s]
                let energy_mj = current_ma * self.voltage * time.as_secs_f64();
                StateEnergy {
                    state,
                    time,
                    current_ma,
                    energy_mj,
                }
            })
            .collect();
        EnergyReport {
            voltage: self.voltage,
            states,
        }
    }

    /// Samples the current draw at a point in time (mA); zero when the
    /// device is between recorded activities (i.e. off in the model).
    pub fn current_at(&self, at: Duration) -> f64 {
        self.timeline
            .iter()
            .find(|e| at >= e.start && at < e.end())
            .map(|e| e.current_ma())
            .unwrap_or(0.0)
    }
}

impl Default for EnergyMeter {
    fn default() -> Self {
        EnergyMeter::cc2538()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tolerance: f64) -> bool {
        (a - b).abs() <= tolerance
    }

    #[test]
    fn currents_match_table_four() {
        assert_eq!(PowerState::CryptoEngine.current_ma(), 26.0);
        assert_eq!(PowerState::Tx.current_ma(), 24.0);
        assert_eq!(PowerState::Rx.current_ma(), 20.0);
        assert_eq!(PowerState::CpuActive.current_ma(), 13.0);
        assert_eq!(PowerState::Lpm2.current_ma(), 1.3);
    }

    #[test]
    fn table_four_energy_reproduction() {
        // Feed the meter the exact residencies of Table IV and check the
        // energy column comes out right.
        let mut meter = EnergyMeter::cc2538();
        meter.record(PowerState::CryptoEngine, Duration::from_millis(350));
        meter.record(PowerState::Tx, Duration::from_millis(32));
        meter.record(PowerState::Rx, Duration::from_millis(52));
        meter.record(PowerState::CpuActive, Duration::from_millis(150));
        meter.record(PowerState::Lpm2, Duration::from_millis(982));
        let report = meter.report();
        assert!(close(report.energy_of(PowerState::CryptoEngine), 19.1, 0.2));
        assert!(close(report.energy_of(PowerState::Tx), 1.6, 0.1));
        assert!(close(report.energy_of(PowerState::Rx), 2.1, 0.1));
        assert!(close(report.energy_of(PowerState::CpuActive), 4.1, 0.1));
        assert!(close(report.energy_of(PowerState::Lpm2), 2.7, 0.1));
        assert!(close(report.total_energy_mj(), 29.6, 0.5));
        assert_eq!(report.total_time(), Duration::from_millis(1566));
    }

    #[test]
    fn crypto_engine_dominates_the_split() {
        let mut meter = EnergyMeter::cc2538();
        meter.record(PowerState::CryptoEngine, Duration::from_millis(350));
        meter.record(PowerState::Tx, Duration::from_millis(32));
        meter.record(PowerState::Rx, Duration::from_millis(52));
        meter.record(PowerState::CpuActive, Duration::from_millis(150));
        meter.record(PowerState::Lpm2, Duration::from_millis(982));
        let report = meter.report();
        // The paper reports ~65% of the energy going to the crypto engine.
        assert!(report.share_of(PowerState::CryptoEngine) > 0.55);
        assert!(report.share_of(PowerState::CryptoEngine) < 0.75);
        assert!(report.share_of(PowerState::Tx) < 0.2);
    }

    #[test]
    fn battery_estimates_match_paper_order_of_magnitude() {
        let mut meter = EnergyMeter::cc2538();
        meter.record(PowerState::CryptoEngine, Duration::from_millis(350));
        meter.record(PowerState::Tx, Duration::from_millis(32));
        meter.record(PowerState::Rx, Duration::from_millis(52));
        meter.record(PowerState::CpuActive, Duration::from_millis(150));
        meter.record(PowerState::Lpm2, Duration::from_millis(982));
        let report = meter.report();
        // ~10 kJ from a pair of AA cells -> roughly 333k payments.
        let payments = report.payments_per_battery(10_000.0);
        assert!(
            payments > 250_000 && payments < 450_000,
            "payments = {payments}"
        );
        // One payment every 10 minutes -> more than six years with the
        // paper's methodology (idle consumption excluded).
        let lifetime = report.battery_lifetime(10_000.0, Duration::from_secs(600));
        let years = lifetime.as_secs_f64() / (365.25 * 24.0 * 3600.0);
        assert!(years > 5.0, "lifetime = {years} years");
        assert!(years < 10.0, "lifetime = {years} years");
        // Charging LPM2 between payments shortens it drastically — the
        // caveat the paper itself raises.
        let conservative = report.battery_lifetime_with_idle(10_000.0, Duration::from_secs(600));
        assert!(conservative < lifetime);
    }

    #[test]
    fn timeline_entries_are_contiguous() {
        let mut meter = EnergyMeter::cc2538();
        meter.record(PowerState::CpuActive, Duration::from_millis(10));
        meter.record(PowerState::Tx, Duration::from_millis(5));
        meter.record(PowerState::Lpm2, Duration::ZERO); // ignored
        meter.record(PowerState::Rx, Duration::from_millis(7));
        let timeline = meter.timeline();
        assert_eq!(timeline.len(), 3);
        assert_eq!(timeline[0].start, Duration::ZERO);
        assert_eq!(timeline[1].start, Duration::from_millis(10));
        assert_eq!(timeline[2].start, Duration::from_millis(15));
        assert_eq!(meter.now(), Duration::from_millis(22));
    }

    #[test]
    fn current_sampling() {
        let mut meter = EnergyMeter::cc2538();
        meter.record(PowerState::CpuActive, Duration::from_millis(10));
        meter.record(PowerState::Tx, Duration::from_millis(10));
        assert_eq!(meter.current_at(Duration::from_millis(5)), 13.0);
        assert_eq!(meter.current_at(Duration::from_millis(15)), 24.0);
        assert_eq!(meter.current_at(Duration::from_millis(50)), 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut meter = EnergyMeter::cc2538();
        meter.record(PowerState::CpuActive, Duration::from_millis(10));
        meter.reset();
        assert!(meter.timeline().is_empty());
        assert_eq!(meter.now(), Duration::ZERO);
        assert_eq!(meter.report().total_energy_mj(), 0.0);
        assert_eq!(meter.report().payments_per_battery(10_000.0), 0);
    }

    #[test]
    fn labels_are_present_for_all_states() {
        for state in PowerState::ALL {
            assert!(!state.label().is_empty());
        }
    }

    #[test]
    fn share_of_empty_report_is_zero() {
        let meter = EnergyMeter::cc2538();
        assert_eq!(meter.report().share_of(PowerState::Tx), 0.0);
    }

    #[test]
    fn adjacent_same_state_entries_compact() {
        let mut meter = EnergyMeter::cc2538();
        meter.record(PowerState::CpuActive, Duration::from_millis(10));
        meter.record(PowerState::CpuActive, Duration::from_millis(5));
        meter.record(PowerState::Tx, Duration::from_millis(2));
        meter.record(PowerState::CpuActive, Duration::from_millis(3));
        // Two CPU intervals merged; the one after TX starts a new entry.
        let timeline = meter.timeline();
        assert_eq!(timeline.len(), 3);
        assert_eq!(timeline[0].duration, Duration::from_millis(15));
        assert_eq!(timeline[0].state, PowerState::CpuActive);
        // Totals are unaffected by compaction.
        assert_eq!(
            meter.time_in(PowerState::CpuActive),
            Duration::from_millis(18)
        );
        assert_eq!(meter.now(), Duration::from_millis(20));
    }

    #[test]
    fn timeline_cap_keeps_the_report_exact() {
        // Regression for the unbounded-timeline memory growth: run far past
        // the cap and check that eviction is counted, the retained tail is
        // bounded, and the energy report still integrates *all* intervals.
        let mut capped = EnergyMeter::cc2538().with_timeline_cap(16);
        let mut unbounded = EnergyMeter::cc2538().with_timeline_cap(usize::MAX);
        for i in 0..1000u32 {
            // Alternate states so compaction cannot absorb the entries.
            let state = if i % 2 == 0 {
                PowerState::CpuActive
            } else {
                PowerState::Rx
            };
            capped.record(state, Duration::from_millis(3));
            unbounded.record(state, Duration::from_millis(3));
        }
        assert_eq!(capped.timeline().len(), 16);
        assert_eq!(capped.timeline_truncated(), 1000 - 16);
        assert_eq!(unbounded.timeline_truncated(), 0);
        // Reports and clocks are identical despite the eviction.
        assert_eq!(capped.report(), unbounded.report());
        assert_eq!(capped.now(), unbounded.now());
        assert_eq!(
            capped.time_in(PowerState::CpuActive),
            Duration::from_millis(1500)
        );
        // The retained tail is the most recent transitions.
        let first_kept = capped.timeline()[0];
        assert_eq!(first_kept.start, Duration::from_millis(3 * (1000 - 16)));
        // Reset clears the eviction counter too.
        capped.reset();
        assert_eq!(capped.timeline_truncated(), 0);
    }

    #[test]
    fn recorded_intervals_publish_power_events() {
        use tinyevm_trace::TraceHandle;
        let tracer = TraceHandle::recording(64);
        let mut meter = EnergyMeter::cc2538();
        meter.set_tracer("sensor", tracer.clone());
        meter.record(PowerState::Tx, Duration::from_millis(4));
        meter.record(PowerState::Tx, Duration::from_millis(4));
        let snapshot = tracer.snapshot().unwrap();
        // One event per record() call, even though the timeline compacted
        // the two intervals into one entry.
        assert_eq!(snapshot.events.len(), 2);
        assert_eq!(meter.timeline().len(), 1);
        match &snapshot.events[1] {
            tinyevm_trace::TraceEvent::Power {
                node,
                state,
                start_us,
                duration_us,
                current_ma,
            } => {
                assert_eq!(node, "sensor");
                assert_eq!(state, "TX");
                assert_eq!(*start_us, 4_000);
                assert_eq!(*duration_us, 4_000);
                assert_eq!(*current_ma, 24.0);
            }
            other => panic!("expected a Power event, got {other:?}"),
        }
    }
}
