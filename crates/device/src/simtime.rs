//! `SimTime` — an `Instant`-like point on the simulated virtual clock.
//!
//! Every [`Device`](crate::Device) carries its own monotonic clock that
//! advances as the device computes, sleeps and keys the radio; the clock is
//! exposed as a [`Duration`] since boot. `SimTime` wraps that reading in a
//! nanosecond-granular, totally ordered point-in-time type so that layers
//! above the device — retry timers in the channel endpoints, the
//! discrete-event fleet scheduler — can talk about *deadlines* ("retransmit
//! at t = 1.2 s") instead of iteration counts, and so that event queues can
//! key on `(time_ns, seq)` with stable tie-breaking.
//!
//! All devices in a simulation boot at `SimTime::ZERO`, so readings from
//! different device clocks are directly comparable: they share one virtual
//! epoch even though each clock advances independently.

use std::fmt;
use std::ops::{Add, Sub};
use std::time::Duration;

/// A point on the virtual clock, in nanoseconds since the simulation epoch.
///
/// Ordered, copyable and cheap: internally a single `u64` nanosecond count,
/// which covers ~584 years of simulated time — far beyond any session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime {
    nanos: u64,
}

impl SimTime {
    /// The simulation epoch: every device clock starts here at boot.
    pub const ZERO: SimTime = SimTime { nanos: 0 };

    /// A point `elapsed` after the epoch — converts a device clock reading
    /// (`device.now()`) into an absolute virtual time.
    pub fn from_duration(elapsed: Duration) -> Self {
        SimTime {
            nanos: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
        }
    }

    /// A point `nanos` nanoseconds after the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime { nanos }
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// The offset from the epoch as a [`Duration`].
    pub const fn as_duration(self) -> Duration {
        Duration::from_nanos(self.nanos)
    }

    /// `self + duration`, saturating at the far end of the clock.
    pub fn saturating_add(self, duration: Duration) -> Self {
        let add = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
        SimTime {
            nanos: self.nanos.saturating_add(add),
        }
    }

    /// Time elapsed from `earlier` to `self`, or zero when `earlier` is in
    /// the future — mirrors `Instant::saturating_duration_since`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.nanos.saturating_sub(earlier.nanos))
    }

    /// The later of two points.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.nanos >= other.nanos {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, duration: Duration) -> SimTime {
        self.saturating_add(duration)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    fn sub(self, earlier: SimTime) -> Duration {
        self.saturating_duration_since(earlier)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.nanos as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic_round_trip() {
        let a = SimTime::from_duration(Duration::from_millis(5));
        let b = a + Duration::from_micros(250);
        assert!(b > a);
        assert_eq!(b - a, Duration::from_micros(250));
        assert_eq!(a - b, Duration::ZERO);
        assert_eq!(b.as_nanos(), 5_250_000);
        assert_eq!(b.as_duration(), Duration::from_nanos(5_250_000));
    }

    #[test]
    fn epoch_is_zero_and_max_picks_the_later_point() {
        assert_eq!(SimTime::ZERO.as_nanos(), 0);
        assert_eq!(SimTime::default(), SimTime::ZERO);
        let later = SimTime::from_nanos(7);
        assert_eq!(SimTime::ZERO.max(later), later);
        assert_eq!(later.max(SimTime::ZERO), later);
    }

    #[test]
    fn saturating_add_never_wraps() {
        let far = SimTime::from_nanos(u64::MAX - 1);
        assert_eq!(
            far.saturating_add(Duration::from_secs(10)).as_nanos(),
            u64::MAX
        );
    }

    #[test]
    fn display_renders_seconds() {
        let t = SimTime::from_duration(Duration::from_millis(1500));
        assert_eq!(format!("{t}"), "1.500000s");
    }
}
