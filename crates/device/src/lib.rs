//! A simulated low-power IoT device in the class the TinyEVM paper targets.
//!
//! The paper evaluates TinyEVM on an OpenMote B: a TI-CC2538 SoC with a
//! 32-bit ARM Cortex-M3 at 32 MHz, 32 KB of RAM, 512 KB of ROM, a hardware
//! cryptographic engine clocked at 250 MHz and an 802.15.4 radio, running
//! Contiki-NG with the Energest on-line energy estimator. None of that
//! hardware is available here, so this crate rebuilds the *measurable
//! surface* of that platform as a deterministic model:
//!
//! * [`Mcu`] — converts the interpreter's cycle counts into execution time
//!   at a configurable clock (Figure 4's deployment times).
//! * [`CryptoEngine`] — the Table V latencies (ECDSA 350 ms, SHA-256 1 ms in
//!   hardware; Keccak-256 5 ms in software) wrapped around the real
//!   `tinyevm-crypto` implementations, so results are functionally correct
//!   *and* carry device-realistic cost.
//! * [`EnergyMeter`] — an Energest-style state-residency integrator with the
//!   Table IV current draws, producing the per-state energy split and the
//!   Figure 5 current timeline.
//! * [`DeviceSensors`] — the sensor / actuator registry behind the EVM's IoT
//!   opcode.
//! * [`Footprint`] — the Table III RAM / ROM budget.
//! * [`Device`] — the composition: deploy and execute contracts, sign and
//!   verify payments, exchange radio frames, and account for every
//!   microjoule while doing so.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crypto_engine;
pub mod device;
pub mod energy;
pub mod footprint;
pub mod mcu;
pub mod sensors;
pub mod simtime;

pub use crypto_engine::CryptoEngine;
pub use device::{Device, DeviceActivity, DeviceConfig, RadioDirection};
pub use energy::{EnergyMeter, EnergyReport, PowerState, TimelineEntry};
pub use footprint::{Footprint, FootprintComponent};
pub use mcu::Mcu;
pub use sensors::{DeviceSensors, Sensor, SensorReading};
pub use simtime::SimTime;
