//! The microcontroller timing model.

use std::time::Duration;

use tinyevm_evm::ExecMetrics;

/// A simple cycle-accurate-enough model of the application MCU.
///
/// The paper's CC2538 runs its Cortex-M3 at 32 MHz, and the key cost
/// observation is that every 256-bit EVM opcode expands to "hundreds of MCU
/// cycles" of emulation. The interpreter already counts those cycles per
/// opcode ([`ExecMetrics::mcu_cycles`]); this type converts them into wall
/// time on the device.
///
/// # Example
///
/// ```
/// use tinyevm_device::Mcu;
/// use std::time::Duration;
///
/// let mcu = Mcu::cc2538();
/// assert_eq!(mcu.cycles_to_duration(32_000), Duration::from_millis(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mcu {
    clock_hz: u64,
    /// Fixed per-deployment overhead in cycles: arena setup, bytecode
    /// staging, constructor calling convention. Derived from the paper's
    /// observation that even trivial contracts take a few milliseconds.
    deployment_overhead_cycles: u64,
}

impl Mcu {
    /// The CC2538 profile: 32 MHz system clock.
    pub fn cc2538() -> Self {
        Mcu {
            clock_hz: 32_000_000,
            deployment_overhead_cycles: 160_000, // 5 ms at 32 MHz
        }
    }

    /// A custom clock frequency (used by the frequency-scaling ablation).
    pub fn with_clock(clock_hz: u64) -> Self {
        Mcu {
            clock_hz,
            deployment_overhead_cycles: 160_000,
        }
    }

    /// The modelled clock frequency in Hz.
    pub fn clock_hz(&self) -> u64 {
        self.clock_hz
    }

    /// Converts a cycle count into elapsed time at the MCU clock.
    pub fn cycles_to_duration(&self, cycles: u64) -> Duration {
        let nanos = (cycles as u128 * 1_000_000_000u128) / self.clock_hz as u128;
        Duration::from_nanos(nanos as u64)
    }

    /// Execution time of a measured frame (pure interpretation, no radio or
    /// crypto engine).
    pub fn execution_time(&self, metrics: &ExecMetrics) -> Duration {
        self.cycles_to_duration(metrics.mcu_cycles)
    }

    /// Deployment time of a measured constructor run: the fixed staging
    /// overhead plus the interpretation of the init code. This is the
    /// quantity plotted against bytecode size in the paper's Figure 4.
    pub fn deployment_time(&self, metrics: &ExecMetrics) -> Duration {
        self.cycles_to_duration(self.deployment_overhead_cycles + metrics.mcu_cycles)
    }

    /// Energy in millijoules the CPU draws while interpreting `cycles`
    /// MCU cycles at the given supply voltage (the active-CPU current of
    /// the energy model, Table IV). This is how a static cycle bound from
    /// the analyzer becomes a static *energy* bound for admission gates.
    pub fn cpu_energy_mj(&self, cycles: u64, voltage: f64) -> f64 {
        let seconds = cycles as f64 / self.clock_hz as f64;
        crate::energy::PowerState::CpuActive.current_ma() * voltage * seconds
    }
}

impl Default for Mcu {
    fn default() -> Self {
        Mcu::cc2538()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyevm_evm::Opcode;

    #[test]
    fn cc2538_runs_at_32_mhz() {
        assert_eq!(Mcu::cc2538().clock_hz(), 32_000_000);
        assert_eq!(Mcu::default(), Mcu::cc2538());
    }

    #[test]
    fn cycle_conversion_is_linear() {
        let mcu = Mcu::cc2538();
        assert_eq!(mcu.cycles_to_duration(0), Duration::ZERO);
        assert_eq!(mcu.cycles_to_duration(32_000_000), Duration::from_secs(1));
        assert_eq!(
            mcu.cycles_to_duration(16_000_000),
            Duration::from_millis(500)
        );
    }

    #[test]
    fn slower_clock_takes_longer() {
        let fast = Mcu::cc2538();
        let slow = Mcu::with_clock(16_000_000);
        assert_eq!(
            slow.cycles_to_duration(1_000_000),
            fast.cycles_to_duration(2_000_000)
        );
    }

    #[test]
    fn execution_time_follows_metrics() {
        let mcu = Mcu::cc2538();
        let mut metrics = ExecMetrics::new();
        assert_eq!(mcu.execution_time(&metrics), Duration::ZERO);
        for _ in 0..1000 {
            metrics.record(Opcode::Mul);
        }
        let time = mcu.execution_time(&metrics);
        assert!(time > Duration::ZERO);
        // 1000 MULs at 420 cycles = 420k cycles ≈ 13.1 ms.
        assert!(time > Duration::from_millis(10) && time < Duration::from_millis(20));
    }

    #[test]
    fn cpu_energy_follows_the_active_current_model() {
        let mcu = Mcu::cc2538();
        // One second of CPU at 13 mA and 2.1 V is 27.3 mJ.
        let energy = mcu.cpu_energy_mj(32_000_000, 2.1);
        assert!((energy - 27.3).abs() < 1e-9);
        assert_eq!(mcu.cpu_energy_mj(0, 2.1), 0.0);
        // Halving the clock doubles the time, and so the energy.
        let slow = Mcu::with_clock(16_000_000);
        assert!((slow.cpu_energy_mj(32_000_000, 2.1) - 2.0 * energy).abs() < 1e-9);
    }

    #[test]
    fn deployment_time_includes_fixed_overhead() {
        let mcu = Mcu::cc2538();
        let metrics = ExecMetrics::new();
        let time = mcu.deployment_time(&metrics);
        assert_eq!(time, Duration::from_millis(5));
        let mut busy = ExecMetrics::new();
        for _ in 0..10_000 {
            busy.record(Opcode::Exp);
        }
        assert!(mcu.deployment_time(&busy) > time);
    }
}
