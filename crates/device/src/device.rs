//! The composed IoT device: MCU, crypto engine, radio accounting, sensors
//! and the TinyEVM virtual machine, sharing one energy meter and one
//! simulated clock.

use std::time::Duration;

use tinyevm_crypto::secp256k1::{PrivateKey, PublicKey, Signature};
use tinyevm_evm::{
    deploy::{deploy_with, DeployError, DeployResult},
    CallContext, ContractStore, Evm, EvmConfig, ExecError, ExecResult, Host, SideChainStorage,
};
use tinyevm_types::{Address, U256};

use crate::crypto_engine::CryptoEngine;
use crate::energy::{EnergyMeter, EnergyReport, PowerState, TimelineEntry};
use crate::footprint::Footprint;
use crate::mcu::Mcu;
use crate::sensors::DeviceSensors;

/// Which way a radio transfer went, from this device's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadioDirection {
    /// This device transmitted.
    Transmit,
    /// This device received.
    Receive,
}

/// A log entry describing one activity the device performed, with its
/// simulated start time and duration — the narrative behind the Figure 5
/// timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceActivity {
    /// Human-readable description ("deploy contract", "sign payment", ...).
    pub label: String,
    /// Start offset on the device clock.
    pub start: Duration,
    /// How long it took.
    pub duration: Duration,
}

/// Static configuration of a simulated device.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Friendly name used in logs and reports.
    pub name: String,
    /// MCU timing model.
    pub mcu: Mcu,
    /// Crypto engine latency model.
    pub crypto: CryptoEngine,
    /// Virtual machine resource profile.
    pub evm: EvmConfig,
    /// Radio payload data rate in bits per second (802.15.4: 250 kbit/s).
    pub radio_bitrate: u64,
    /// Fixed per-frame radio overhead (preamble, TSCH slot alignment).
    pub radio_frame_overhead: Duration,
}

impl DeviceConfig {
    /// The OpenMote-B / CC2538 profile used throughout the paper.
    pub fn openmote_b(name: &str) -> Self {
        DeviceConfig {
            name: name.to_string(),
            mcu: Mcu::cc2538(),
            crypto: CryptoEngine::cc2538(),
            evm: EvmConfig::cc2538(),
            radio_bitrate: 250_000,
            radio_frame_overhead: Duration::from_millis(2),
        }
    }
}

/// A simulated low-power IoT node.
///
/// # Example
///
/// ```
/// use tinyevm_device::Device;
/// use tinyevm_evm::asm;
///
/// let mut device = Device::openmote_b("parking-sensor");
/// let runtime = asm::assemble("PUSH1 0x2a PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN").unwrap();
/// let init = asm::wrap_as_init_code(&runtime);
/// let (result, time) = device.deploy_contract(&init, &[]).unwrap();
/// assert_eq!(result.runtime_code, runtime);
/// assert!(time.as_millis() >= 5);
/// ```
#[derive(Debug)]
pub struct Device {
    config: DeviceConfig,
    key: PrivateKey,
    sensors: DeviceSensors,
    meter: EnergyMeter,
    world: ContractStore,
    activities: Vec<DeviceActivity>,
    tracer: tinyevm_trace::TraceHandle,
}

impl Device {
    /// Creates an OpenMote-B class device with a key derived from its name
    /// and the smart-parking sensor set.
    pub fn openmote_b(name: &str) -> Self {
        Self::new(
            DeviceConfig::openmote_b(name),
            PrivateKey::from_seed(name.as_bytes()),
            DeviceSensors::smart_parking_lot(),
        )
    }

    /// Creates a device from explicit parts.
    pub fn new(config: DeviceConfig, key: PrivateKey, sensors: DeviceSensors) -> Self {
        let world = ContractStore::new(config.evm.clone());
        Device {
            config,
            key,
            sensors,
            meter: EnergyMeter::cc2538(),
            world,
            activities: Vec::new(),
            tracer: tinyevm_trace::TraceHandle::default(),
        }
    }

    /// Attaches a tracer to the device: the energy meter publishes
    /// power-state transition events ([`tinyevm_trace::TraceEvent::Power`])
    /// under the device's name, and the local contract world publishes
    /// per-call events and analysis-cache counters. The default handle is a
    /// no-op.
    pub fn with_tracer(mut self, tracer: tinyevm_trace::TraceHandle) -> Self {
        self.set_tracer(tracer);
        self
    }

    /// In-place variant of [`Device::with_tracer`].
    pub fn set_tracer(&mut self, tracer: tinyevm_trace::TraceHandle) {
        let name = self.config.name.clone();
        self.meter.set_tracer(&name, tracer.clone());
        self.world.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// The device's name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// The device's signing key.
    pub fn private_key(&self) -> &PrivateKey {
        &self.key
    }

    /// The device's public key.
    pub fn public_key(&self) -> PublicKey {
        self.key.public_key()
    }

    /// The device's Ethereum-style address (its payment identity).
    pub fn address(&self) -> Address {
        self.key.eth_address()
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The device's local contract world (its side-chain registry).
    pub fn world_mut(&mut self) -> &mut ContractStore {
        &mut self.world
    }

    /// Immutable view of the local contract world.
    pub fn world(&self) -> &ContractStore {
        &self.world
    }

    /// The sensor registry.
    pub fn sensors_mut(&mut self) -> &mut DeviceSensors {
        &mut self.sensors
    }

    /// The device's simulated clock.
    pub fn now(&self) -> Duration {
        self.meter.now()
    }

    /// The device's simulated clock as an absolute [`SimTime`] point.
    ///
    /// Every device boots at [`SimTime::ZERO`], so readings from different
    /// device clocks share one virtual epoch and compare directly.
    pub fn sim_now(&self) -> crate::SimTime {
        crate::SimTime::from_duration(self.meter.now())
    }

    /// Activities performed so far.
    pub fn activities(&self) -> &[DeviceActivity] {
        &self.activities
    }

    /// The raw power-state timeline (Figure 5 data).
    pub fn timeline(&self) -> &[TimelineEntry] {
        self.meter.timeline()
    }

    /// The Energest-style energy report (Table IV data).
    pub fn energy_report(&self) -> EnergyReport {
        self.meter.report()
    }

    /// The static memory footprint with a template of `template_bytes`
    /// deployed (Table III data).
    pub fn footprint(&self, template_bytes: usize) -> Footprint {
        Footprint::tinyevm_on_cc2538(template_bytes)
    }

    /// Resets the energy meter, clock and activity log (the world and
    /// sensors keep their state).
    pub fn reset_measurements(&mut self) {
        self.meter.reset();
        self.activities.clear();
    }

    fn log_activity(&mut self, label: &str, start: Duration) {
        let duration = self.meter.now().saturating_sub(start);
        self.activities.push(DeviceActivity {
            label: label.to_string(),
            start,
            duration,
        });
    }

    // --- contract execution -------------------------------------------------

    /// Deploys a contract on this device: runs the constructor, charges CPU
    /// time and returns both the deployment result and the modelled
    /// deployment time (the Figure 4 quantity).
    ///
    /// # Errors
    ///
    /// Returns the underlying [`DeployError`] when the contract cannot be
    /// deployed within the device's resource profile.
    pub fn deploy_contract(
        &mut self,
        init_code: &[u8],
        constructor_args: &[u8],
    ) -> Result<(DeployResult, Duration), DeployError> {
        let start = self.meter.now();
        let config = self.config.evm.clone();
        let result = deploy_with(
            &config,
            init_code,
            constructor_args,
            &mut self.world,
            &mut self.sensors,
        )?;
        let mut time = self.config.mcu.deployment_time(&result.metrics);
        // Software Keccak invoked from inside the constructor is charged at
        // the Table V latency rather than the generic opcode cycle cost.
        time += self.config.crypto.latencies().keccak256 * result.metrics.keccak_invocations as u32;
        self.meter.record(PowerState::CpuActive, time);
        self.log_activity("deploy contract", start);
        Ok((result, time))
    }

    /// Executes standalone bytecode on this device (fresh storage), charging
    /// CPU time; returns the execution result and modelled time.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] when the execution traps.
    pub fn execute_code(
        &mut self,
        code: &[u8],
        call_data: &[u8],
    ) -> Result<(ExecResult, Duration), ExecError> {
        let start = self.meter.now();
        let mut evm = Evm::new(self.config.evm.clone()).with_tracer(self.tracer.clone());
        let mut storage = SideChainStorage::new(self.config.evm.max_storage_bytes);
        let context = CallContext {
            address: Address::from_low_u64(0xC0DE),
            caller: self.address(),
            origin: self.address(),
            call_value: U256::ZERO,
            call_data: call_data.to_vec(),
        };
        let depth = self.config.evm.max_call_depth;
        let result = evm.execute_in_frame(
            code,
            context,
            &mut storage,
            &mut self.world,
            &mut self.sensors,
            false,
            depth,
        )?;
        let time = self.charge_execution(&result.metrics);
        self.log_activity("execute bytecode", start);
        Ok((result, time))
    }

    /// Deploys a contract *into the device's local contract world* (its
    /// side-chain registry): the constructor runs with the world as host and
    /// the device's sensors as IoT environment, so both the runtime code and
    /// the storage the constructor wrote persist at the returned address.
    ///
    /// This is the operation the off-chain protocol uses when the two nodes
    /// "execute the bytecode of the template to generate an off-chain
    /// payment channel" (paper Section IV-D). Returns the new contract's
    /// address and the modelled deployment time.
    ///
    /// # Errors
    ///
    /// Returns a [`DeployError`] when the constructor fails or the runtime
    /// code exceeds the device's code limit.
    pub fn create_local_contract(
        &mut self,
        init_code: &[u8],
    ) -> Result<(Address, Duration), DeployError> {
        let start = self.meter.now();
        if init_code.len() > self.config.evm.max_init_code_size {
            return Err(DeployError::InitCodeTooLarge {
                size: init_code.len(),
                limit: self.config.evm.max_init_code_size,
            });
        }
        let creator = self.address();
        let depth = self.config.evm.max_call_depth;
        let outcome = self
            .world
            .create(creator, U256::ZERO, init_code, depth, &mut self.sensors);
        let address = match outcome.created.filter(|_| outcome.success) {
            Some(address) => address,
            None => return Err(DeployError::NoRuntimeCode),
        };
        let mut time = self.config.mcu.deployment_time(&outcome.metrics);
        time +=
            self.config.crypto.latencies().keccak256 * outcome.metrics.keccak_invocations as u32;
        self.meter.record(PowerState::CpuActive, time);
        self.log_activity("create local contract", start);
        Ok((address, time))
    }

    /// Calls a contract previously installed in the device's local world.
    ///
    /// Returns the call output, a success flag and the modelled time.
    pub fn call_local_contract(
        &mut self,
        target: Address,
        value: U256,
        input: &[u8],
    ) -> (Vec<u8>, bool, Duration) {
        let start = self.meter.now();
        let caller = self.address();
        let outcome = self
            .world
            .execute_contract(caller, target, value, input, &mut self.sensors);
        let time = self.charge_execution(&outcome.metrics);
        self.log_activity("call local contract", start);
        (outcome.output, outcome.success, time)
    }

    fn charge_execution(&mut self, metrics: &tinyevm_evm::ExecMetrics) -> Duration {
        let mut time = self.config.mcu.execution_time(metrics);
        time += self.config.crypto.latencies().keccak256 * metrics.keccak_invocations as u32;
        self.meter.record(PowerState::CpuActive, time);
        time
    }

    // --- cryptography -------------------------------------------------------

    /// Hashes a payload with Keccak-256 (software) and signs it with the
    /// crypto engine. Returns the signature and the modelled time
    /// (Table V: about 355 ms).
    pub fn sign_payload(&mut self, payload: &[u8]) -> (Signature, Duration) {
        let start = self.meter.now();
        let digest = self.config.crypto.keccak256(&mut self.meter, payload);
        let signature = self.config.crypto.sign(&mut self.meter, &self.key, &digest);
        let elapsed = self.meter.now() - start;
        self.log_activity("sign payload", start);
        (signature, elapsed)
    }

    /// Verifies a signature over a payload, charging crypto-engine time;
    /// returns the signer address when valid.
    pub fn verify_payload(&mut self, payload: &[u8], signature: &Signature) -> Option<Address> {
        let start = self.meter.now();
        let digest = self.config.crypto.keccak256(&mut self.meter, payload);
        let recovered = self
            .config
            .crypto
            .recover_address(&mut self.meter, &digest, signature);
        self.log_activity("verify payload", start);
        recovered
    }

    /// Verifies many `(payload, signature, claimed signer)` triples in one
    /// host-side batched multi-scalar pass
    /// ([`tinyevm_crypto::secp256k1::verify_batch`]), while the device
    /// model still charges the per-signature Keccak and hardware-verify
    /// latencies — the CC2538 engine checks signatures serially; batching
    /// is a simulation-host optimization, not a device capability.
    ///
    /// Returns `true` when **every** signature is valid for its claimed
    /// public key. Callers that need the culprit fall back to
    /// per-signature checks.
    pub fn verify_payload_batch(&mut self, items: &[(&[u8], Signature, PublicKey)]) -> bool {
        let start = self.meter.now();
        let batch: Vec<tinyevm_crypto::secp256k1::BatchItem> = items
            .iter()
            .map(|(payload, signature, public_key)| {
                let digest = self.config.crypto.keccak256(&mut self.meter, payload);
                self.meter.record(
                    PowerState::CryptoEngine,
                    self.config.crypto.latencies().ecdsa_verify,
                );
                tinyevm_crypto::secp256k1::BatchItem {
                    digest,
                    signature: *signature,
                    public_key: *public_key,
                }
            })
            .collect();
        let valid = tinyevm_crypto::secp256k1::verify_batch(&batch);
        self.log_activity("batch verify payloads", start);
        valid
    }

    // --- radio ---------------------------------------------------------------

    /// Time on air for a payload of `bytes` at the configured bit rate,
    /// including the fixed per-frame overhead.
    pub fn airtime(&self, bytes: usize) -> Duration {
        let bits = bytes as u64 * 8;
        let on_air = Duration::from_secs_f64(bits as f64 / self.config.radio_bitrate as f64);
        on_air + self.config.radio_frame_overhead
    }

    /// Accounts for a radio transfer of `bytes` in the given direction and
    /// returns the modelled time. The actual byte movement is done by
    /// `tinyevm-net`; this only charges time and energy.
    pub fn account_radio(&mut self, direction: RadioDirection, bytes: usize) -> Duration {
        let start = self.meter.now();
        let time = self.airtime(bytes);
        let state = match direction {
            RadioDirection::Transmit => PowerState::Tx,
            RadioDirection::Receive => PowerState::Rx,
        };
        self.meter.record(state, time);
        let label = match direction {
            RadioDirection::Transmit => "radio transmit",
            RadioDirection::Receive => "radio receive",
        };
        self.log_activity(label, start);
        time
    }

    /// Charges CPU time for encoding or decoding `bytes` of wire-format
    /// data (RLP serialization is byte-sequential work on the Cortex-M3;
    /// the model uses 2 µs per byte, ~500 KB/s, far below the crypto and
    /// radio costs but no longer free). Returns the modelled time.
    pub fn account_codec(&mut self, bytes: usize) -> Duration {
        let start = self.meter.now();
        let time = Duration::from_micros(2).saturating_mul(bytes as u32);
        self.meter.record(PowerState::CpuActive, time);
        self.log_activity("wire codec", start);
        time
    }

    /// Puts the device into LPM2 for `duration` (idle between protocol
    /// steps).
    pub fn sleep(&mut self, duration: Duration) {
        let start = self.meter.now();
        self.meter.record(PowerState::Lpm2, duration);
        self.log_activity("sleep (LPM2)", start);
    }

    /// Reads a sensor directly (host code path, not through the EVM),
    /// charging a token amount of CPU time.
    pub fn read_sensor(&mut self, id: u64, parameter: u64) -> Option<U256> {
        let start = self.meter.now();
        let reading = self.sensors.read_direct(id, parameter)?;
        self.meter
            .record(PowerState::CpuActive, Duration::from_micros(500));
        self.log_activity("read sensor", start);
        Some(reading.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensors::peripheral_id;
    use tinyevm_evm::asm;

    #[test]
    fn identity_is_deterministic_per_name() {
        let a1 = Device::openmote_b("sensor-A");
        let a2 = Device::openmote_b("sensor-A");
        let b = Device::openmote_b("sensor-B");
        assert_eq!(a1.address(), a2.address());
        assert_ne!(a1.address(), b.address());
        assert_eq!(a1.name(), "sensor-A");
    }

    #[test]
    fn deployment_charges_cpu_time() {
        let mut device = Device::openmote_b("deployer");
        let runtime =
            asm::assemble("PUSH1 0x2a PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN").unwrap();
        let init = asm::wrap_as_init_code(&runtime);
        let (result, time) = device.deploy_contract(&init, &[]).unwrap();
        assert_eq!(result.runtime_code, runtime);
        assert!(time >= Duration::from_millis(5));
        assert!(time < Duration::from_secs(1));
        assert_eq!(device.energy_report().time_of(PowerState::CpuActive), time);
        assert_eq!(device.activities().len(), 1);
        assert_eq!(device.activities()[0].label, "deploy contract");
    }

    #[test]
    fn oversized_deployment_fails_like_the_paper_says() {
        let mut device = Device::openmote_b("small");
        let huge = vec![0u8; 30_000];
        assert!(matches!(
            device.deploy_contract(&huge, &[]),
            Err(DeployError::InitCodeTooLarge { .. })
        ));
        // A runtime bigger than 8 KB is rejected even though the init code
        // could be staged: copying it through the 8 KB RAM already traps,
        // which is exactly the resource-limit failure class the paper
        // attributes the undeployable 7% to.
        let big_runtime = asm::wrap_as_init_code(&vec![0u8; 9_000]);
        let error = device.deploy_contract(&big_runtime, &[]).unwrap_err();
        assert!(error.is_resource_limit(), "unexpected error: {error:?}");
    }

    #[test]
    fn signing_takes_about_355_ms() {
        let mut device = Device::openmote_b("signer");
        let (signature, time) = device.sign_payload(b"off-chain payment #1");
        assert_eq!(time, Duration::from_millis(355));
        // Signature is genuine.
        assert!(device.public_key().verify_prehashed(
            &tinyevm_crypto::keccak256(b"off-chain payment #1"),
            &signature
        ));
        let report = device.energy_report();
        assert_eq!(
            report.time_of(PowerState::CryptoEngine),
            Duration::from_millis(350)
        );
        assert_eq!(
            report.time_of(PowerState::CpuActive),
            Duration::from_millis(5)
        );
    }

    #[test]
    fn verify_payload_recovers_the_peer() {
        let mut sender = Device::openmote_b("car");
        let mut receiver = Device::openmote_b("parking");
        let payload = b"5 milli-eth for one hour";
        let (signature, _) = sender.sign_payload(payload);
        assert_eq!(
            receiver.verify_payload(payload, &signature),
            Some(sender.address())
        );
        assert_ne!(
            receiver.verify_payload(b"tampered payload", &signature),
            Some(sender.address())
        );
    }

    #[test]
    fn radio_accounting_matches_bitrate() {
        let mut device = Device::openmote_b("radio");
        // 125 bytes at 250 kbit/s = 4 ms on air + 2 ms overhead.
        let time = device.account_radio(RadioDirection::Transmit, 125);
        assert_eq!(time, Duration::from_millis(6));
        let time = device.account_radio(RadioDirection::Receive, 125);
        assert_eq!(time, Duration::from_millis(6));
        let report = device.energy_report();
        assert_eq!(report.time_of(PowerState::Tx), Duration::from_millis(6));
        assert_eq!(report.time_of(PowerState::Rx), Duration::from_millis(6));
    }

    #[test]
    fn sleep_accumulates_lpm2_time() {
        let mut device = Device::openmote_b("sleepy");
        device.sleep(Duration::from_millis(982));
        assert_eq!(
            device.energy_report().time_of(PowerState::Lpm2),
            Duration::from_millis(982)
        );
        assert_eq!(device.now(), Duration::from_millis(982));
    }

    #[test]
    fn sensor_reads_work_outside_the_evm() {
        let mut device = Device::openmote_b("sensing");
        let value = device.read_sensor(peripheral_id::TEMPERATURE, 0);
        assert_eq!(value, Some(U256::from(2150u64)));
        assert_eq!(device.read_sensor(99, 0), None);
    }

    #[test]
    fn executing_sensor_contract_through_the_evm() {
        let mut device = Device::openmote_b("contract-sensing");
        // Read temperature (sensor 0) via the IoT opcode and return it.
        let code = asm::assemble(
            "PUSH1 0x00 PUSH1 0x00 IOT PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN",
        )
        .unwrap();
        let (result, _) = device.execute_code(&code, &[]).unwrap();
        assert_eq!(
            U256::from_be_slice(&result.output).unwrap(),
            U256::from(2150u64)
        );
        assert_eq!(result.metrics.iot_invocations, 1);
    }

    #[test]
    fn local_contract_calls_route_through_the_world() {
        let mut device = Device::openmote_b("world");
        let runtime =
            asm::assemble("PUSH1 0x07 PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN").unwrap();
        let target = Address::from_low_u64(0xAA);
        device.world_mut().install_code(target, runtime);
        let (output, success, _) = device.call_local_contract(target, U256::ZERO, &[]);
        assert!(success);
        assert_eq!(U256::from_be_slice(&output).unwrap(), U256::from(7u64));
    }

    #[test]
    fn reset_measurements_clears_meter_but_keeps_world() {
        let mut device = Device::openmote_b("reset");
        let target = Address::from_low_u64(0xAA);
        device.world_mut().install_code(target, vec![0x00]);
        device.sleep(Duration::from_millis(10));
        device.reset_measurements();
        assert_eq!(device.now(), Duration::ZERO);
        assert!(device.activities().is_empty());
        assert!(!device.world().code_of(&target).is_empty());
    }

    #[test]
    fn footprint_accessor_matches_table_three() {
        let device = Device::openmote_b("footprint");
        let footprint = device.footprint(2_035);
        assert_eq!(footprint.ram_used(), 25_715);
    }

    #[test]
    fn airtime_scales_with_payload() {
        let device = Device::openmote_b("airtime");
        assert!(device.airtime(1000) > device.airtime(100));
        assert_eq!(device.airtime(0), Duration::from_millis(2));
    }
}
