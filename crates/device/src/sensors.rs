//! Sensors and actuators exposed to smart contracts through the IoT opcode.
//!
//! The paper's motivating scenario has the parking sensor and the car
//! exchanging locally sensed context — temperature, occupancy, location —
//! and feeding it into the off-chain contract. [`DeviceSensors`] is the
//! registry the device hands to the EVM as its
//! [`IotEnvironment`](tinyevm_evm::IotEnvironment); individual [`Sensor`]
//! implementations produce deterministic readings so experiments are
//! reproducible.

use std::collections::BTreeMap;

use tinyevm_evm::{IotEnvironment, IotRequest};
use tinyevm_types::U256;

/// Well-known peripheral identifiers used by the examples and experiments.
pub mod peripheral_id {
    /// On-board temperature sensor (0.01 °C units).
    pub const TEMPERATURE: u64 = 0;
    /// Parking-spot occupancy sensor (0 = free, 1 = occupied).
    pub const OCCUPANCY: u64 = 1;
    /// Battery voltage sensor (millivolts).
    pub const BATTERY: u64 = 2;
    /// Barrier / indicator-LED actuator.
    pub const BARRIER: u64 = 16;
}

/// One reading returned by a sensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SensorReading {
    /// The raw value as pushed onto the EVM stack.
    pub value: U256,
}

/// A device peripheral that can be read (sensor) and optionally driven
/// (actuator).
pub trait Sensor: std::fmt::Debug {
    /// Reads the current value; `parameter` is peripheral-specific.
    fn read(&mut self, parameter: u64) -> SensorReading;

    /// Applies an actuation value; returns `false` if this peripheral cannot
    /// actuate.
    fn actuate(&mut self, _value: u64) -> bool {
        false
    }
}

/// A sensor that returns a fixed value — the simplest reproducible sensor.
#[derive(Debug, Clone)]
pub struct ConstantSensor {
    value: U256,
}

impl ConstantSensor {
    /// Creates a sensor that always reads `value`.
    pub fn new(value: U256) -> Self {
        ConstantSensor { value }
    }
}

impl Sensor for ConstantSensor {
    fn read(&mut self, _parameter: u64) -> SensorReading {
        SensorReading { value: self.value }
    }
}

/// A sensor that walks through a scripted sequence of readings and then
/// repeats the last one — useful for scenarios where conditions change over
/// the course of an experiment (e.g. a parking spot becoming occupied).
#[derive(Debug, Clone)]
pub struct SequenceSensor {
    values: Vec<U256>,
    index: usize,
}

impl SequenceSensor {
    /// Creates a sensor that yields `values` in order.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty — a sensor must always produce a reading.
    pub fn new(values: Vec<U256>) -> Self {
        assert!(
            !values.is_empty(),
            "a SequenceSensor needs at least one value"
        );
        SequenceSensor { values, index: 0 }
    }
}

impl Sensor for SequenceSensor {
    fn read(&mut self, _parameter: u64) -> SensorReading {
        let value = self.values[self.index.min(self.values.len() - 1)];
        if self.index + 1 < self.values.len() {
            self.index += 1;
        }
        SensorReading { value }
    }
}

/// An actuator that remembers the values applied to it.
#[derive(Debug, Clone, Default)]
pub struct RecordingActuator {
    applied: Vec<u64>,
}

impl RecordingActuator {
    /// Creates an idle actuator.
    pub fn new() -> Self {
        Self::default()
    }

    /// The values applied so far, oldest first.
    pub fn applied(&self) -> &[u64] {
        &self.applied
    }
}

impl Sensor for RecordingActuator {
    fn read(&mut self, _parameter: u64) -> SensorReading {
        SensorReading {
            value: U256::from(self.applied.last().copied().unwrap_or(0)),
        }
    }

    fn actuate(&mut self, value: u64) -> bool {
        self.applied.push(value);
        true
    }
}

/// The device's peripheral registry; implements the EVM's IoT environment.
///
/// # Example
///
/// ```
/// use tinyevm_device::{DeviceSensors, sensors::peripheral_id};
/// use tinyevm_evm::{IotEnvironment, IotRequest};
/// use tinyevm_types::U256;
///
/// let mut sensors = DeviceSensors::smart_parking_lot();
/// let reading = sensors.handle(IotRequest::ReadSensor {
///     id: peripheral_id::TEMPERATURE,
///     parameter: 0,
/// });
/// assert!(reading.is_some());
/// ```
#[derive(Debug, Default)]
pub struct DeviceSensors {
    peripherals: BTreeMap<u64, Box<dyn Sensor + Send>>,
    reads: u64,
    actuations: u64,
}

impl DeviceSensors {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The peripheral set used by the smart-parking examples: a temperature
    /// sensor (21.5 °C), an occupancy sensor that flips to occupied on the
    /// second read, a battery monitor and a barrier actuator.
    pub fn smart_parking_lot() -> Self {
        let mut sensors = Self::new();
        sensors.register(
            peripheral_id::TEMPERATURE,
            Box::new(ConstantSensor::new(U256::from(2150u64))),
        );
        sensors.register(
            peripheral_id::OCCUPANCY,
            Box::new(SequenceSensor::new(vec![U256::ZERO, U256::ONE, U256::ONE])),
        );
        sensors.register(
            peripheral_id::BATTERY,
            Box::new(ConstantSensor::new(U256::from(3000u64))),
        );
        sensors.register(peripheral_id::BARRIER, Box::new(RecordingActuator::new()));
        sensors
    }

    /// Registers (or replaces) a peripheral.
    pub fn register(&mut self, id: u64, sensor: Box<dyn Sensor + Send>) {
        self.peripherals.insert(id, sensor);
    }

    /// Number of registered peripherals.
    pub fn len(&self) -> usize {
        self.peripherals.len()
    }

    /// True when no peripherals are registered.
    pub fn is_empty(&self) -> bool {
        self.peripherals.is_empty()
    }

    /// Total sensor reads served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total actuations served.
    pub fn actuations(&self) -> u64 {
        self.actuations
    }

    /// Reads a peripheral directly (host-side, outside the EVM).
    pub fn read_direct(&mut self, id: u64, parameter: u64) -> Option<SensorReading> {
        let sensor = self.peripherals.get_mut(&id)?;
        self.reads += 1;
        Some(sensor.read(parameter))
    }
}

impl IotEnvironment for DeviceSensors {
    fn handle(&mut self, request: IotRequest) -> Option<U256> {
        match request {
            IotRequest::ReadSensor { id, parameter } => {
                let sensor = self.peripherals.get_mut(&id)?;
                self.reads += 1;
                Some(sensor.read(parameter).value)
            }
            IotRequest::Actuate { id, value } => {
                let sensor = self.peripherals.get_mut(&id)?;
                if sensor.actuate(value) {
                    self.actuations += 1;
                    Some(U256::ONE)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sensor_is_constant() {
        let mut sensor = ConstantSensor::new(U256::from(42u64));
        assert_eq!(sensor.read(0).value, U256::from(42u64));
        assert_eq!(sensor.read(99).value, U256::from(42u64));
        assert!(!sensor.actuate(1));
    }

    #[test]
    fn sequence_sensor_walks_and_saturates() {
        let mut sensor =
            SequenceSensor::new(vec![U256::from(1u64), U256::from(2u64), U256::from(3u64)]);
        assert_eq!(sensor.read(0).value, U256::from(1u64));
        assert_eq!(sensor.read(0).value, U256::from(2u64));
        assert_eq!(sensor.read(0).value, U256::from(3u64));
        assert_eq!(sensor.read(0).value, U256::from(3u64));
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn sequence_sensor_rejects_empty_script() {
        let _ = SequenceSensor::new(vec![]);
    }

    #[test]
    fn recording_actuator_remembers_and_reads_back() {
        let mut actuator = RecordingActuator::new();
        assert_eq!(actuator.read(0).value, U256::ZERO);
        assert!(actuator.actuate(90));
        assert!(actuator.actuate(0));
        assert_eq!(actuator.applied(), &[90, 0]);
        assert_eq!(actuator.read(0).value, U256::ZERO);
    }

    #[test]
    fn registry_routes_reads_and_actuations() {
        let mut sensors = DeviceSensors::smart_parking_lot();
        assert_eq!(sensors.len(), 4);
        assert!(!sensors.is_empty());

        let temp = sensors.handle(IotRequest::ReadSensor {
            id: peripheral_id::TEMPERATURE,
            parameter: 0,
        });
        assert_eq!(temp, Some(U256::from(2150u64)));

        let ack = sensors.handle(IotRequest::Actuate {
            id: peripheral_id::BARRIER,
            value: 1,
        });
        assert_eq!(ack, Some(U256::ONE));
        assert_eq!(sensors.reads(), 1);
        assert_eq!(sensors.actuations(), 1);
    }

    #[test]
    fn unknown_peripheral_returns_none() {
        let mut sensors = DeviceSensors::new();
        assert!(sensors
            .handle(IotRequest::ReadSensor {
                id: 99,
                parameter: 0
            })
            .is_none());
        assert!(sensors
            .handle(IotRequest::Actuate { id: 99, value: 0 })
            .is_none());
        assert!(sensors.read_direct(99, 0).is_none());
    }

    #[test]
    fn actuating_a_pure_sensor_fails() {
        let mut sensors = DeviceSensors::new();
        sensors.register(7, Box::new(ConstantSensor::new(U256::ONE)));
        assert!(sensors
            .handle(IotRequest::Actuate { id: 7, value: 1 })
            .is_none());
        assert_eq!(sensors.actuations(), 0);
    }

    #[test]
    fn occupancy_sensor_in_parking_preset_changes_over_time() {
        let mut sensors = DeviceSensors::smart_parking_lot();
        let first = sensors.read_direct(peripheral_id::OCCUPANCY, 0).unwrap();
        let second = sensors.read_direct(peripheral_id::OCCUPANCY, 0).unwrap();
        assert_eq!(first.value, U256::ZERO);
        assert_eq!(second.value, U256::ONE);
    }
}
