//! Signed off-chain payments.
//!
//! The payment artifact itself lives in `tinyevm-wire` — it is a wire-format
//! object first and foremost, shared by the radio transport, the
//! persistence layer and this protocol crate. This module re-exports it so
//! existing `tinyevm_channel::payment` users keep compiling unchanged.

pub use tinyevm_wire::payment::{PaymentError, SignedPayment};
