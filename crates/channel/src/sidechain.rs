//! The node-local side-chain log.
//!
//! Every execution of the off-chain payment channel "extends the local
//! (side-chain) log of the node, which links each state with the previous"
//! (paper Section IV-D). The log is anchored at the root published in the
//! on-chain template, so a verifier can replay it and confirm that no
//! transaction was omitted and that the order of logical-clock values is
//! consistent. During a dispute, this log is the evidence a node submits.

use tinyevm_crypto::keccak256_h256;
use tinyevm_types::{Wei, H256};
use tinyevm_wire::SideChainEntryRecord;

/// One entry of the log: a committed off-chain state linked to its
/// predecessor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SideChainEntry {
    /// Position in the log (0-based).
    pub index: u64,
    /// Channel the state belongs to.
    pub channel_id: u64,
    /// Sequence number of the state.
    pub sequence: u64,
    /// Cumulative amount owed to the receiver at this state.
    pub cumulative: Wei,
    /// Digest of the state (payment digest or closing-state digest).
    pub state_digest: H256,
    /// Hash of the previous entry (anchor for the first entry).
    pub previous_hash: H256,
    /// This entry's hash.
    pub entry_hash: H256,
}

impl SideChainEntry {
    fn compute_hash(
        index: u64,
        channel_id: u64,
        sequence: u64,
        cumulative: &Wei,
        state_digest: &H256,
        previous_hash: &H256,
    ) -> H256 {
        let mut data = Vec::with_capacity(8 * 3 + 32 * 3);
        data.extend_from_slice(&index.to_be_bytes());
        data.extend_from_slice(&channel_id.to_be_bytes());
        data.extend_from_slice(&sequence.to_be_bytes());
        data.extend_from_slice(&cumulative.amount().to_be_bytes());
        data.extend_from_slice(state_digest.as_bytes());
        data.extend_from_slice(previous_hash.as_bytes());
        keccak256_h256(&data)
    }
}

/// A hash-linked, append-only log of off-chain state transitions.
///
/// # Example
///
/// ```
/// use tinyevm_channel::SideChainLog;
/// use tinyevm_types::{H256, Wei};
///
/// let mut log = SideChainLog::new(H256::from_low_u64(0xabc));
/// log.append(1, 1, Wei::from(100u64), H256::from_low_u64(1));
/// log.append(1, 2, Wei::from(200u64), H256::from_low_u64(2));
/// assert!(log.verify());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SideChainLog {
    anchor: H256,
    entries: Vec<SideChainEntry>,
}

impl SideChainLog {
    /// Creates an empty log anchored at the on-chain root `anchor`.
    pub fn new(anchor: H256) -> Self {
        SideChainLog {
            anchor,
            entries: Vec::new(),
        }
    }

    /// The anchor this log hangs off.
    pub fn anchor(&self) -> H256 {
        self.anchor
    }

    /// Exports the entries as wire-format records (for a
    /// `tinyevm_wire::ChannelSnapshot`).
    pub fn export_entries(&self) -> Vec<SideChainEntryRecord> {
        self.entries
            .iter()
            .map(|entry| SideChainEntryRecord {
                index: entry.index,
                channel_id: entry.channel_id,
                sequence: entry.sequence,
                cumulative: entry.cumulative,
                state_digest: entry.state_digest,
                previous_hash: entry.previous_hash,
                entry_hash: entry.entry_hash,
            })
            .collect()
    }

    /// Rebuilds a log from persisted records, returning `None` unless the
    /// restored chain verifies end to end (hash links, recomputed entry
    /// hashes, strictly increasing per-channel sequences).
    pub fn from_parts(anchor: H256, records: &[SideChainEntryRecord]) -> Option<Self> {
        let log = SideChainLog {
            anchor,
            entries: records
                .iter()
                .map(|record| SideChainEntry {
                    index: record.index,
                    channel_id: record.channel_id,
                    sequence: record.sequence,
                    cumulative: record.cumulative,
                    state_digest: record.state_digest,
                    previous_hash: record.previous_hash,
                    entry_hash: record.entry_hash,
                })
                .collect(),
        };
        log.verify().then_some(log)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries have been appended.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries, oldest first.
    pub fn entries(&self) -> &[SideChainEntry] {
        &self.entries
    }

    /// Hash of the latest entry (or the anchor when empty) — the value a
    /// node would publish when reporting its local log.
    pub fn head(&self) -> H256 {
        self.entries
            .last()
            .map(|e| e.entry_hash)
            .unwrap_or(self.anchor)
    }

    /// Appends a state transition and returns the new entry.
    pub fn append(
        &mut self,
        channel_id: u64,
        sequence: u64,
        cumulative: Wei,
        state_digest: H256,
    ) -> &SideChainEntry {
        let index = self.entries.len() as u64;
        let previous_hash = self.head();
        let entry_hash = SideChainEntry::compute_hash(
            index,
            channel_id,
            sequence,
            &cumulative,
            &state_digest,
            &previous_hash,
        );
        self.entries.push(SideChainEntry {
            index,
            channel_id,
            sequence,
            cumulative,
            state_digest,
            previous_hash,
            entry_hash,
        });
        self.entries.last().expect("just pushed")
    }

    /// Verifies the whole chain: hashes link correctly and per-channel
    /// sequence numbers are strictly increasing (no omitted or reordered
    /// transitions).
    pub fn verify(&self) -> bool {
        let mut previous = self.anchor;
        let mut last_sequence_per_channel = std::collections::BTreeMap::new();
        for (i, entry) in self.entries.iter().enumerate() {
            if entry.index != i as u64 || entry.previous_hash != previous {
                return false;
            }
            let recomputed = SideChainEntry::compute_hash(
                entry.index,
                entry.channel_id,
                entry.sequence,
                &entry.cumulative,
                &entry.state_digest,
                &entry.previous_hash,
            );
            if recomputed != entry.entry_hash {
                return false;
            }
            let last = last_sequence_per_channel
                .entry(entry.channel_id)
                .or_insert(0u64);
            if entry.sequence <= *last {
                return false;
            }
            *last = entry.sequence;
            previous = entry.entry_hash;
        }
        true
    }

    /// Highest sequence recorded for a channel.
    pub fn latest_sequence(&self, channel_id: u64) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.channel_id == channel_id)
            .map(|e| e.sequence)
            .max()
            .unwrap_or(0)
    }

    /// Latest cumulative amount recorded for a channel.
    pub fn latest_cumulative(&self, channel_id: u64) -> Wei {
        self.entries
            .iter()
            .filter(|e| e.channel_id == channel_id)
            .max_by_key(|e| e.sequence)
            .map(|e| e.cumulative)
            .unwrap_or(Wei::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_with(entries: usize) -> SideChainLog {
        let mut log = SideChainLog::new(H256::from_low_u64(anchor_placeholder()));
        for i in 1..=entries as u64 {
            log.append(1, i, Wei::from(i * 10), H256::from_low_u64(i));
        }
        log
    }

    const fn anchor_placeholder() -> u64 {
        0xabcd
    }

    #[test]
    fn empty_log_head_is_the_anchor() {
        let log = SideChainLog::new(H256::from_low_u64(7));
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert_eq!(log.head(), H256::from_low_u64(7));
        assert_eq!(log.anchor(), H256::from_low_u64(7));
        assert!(log.verify());
        assert_eq!(log.latest_sequence(1), 0);
        assert_eq!(log.latest_cumulative(1), Wei::ZERO);
    }

    #[test]
    fn entries_link_hashes() {
        let log = log_with(5);
        assert_eq!(log.len(), 5);
        assert!(log.verify());
        let entries = log.entries();
        for pair in entries.windows(2) {
            assert_eq!(pair[1].previous_hash, pair[0].entry_hash);
        }
        assert_eq!(log.head(), entries[4].entry_hash);
        assert_eq!(log.latest_sequence(1), 5);
        assert_eq!(log.latest_cumulative(1), Wei::from(50u64));
    }

    #[test]
    fn tampering_with_any_field_breaks_verification() {
        let base = log_with(4);
        assert!(base.verify());

        let mut tampered = base.clone();
        tampered.entries[2].cumulative = Wei::from(9_999u64);
        assert!(!tampered.verify());

        let mut tampered = base.clone();
        tampered.entries[1].sequence = 99;
        assert!(!tampered.verify());

        let mut tampered = base.clone();
        tampered.entries[0].previous_hash = H256::from_low_u64(0xbad);
        assert!(!tampered.verify());

        let mut reordered = base.clone();
        reordered.entries.swap(1, 2);
        assert!(!reordered.verify());

        let mut truncated_middle = base.clone();
        truncated_middle.entries.remove(1);
        assert!(!truncated_middle.verify());
    }

    #[test]
    fn sequence_must_increase_per_channel() {
        let mut log = SideChainLog::new(H256::ZERO);
        log.append(1, 1, Wei::from(10u64), H256::from_low_u64(1));
        log.append(2, 1, Wei::from(5u64), H256::from_low_u64(2)); // other channel, fine
        log.append(1, 2, Wei::from(20u64), H256::from_low_u64(3));
        assert!(log.verify());
        // Force a replayed sequence into the structure.
        let digest = H256::from_low_u64(4);
        log.append(1, 2, Wei::from(30u64), digest);
        assert!(!log.verify());
    }

    #[test]
    fn per_channel_queries() {
        let mut log = SideChainLog::new(H256::ZERO);
        log.append(1, 1, Wei::from(10u64), H256::from_low_u64(1));
        log.append(2, 1, Wei::from(99u64), H256::from_low_u64(2));
        log.append(1, 3, Wei::from(40u64), H256::from_low_u64(3));
        assert_eq!(log.latest_sequence(1), 3);
        assert_eq!(log.latest_cumulative(1), Wei::from(40u64));
        assert_eq!(log.latest_sequence(2), 1);
        assert_eq!(log.latest_cumulative(2), Wei::from(99u64));
        assert_eq!(log.latest_sequence(3), 0);
    }
}
