//! The EVM bytecode of the off-chain contracts (paper Listings 1 and 2).
//!
//! The paper writes its template and payment-channel contracts in Solidity
//! with a line of inline assembly for the IoT opcode. This workspace has no
//! Solidity compiler, so the equivalent contracts are assembled directly:
//!
//! * [`payment_channel_init_code`] — the payment channel's constructor: it
//!   executes the IoT opcode to read a sensor, stores the reading at slot
//!   `0x0C` (as in Listing 2), stores the channel id, runs a short
//!   solc-style memory-initialisation loop (so its execution profile
//!   resembles compiler output rather than hand-minimised code), and returns
//!   the runtime code.
//! * The runtime code dispatches on the first calldata byte:
//!   `0x01` records a payment (sequence, cumulative amount) into storage and
//!   returns the new cumulative amount; `0x02` returns the stored sensor
//!   reading; `0x03` returns the highest recorded sequence number; anything
//!   else reverts.
//! * [`template_runtime_code`] — the factory: calling it with selector
//!   `0x01` CREATEs a new payment channel from the embedded init code and
//!   returns the child address, mirroring Listing 1's
//!   `CreatePaymentChannel`.

use tinyevm_evm::asm::{assemble, wrap_as_init_code};
use tinyevm_evm::Opcode;

/// Storage slot that holds the sensor reading (the paper stores it at the
/// IoT opcode's own number, `0x0C`).
pub const SLOT_SENSOR: u8 = 0x0c;
/// Storage slot holding the channel identifier.
pub const SLOT_CHANNEL_ID: u8 = 0x01;
/// Storage slot holding the highest recorded sequence number.
pub const SLOT_SEQUENCE: u8 = 0x02;
/// Storage slot holding the cumulative amount paid to the receiver.
pub const SLOT_CUMULATIVE: u8 = 0x03;

/// Calldata selector for recording a payment.
pub const FN_RECORD_PAYMENT: u8 = 0x01;
/// Calldata selector for reading the stored sensor value.
pub const FN_READ_SENSOR: u8 = 0x02;
/// Calldata selector for reading the highest sequence number.
pub const FN_READ_SEQUENCE: u8 = 0x03;

/// The payment channel's runtime code.
///
/// Calldata layout for [`FN_RECORD_PAYMENT`]: byte 0 is the selector, bytes
/// 1..33 the sequence number, bytes 33..65 the cumulative amount (both
/// 32-byte big-endian words).
pub fn payment_channel_runtime_code() -> Vec<u8> {
    let source = format!(
        "
        ; dispatcher: selector = first calldata byte
        PUSH1 0x00 CALLDATALOAD PUSH1 0xf8 SHR

        DUP1 PUSH1 0x{record:02x} EQ PUSHLABEL @record JUMPI
        DUP1 PUSH1 0x{sensor:02x} EQ PUSHLABEL @sensor JUMPI
        DUP1 PUSH1 0x{sequence:02x} EQ PUSHLABEL @sequence JUMPI
        ; unknown selector -> revert
        PUSH1 0x00 PUSH1 0x00 REVERT

        @record: JUMPDEST
        POP
        ; sequence = calldata[1..33]
        PUSH1 0x01 CALLDATALOAD
        ; must be strictly greater than the stored sequence
        DUP1 PUSH1 0x{slot_seq:02x} SLOAD LT ISZERO PUSHLABEL @stale JUMPI
        PUSH1 0x{slot_seq:02x} SSTORE
        ; cumulative = calldata[33..65]
        PUSH1 0x21 CALLDATALOAD
        DUP1 PUSH1 0x{slot_cum:02x} SSTORE
        ; return the new cumulative amount
        PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN

        @stale: JUMPDEST
        PUSH1 0x00 PUSH1 0x00 REVERT

        @sensor: JUMPDEST
        POP
        PUSH1 0x{slot_sensor:02x} SLOAD PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN

        @sequence: JUMPDEST
        POP
        PUSH1 0x{slot_seq:02x} SLOAD PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN
        ",
        record = FN_RECORD_PAYMENT,
        sensor = FN_READ_SENSOR,
        sequence = FN_READ_SEQUENCE,
        slot_seq = SLOT_SEQUENCE,
        slot_cum = SLOT_CUMULATIVE,
        slot_sensor = SLOT_SENSOR,
    );
    assemble(&source).expect("payment channel runtime assembles")
}

/// The payment channel's init code (constructor).
///
/// The constructor mirrors the paper's Listing 2: it reads sensor
/// `sensor_id` through the IoT opcode, stores the reading at slot `0x0C`,
/// stores the channel id passed as `channel_id`, performs a solc-style
/// memory-zeroing loop (64 words) so that its execution cost is
/// representative of compiled constructors, and finally returns the runtime
/// code.
pub fn payment_channel_init_code(sensor_id: u64, channel_id: u64) -> Vec<u8> {
    let runtime = payment_channel_runtime_code();
    // Selector word for "read sensor `sensor_id`": op byte 0 plus the id in
    // the next 8 bytes (see IotRequest::decode).
    let constructor = format!(
        "
        ; --- solc-style prologue: free-memory pointer + zero a scratch area
        PUSH1 0x80 PUSH1 0x40 MSTORE
        PUSH1 0x00                      ; loop counter i
        @zeroloop: JUMPDEST
        DUP1 PUSH2 0x0800 MSTORE        ; scratch writes keep memory warm
        PUSH1 0x01 ADD
        DUP1 PUSH1 0x40 GT PUSHLABEL @zeroloop JUMPI
        POP

        ; --- IoT sensor read (Listing 2's inline assembly 0x0c)
        PUSH1 0x00                      ; parameter
        PUSH8 0x{sensor_selector:016x} PUSH1 0x08 SHL ; sensor id into selector bytes 1..9
        IOT
        PUSH1 0x{slot_sensor:02x} SSTORE

        ; --- store the channel id issued by the template's logical clock
        PUSH8 0x{channel_id:016x}
        PUSH1 0x{slot_channel:02x} SSTORE

        ; --- bind the parties: hash caller and origin into slot 4
        CALLER PUSH1 0x00 MSTORE
        ORIGIN PUSH1 0x20 MSTORE
        PUSH1 0x40 PUSH1 0x00 SHA3
        PUSH1 0x04 SSTORE
        ",
        sensor_selector = sensor_id,
        slot_sensor = SLOT_SENSOR,
        channel_id = channel_id,
        slot_channel = SLOT_CHANNEL_ID,
    );
    let constructor_code = assemble(&constructor).expect("payment channel constructor assembles");
    prepend_constructor(constructor_code, &runtime)
}

/// Builds init code that first runs `constructor_code` (which must not
/// terminate execution) and then returns `runtime` via CODECOPY.
fn prepend_constructor(mut constructor_code: Vec<u8>, runtime: &[u8]) -> Vec<u8> {
    // Tail: PUSH2 len DUP1 PUSH2 offset PUSH1 0 CODECOPY PUSH1 0 RETURN <runtime>
    let tail_prologue_len = 13usize;
    let offset = constructor_code.len() + tail_prologue_len;
    let len = runtime.len();
    let tail = vec![
        Opcode::Push2.to_byte(),
        (len >> 8) as u8,
        len as u8,
        Opcode::Dup1.to_byte(),
        Opcode::Push2.to_byte(),
        (offset >> 8) as u8,
        offset as u8,
        Opcode::Push1.to_byte(),
        0x00,
        Opcode::CodeCopy.to_byte(),
        Opcode::Push1.to_byte(),
        0x00,
        Opcode::Return.to_byte(),
    ];
    debug_assert_eq!(tail.len(), tail_prologue_len);
    constructor_code.extend_from_slice(&tail);
    constructor_code.extend_from_slice(runtime);
    constructor_code
}

/// The template (factory) runtime: on selector `0x01` it CREATEs a new
/// payment channel from the child init code embedded after the code proper,
/// stores the new address at storage slot 0 and returns it.
pub fn template_runtime_code(child_init_code: &[u8]) -> Vec<u8> {
    // The child init code is appended after the dispatcher; its offset is
    // only known once the dispatcher is assembled, so assemble with a
    // placeholder first and patch the two PUSH2 immediates afterwards.
    let build = |offset: usize, len: usize| -> Vec<u8> {
        let source = format!(
            "
            PUSH1 0x00 CALLDATALOAD PUSH1 0xf8 SHR
            DUP1 PUSH1 0x01 EQ PUSHLABEL @create JUMPI
            PUSH1 0x00 PUSH1 0x00 REVERT

            @create: JUMPDEST
            POP
            ; copy the embedded child init code into memory
            PUSH2 0x{len:04x} PUSH2 0x{offset:04x} PUSH1 0x00 CODECOPY
            ; CREATE(value = 0, offset = 0, size = len)
            PUSH2 0x{len:04x} PUSH1 0x00 PUSH1 0x00 CREATE
            ; store and return the new channel address
            DUP1 PUSH1 0x00 SSTORE
            PUSH1 0x00 MSTORE PUSH1 0x20 PUSH1 0x00 RETURN
            "
        );
        assemble(&source).expect("template runtime assembles")
    };
    // First pass with zero placeholders to learn the dispatcher length.
    let dispatcher_len = build(0, 0).len();
    let mut code = build(dispatcher_len, child_init_code.len());
    debug_assert_eq!(code.len(), dispatcher_len);
    code.extend_from_slice(child_init_code);
    code
}

/// Init code deploying the template factory itself (used when the template
/// is staged on the device or deployed to the chain simulator).
pub fn template_init_code(child_init_code: &[u8]) -> Vec<u8> {
    wrap_as_init_code(&template_runtime_code(child_init_code))
}

/// Builds the calldata for [`FN_RECORD_PAYMENT`].
pub fn record_payment_calldata(sequence: u64, cumulative: tinyevm_types::U256) -> Vec<u8> {
    let mut data = Vec::with_capacity(65);
    data.push(FN_RECORD_PAYMENT);
    data.extend_from_slice(&tinyevm_types::U256::from(sequence).to_be_bytes());
    data.extend_from_slice(&cumulative.to_be_bytes());
    data
}

/// Builds the calldata for a read-only selector (`FN_READ_SENSOR` /
/// `FN_READ_SEQUENCE`).
pub fn read_calldata(selector: u8) -> Vec<u8> {
    vec![selector]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyevm_evm::{deploy, Evm, EvmConfig, ExecOutcome, ScriptedSensors};
    use tinyevm_types::U256;

    fn sensors() -> ScriptedSensors {
        ScriptedSensors::new().with_reading(0, U256::from(2150u64))
    }

    #[test]
    fn runtime_code_is_reasonably_sized() {
        let runtime = payment_channel_runtime_code();
        assert!(runtime.len() > 40);
        assert!(runtime.len() < 1024);
        let init = payment_channel_init_code(0, 1);
        assert!(init.len() > runtime.len());
        assert!(init.len() < 8 * 1024, "must fit the device limit");
    }

    #[test]
    fn constructor_reads_sensor_and_returns_runtime() {
        let init = payment_channel_init_code(0, 7);
        let mut iot = sensors();
        let result = tinyevm_evm::deploy_with(
            &EvmConfig::cc2538(),
            &init,
            &[],
            &mut tinyevm_evm::NullHost::new(),
            &mut iot,
        )
        .unwrap();
        assert_eq!(result.runtime_code, payment_channel_runtime_code());
        assert_eq!(result.metrics.iot_invocations, 1);
        // The constructor executes a realistic number of instructions
        // (solc-style prologue), not just a handful.
        assert!(result.metrics.instructions > 200);
    }

    #[test]
    fn constructor_without_sensor_traps() {
        let init = payment_channel_init_code(0, 7);
        assert!(deploy(&EvmConfig::cc2538(), &init).is_err());
    }

    #[test]
    fn record_payment_updates_storage_and_rejects_stale() {
        let runtime = payment_channel_runtime_code();
        let mut evm = Evm::new(EvmConfig::cc2538());
        // First payment: sequence 1, cumulative 100 — runs against fresh
        // storage, so execute the calls through one storage instance.
        let mut storage = tinyevm_evm::SideChainStorage::new(1024);
        let mut host = tinyevm_evm::NullHost::new();
        let mut iot = tinyevm_evm::NullIotEnvironment;
        let run = |evm: &mut Evm,
                   storage: &mut tinyevm_evm::SideChainStorage,
                   host: &mut tinyevm_evm::NullHost,
                   iot: &mut tinyevm_evm::NullIotEnvironment,
                   data: Vec<u8>| {
            evm.execute_in_frame(
                &runtime,
                tinyevm_evm::CallContext {
                    call_data: data,
                    ..Default::default()
                },
                storage,
                host,
                iot,
                false,
                4,
            )
            .unwrap()
        };

        let result = run(
            &mut evm,
            &mut storage,
            &mut host,
            &mut iot,
            record_payment_calldata(1, U256::from(100u64)),
        );
        assert_eq!(result.outcome, ExecOutcome::Return);
        assert_eq!(
            U256::from_be_slice(&result.output).unwrap(),
            U256::from(100u64)
        );

        // Higher sequence supersedes.
        let result = run(
            &mut evm,
            &mut storage,
            &mut host,
            &mut iot,
            record_payment_calldata(2, U256::from(250u64)),
        );
        assert_eq!(result.outcome, ExecOutcome::Return);

        // Stale sequence reverts.
        let result = run(
            &mut evm,
            &mut storage,
            &mut host,
            &mut iot,
            record_payment_calldata(2, U256::from(999u64)),
        );
        assert_eq!(result.outcome, ExecOutcome::Revert);

        // Sequence query returns 2.
        let result = run(
            &mut evm,
            &mut storage,
            &mut host,
            &mut iot,
            read_calldata(FN_READ_SEQUENCE),
        );
        assert_eq!(
            U256::from_be_slice(&result.output).unwrap(),
            U256::from(2u64)
        );
    }

    #[test]
    fn unknown_selector_reverts() {
        let runtime = payment_channel_runtime_code();
        let mut evm = Evm::new(EvmConfig::cc2538());
        let result = evm.execute(&runtime, &[0x77]).unwrap();
        assert_eq!(result.outcome, ExecOutcome::Revert);
        let result = evm.execute(&runtime, &[]).unwrap();
        assert_eq!(result.outcome, ExecOutcome::Revert);
    }

    #[test]
    fn template_factory_creates_channels_via_create_opcode() {
        use tinyevm_evm::{ContractStore, Host};
        use tinyevm_types::Address;

        // Child init code must not need a sensor here, so use the
        // zero-sensor variant with a scripted environment.
        let child_init = payment_channel_init_code(0, 1);
        let template_runtime = template_runtime_code(&child_init);

        let mut world = ContractStore::new(EvmConfig::cc2538());
        let template_address = Address::from_low_u64(0xFAC);
        world.install_code(template_address, template_runtime);

        let caller = Address::from_low_u64(0xCA);
        let mut iot = sensors();
        let outcome =
            world.execute_contract(caller, template_address, U256::ZERO, &[0x01], &mut iot);
        assert!(outcome.success, "factory call failed: {outcome:?}");
        let child_address = Address::from_u256(U256::from_be_slice(&outcome.output).unwrap());
        assert_ne!(child_address, Address::ZERO);
        // The child is now a real contract with the payment-channel runtime.
        assert_eq!(world.code(&child_address), payment_channel_runtime_code());
        // And its constructor stored the sensor reading.
        assert_eq!(
            world.storage_of(&child_address, U256::from(SLOT_SENSOR as u64)),
            U256::from(2150u64)
        );
    }

    #[test]
    fn calldata_builders() {
        let data = record_payment_calldata(7, U256::from(123u64));
        assert_eq!(data.len(), 65);
        assert_eq!(data[0], FN_RECORD_PAYMENT);
        assert_eq!(data[32], 7);
        assert_eq!(read_calldata(FN_READ_SENSOR), vec![FN_READ_SENSOR]);
    }
}
