//! The per-node payment-channel state machine.

use tinyevm_crypto::secp256k1::{PrivateKey, Signature};
use tinyevm_types::{Address, Wei, H256};

use tinyevm_chain::{ChannelState, CommitEnvelope};
use tinyevm_wire::{ChannelSnapshot, EndpointRole, WireError};

use crate::payment::{PaymentError, SignedPayment};
use crate::sidechain::SideChainLog;

/// Which side of the channel this node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelRole {
    /// The paying party (the vehicle).
    Sender,
    /// The receiving party (the parking sensor).
    Receiver,
}

/// Channel lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelStatus {
    /// Payments may be exchanged.
    Open,
    /// A final state has been produced; no more payments.
    Closed,
}

/// Static parameters agreed when the channel is created from the template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelConfig {
    /// On-chain template address.
    pub template: Address,
    /// Channel identifier (template logical-clock tick).
    pub channel_id: u64,
    /// The paying party's address.
    pub sender: Address,
    /// The receiving party's address.
    pub receiver: Address,
    /// Maximum cumulative amount the channel may pay (bounded by the
    /// template deposit).
    pub deposit_cap: Wei,
}

/// Errors from channel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// A payment failed validation.
    Payment(PaymentError),
    /// The channel is not open.
    NotOpen,
    /// Only the given role may perform this operation.
    WrongRole(ChannelRole),
}

impl core::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChannelError::Payment(error) => write!(f, "invalid payment: {error}"),
            ChannelError::NotOpen => write!(f, "channel is not open"),
            ChannelError::WrongRole(role) => write!(f, "operation requires the {role:?} role"),
        }
    }
}

impl std::error::Error for ChannelError {}

impl From<PaymentError> for ChannelError {
    fn from(error: PaymentError) -> Self {
        ChannelError::Payment(error)
    }
}

/// One endpoint's view of an off-chain payment channel.
///
/// Both parties run the same state machine; the [`ChannelRole`] decides who
/// may create payments and who accepts them. All validation — logical-clock
/// monotonicity, non-shrinking cumulative amounts, the deposit cap and the
/// payer's signature — happens here, which is exactly the validation the
/// paper's security analysis relies on for fraud detection.
///
/// # Example
///
/// ```
/// use tinyevm_channel::{ChannelConfig, ChannelRole, PaymentChannel};
/// use tinyevm_crypto::secp256k1::PrivateKey;
/// use tinyevm_types::{Address, H256, Wei};
///
/// let car = PrivateKey::from_seed(b"car");
/// let lot = PrivateKey::from_seed(b"lot");
/// let config = ChannelConfig {
///     template: Address::from_low_u64(1),
///     channel_id: 1,
///     sender: car.eth_address(),
///     receiver: lot.eth_address(),
///     deposit_cap: Wei::from(1_000u64),
/// };
/// let mut sender_side = PaymentChannel::new(config.clone(), ChannelRole::Sender);
/// let mut receiver_side = PaymentChannel::new(config, ChannelRole::Receiver);
///
/// let payment = sender_side
///     .create_payment(&car, Wei::from(100u64), H256::ZERO)
///     .unwrap();
/// receiver_side.accept_payment(&payment).unwrap();
/// assert_eq!(receiver_side.cumulative(), Wei::from(100u64));
/// ```
#[derive(Debug, Clone)]
pub struct PaymentChannel {
    config: ChannelConfig,
    role: ChannelRole,
    status: ChannelStatus,
    sequence: u64,
    cumulative: Wei,
    last_sensor_hash: H256,
    payments_seen: u64,
}

impl PaymentChannel {
    /// Opens a channel endpoint.
    pub fn new(config: ChannelConfig, role: ChannelRole) -> Self {
        PaymentChannel {
            config,
            role,
            status: ChannelStatus::Open,
            sequence: 0,
            cumulative: Wei::ZERO,
            last_sensor_hash: H256::ZERO,
            payments_seen: 0,
        }
    }

    /// The channel parameters.
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// This endpoint's role.
    pub fn role(&self) -> ChannelRole {
        self.role
    }

    /// Current lifecycle status.
    pub fn status(&self) -> ChannelStatus {
        self.status
    }

    /// Highest sequence number seen or produced.
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// Cumulative amount owed to the receiver.
    pub fn cumulative(&self) -> Wei {
        self.cumulative
    }

    /// Number of payments created or accepted.
    pub fn payments_seen(&self) -> u64 {
        self.payments_seen
    }

    /// Sensor-data hash of the latest payment (zero before the first).
    pub fn last_sensor_hash(&self) -> H256 {
        self.last_sensor_hash
    }

    /// Captures this endpoint plus its side-chain log and the peer
    /// acknowledgement signatures it has collected as a wire-format
    /// [`ChannelSnapshot`] — what a device writes to flash before a power
    /// cycle.
    pub fn snapshot(&self, log: &SideChainLog, peer_acks: &[Signature]) -> ChannelSnapshot {
        ChannelSnapshot {
            template: self.config.template,
            channel_id: self.config.channel_id,
            sender: self.config.sender,
            receiver: self.config.receiver,
            deposit_cap: self.config.deposit_cap,
            role: match self.role {
                ChannelRole::Sender => EndpointRole::Sender,
                ChannelRole::Receiver => EndpointRole::Receiver,
            },
            open: self.status == ChannelStatus::Open,
            sequence: self.sequence,
            cumulative: self.cumulative,
            last_sensor_hash: self.last_sensor_hash,
            payments_seen: self.payments_seen,
            anchor: log.anchor(),
            log: log.export_entries(),
            peer_acks: peer_acks.to_vec(),
        }
    }

    /// Rebuilds an endpoint, its side-chain log and the collected peer
    /// acknowledgements from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Value`] when the snapshot's side-chain log does
    /// not verify — a tampered or corrupted snapshot must not resurrect a
    /// channel.
    pub fn restore(
        snapshot: &ChannelSnapshot,
    ) -> Result<(Self, SideChainLog, Vec<Signature>), WireError> {
        let log = SideChainLog::from_parts(snapshot.anchor, &snapshot.log)
            .ok_or(WireError::Value("side-chain log does not verify"))?;
        let channel = PaymentChannel {
            config: ChannelConfig {
                template: snapshot.template,
                channel_id: snapshot.channel_id,
                sender: snapshot.sender,
                receiver: snapshot.receiver,
                deposit_cap: snapshot.deposit_cap,
            },
            role: match snapshot.role {
                EndpointRole::Sender => ChannelRole::Sender,
                EndpointRole::Receiver => ChannelRole::Receiver,
            },
            status: if snapshot.open {
                ChannelStatus::Open
            } else {
                ChannelStatus::Closed
            },
            sequence: snapshot.sequence,
            cumulative: snapshot.cumulative,
            last_sensor_hash: snapshot.last_sensor_hash,
            payments_seen: snapshot.payments_seen,
        };
        Ok((channel, log, snapshot.peer_acks.clone()))
    }

    /// Remaining headroom under the deposit cap.
    pub fn remaining(&self) -> Wei {
        self.config.deposit_cap.saturating_sub(self.cumulative)
    }

    /// Creates the next payment, increasing the cumulative amount by
    /// `increment` (sender side only).
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::WrongRole`] on the receiver side,
    /// [`ChannelError::NotOpen`] after closing, and
    /// [`ChannelError::Payment`] when the increment would exceed the
    /// deposit cap.
    pub fn create_payment(
        &mut self,
        payer_key: &PrivateKey,
        increment: Wei,
        sensor_data_hash: H256,
    ) -> Result<SignedPayment, ChannelError> {
        if self.role != ChannelRole::Sender {
            return Err(ChannelError::WrongRole(ChannelRole::Sender));
        }
        if self.status != ChannelStatus::Open {
            return Err(ChannelError::NotOpen);
        }
        let new_cumulative = self.cumulative.saturating_add(increment);
        if new_cumulative.amount() > self.config.deposit_cap.amount() {
            return Err(ChannelError::Payment(PaymentError::ExceedsDeposit {
                offered: new_cumulative,
                cap: self.config.deposit_cap,
            }));
        }
        let sequence = self.sequence + 1;
        let payment = SignedPayment::create(
            payer_key,
            self.config.template,
            self.config.channel_id,
            sequence,
            new_cumulative,
            sensor_data_hash,
        );
        self.sequence = sequence;
        self.cumulative = new_cumulative;
        self.last_sensor_hash = sensor_data_hash;
        self.payments_seen += 1;
        Ok(payment)
    }

    /// Validates and applies a payment received from the peer (receiver
    /// side only).
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::Payment`] describing which check failed.
    pub fn accept_payment(&mut self, payment: &SignedPayment) -> Result<(), ChannelError> {
        if self.role != ChannelRole::Receiver {
            return Err(ChannelError::WrongRole(ChannelRole::Receiver));
        }
        if self.status != ChannelStatus::Open {
            return Err(ChannelError::NotOpen);
        }
        if payment.template != self.config.template || payment.channel_id != self.config.channel_id
        {
            return Err(ChannelError::Payment(PaymentError::WrongChannel));
        }
        payment.verify_payer(&self.config.sender)?;
        if payment.sequence <= self.sequence {
            return Err(ChannelError::Payment(PaymentError::StaleSequence {
                current: self.sequence,
                offered: payment.sequence,
            }));
        }
        if payment.cumulative < self.cumulative {
            return Err(ChannelError::Payment(PaymentError::ShrinkingAmount {
                current: self.cumulative,
                offered: payment.cumulative,
            }));
        }
        if payment.cumulative.amount() > self.config.deposit_cap.amount() {
            return Err(ChannelError::Payment(PaymentError::ExceedsDeposit {
                offered: payment.cumulative,
                cap: self.config.deposit_cap,
            }));
        }
        self.sequence = payment.sequence;
        self.cumulative = payment.cumulative;
        self.last_sensor_hash = payment.sensor_data_hash;
        self.payments_seen += 1;
        Ok(())
    }

    /// The final state this endpoint would commit if the channel closed
    /// now, without changing the channel (used to validate a peer's close
    /// request before accepting it).
    pub fn closing_state(&self) -> ChannelState {
        ChannelState {
            template: self.config.template,
            channel_id: self.config.channel_id,
            sequence: self.sequence + 1,
            total_to_receiver: self.cumulative,
            sensor_data_hash: self.last_sensor_hash,
        }
    }

    /// Closes the channel and produces the final state both parties will
    /// sign for the on-chain commit.
    pub fn close(&mut self) -> ChannelState {
        self.status = ChannelStatus::Closed;
        self.closing_state()
    }

    /// Signs a final state with this endpoint's key; combining both
    /// parties' signatures yields the [`CommitEnvelope`] that goes on-chain.
    pub fn sign_state(
        key: &PrivateKey,
        state: &ChannelState,
    ) -> tinyevm_crypto::secp256k1::Signature {
        key.sign_prehashed(&state.digest())
    }

    /// Assembles the dual-signed commit envelope.
    pub fn envelope(
        state: ChannelState,
        sender_signature: tinyevm_crypto::secp256k1::Signature,
        receiver_signature: tinyevm_crypto::secp256k1::Signature,
    ) -> CommitEnvelope {
        CommitEnvelope {
            state,
            sender_signature,
            receiver_signature,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Pair {
        car: PrivateKey,
        lot: PrivateKey,
        sender: PaymentChannel,
        receiver: PaymentChannel,
    }

    fn pair(cap: u64) -> Pair {
        let car = PrivateKey::from_seed(b"car");
        let lot = PrivateKey::from_seed(b"lot");
        let config = ChannelConfig {
            template: Address::from_low_u64(0xAA),
            channel_id: 1,
            sender: car.eth_address(),
            receiver: lot.eth_address(),
            deposit_cap: Wei::from(cap),
        };
        Pair {
            sender: PaymentChannel::new(config.clone(), ChannelRole::Sender),
            receiver: PaymentChannel::new(config, ChannelRole::Receiver),
            car,
            lot,
        }
    }

    #[test]
    fn payments_flow_sender_to_receiver() {
        let mut p = pair(1000);
        for round in 1..=5u64 {
            let payment = p
                .sender
                .create_payment(&p.car, Wei::from(100u64), H256::from_low_u64(round))
                .unwrap();
            assert_eq!(payment.sequence, round);
            assert_eq!(payment.cumulative, Wei::from(100 * round));
            p.receiver.accept_payment(&payment).unwrap();
        }
        assert_eq!(p.receiver.cumulative(), Wei::from(500u64));
        assert_eq!(p.receiver.sequence(), 5);
        assert_eq!(p.receiver.payments_seen(), 5);
        assert_eq!(p.sender.remaining(), Wei::from(500u64));
    }

    #[test]
    fn roles_are_enforced() {
        let mut p = pair(1000);
        assert!(matches!(
            p.receiver
                .create_payment(&p.lot, Wei::from(1u64), H256::ZERO),
            Err(ChannelError::WrongRole(ChannelRole::Sender))
        ));
        let payment = p
            .sender
            .create_payment(&p.car, Wei::from(1u64), H256::ZERO)
            .unwrap();
        assert!(matches!(
            p.sender.accept_payment(&payment),
            Err(ChannelError::WrongRole(ChannelRole::Receiver))
        ));
    }

    #[test]
    fn deposit_cap_is_enforced_on_both_sides() {
        let mut p = pair(250);
        p.sender
            .create_payment(&p.car, Wei::from(200u64), H256::ZERO)
            .unwrap();
        // Sender-side check.
        assert!(matches!(
            p.sender
                .create_payment(&p.car, Wei::from(100u64), H256::ZERO),
            Err(ChannelError::Payment(PaymentError::ExceedsDeposit { .. }))
        ));
        // Receiver-side check against a hand-crafted over-cap payment.
        let over = SignedPayment::create(
            &p.car,
            Address::from_low_u64(0xAA),
            1,
            9,
            Wei::from(400u64),
            H256::ZERO,
        );
        assert!(matches!(
            p.receiver.accept_payment(&over),
            Err(ChannelError::Payment(PaymentError::ExceedsDeposit { .. }))
        ));
    }

    #[test]
    fn stale_and_shrinking_payments_are_rejected() {
        let mut p = pair(1000);
        let first = p
            .sender
            .create_payment(&p.car, Wei::from(100u64), H256::ZERO)
            .unwrap();
        let second = p
            .sender
            .create_payment(&p.car, Wei::from(100u64), H256::ZERO)
            .unwrap();
        p.receiver.accept_payment(&second).unwrap();
        // Replay of the earlier payment is stale (lower sequence).
        assert!(matches!(
            p.receiver.accept_payment(&first),
            Err(ChannelError::Payment(PaymentError::StaleSequence { .. }))
        ));
        // A forged payment with a higher sequence but lower amount shrinks.
        let shrinking = SignedPayment::create(
            &p.car,
            Address::from_low_u64(0xAA),
            1,
            10,
            Wei::from(50u64),
            H256::ZERO,
        );
        assert!(matches!(
            p.receiver.accept_payment(&shrinking),
            Err(ChannelError::Payment(PaymentError::ShrinkingAmount { .. }))
        ));
    }

    #[test]
    fn payments_from_the_wrong_key_or_channel_are_rejected() {
        let mut p = pair(1000);
        let mallory = PrivateKey::from_seed(b"mallory");
        let forged = SignedPayment::create(
            &mallory,
            Address::from_low_u64(0xAA),
            1,
            1,
            Wei::from(10u64),
            H256::ZERO,
        );
        assert!(matches!(
            p.receiver.accept_payment(&forged),
            Err(ChannelError::Payment(PaymentError::BadSignature))
        ));
        let wrong_channel = SignedPayment::create(
            &p.car,
            Address::from_low_u64(0xAA),
            2,
            1,
            Wei::from(10u64),
            H256::ZERO,
        );
        assert!(matches!(
            p.receiver.accept_payment(&wrong_channel),
            Err(ChannelError::Payment(PaymentError::WrongChannel))
        ));
    }

    #[test]
    fn closing_produces_a_committable_envelope() {
        let mut p = pair(1000);
        let payment = p
            .sender
            .create_payment(&p.car, Wei::from(300u64), H256::from_low_u64(7))
            .unwrap();
        p.receiver.accept_payment(&payment).unwrap();

        let state = p.receiver.close();
        assert_eq!(state.total_to_receiver, Wei::from(300u64));
        assert_eq!(state.sequence, 2); // close advances the clock once more
        assert_eq!(p.receiver.status(), ChannelStatus::Closed);

        let envelope = PaymentChannel::envelope(
            state.clone(),
            PaymentChannel::sign_state(&p.car, &state),
            PaymentChannel::sign_state(&p.lot, &state),
        );
        assert!(envelope
            .verify_parties(&p.car.eth_address(), &p.lot.eth_address())
            .is_ok());

        // No further payments after closing.
        assert!(matches!(
            p.receiver.accept_payment(&payment),
            Err(ChannelError::NotOpen)
        ));
        let mut sender = p.sender;
        sender.close();
        assert!(matches!(
            sender.create_payment(&p.car, Wei::from(1u64), H256::ZERO),
            Err(ChannelError::NotOpen)
        ));
    }

    #[test]
    fn error_display() {
        let errors = vec![
            ChannelError::Payment(PaymentError::BadSignature),
            ChannelError::NotOpen,
            ChannelError::WrongRole(ChannelRole::Sender),
        ];
        for error in errors {
            assert!(!format!("{error}").is_empty());
        }
    }
}
