//! The end-to-end TinyEVM protocol between two devices and the chain.
//!
//! [`ProtocolDriver`] is a thin *pump* around two sans-IO
//! [`ChannelEndpoint`]s (see [`crate::endpoint`]): the paying device (the
//! smart car) and the receiving device (the parking sensor) each run their
//! own protocol state machine, and the driver owns only what neither node
//! may: the simulated main chain, the radio [`Link`], and the pacing of the
//! scenario. Every protocol step is an encoded [`Message`] polled from one
//! endpoint's outbox, moved through the (possibly lossy) link, and fed into
//! the other endpoint — the driver never reaches into a peer's state, so
//! the reported air time, energy and latency derive from real encoded
//! bytes and each node's own device meter:
//!
//! 1. [`ProtocolDriver::publish_template`]: the template goes on-chain with
//!    the sender's deposit (phase 1).
//! 2. [`ProtocolDriver::open_channel`]: the chain registration is observed
//!    by both endpoints, the devices exchange sensor readings and the
//!    channel-open proposal over the link, and each executes the
//!    payment-channel constructor locally (phase 2).
//! 3. [`ProtocolDriver::pay`]: one off-chain payment — sign, transmit,
//!    verify, register on the side-chain, acknowledge (the quantity behind
//!    the paper's "584 ms per payment" and the Figure 5 / Table IV round).
//! 4. [`ProtocolDriver::close_and_settle`]: the sender's endpoint produces
//!    and signs the final state, the receiver's endpoint validates and
//!    counter-signs it, and the chain runs the commit / challenge / exit
//!    machinery (phase 3).
//!
//! [`ProtocolDriver::save_session`] / [`ProtocolDriver::restore_session`]
//! persist the chain and both endpoints to disk so a device can
//! power-cycle mid-session and resume.
//!
//! All timing and energy falls out of the device model; nothing in this
//! module hard-codes the paper's numbers.

use std::path::Path;
use std::time::Duration;

use tinyevm_chain::{Blockchain, Settlement, TemplateConfig};
use tinyevm_crypto::secp256k1::Signature;
use tinyevm_device::{Device, EnergyReport, TimelineEntry};
use tinyevm_net::{Link, LinkConfig, MediumError, NodeAddr, Radio};
use tinyevm_trace::TraceHandle;
use tinyevm_types::{Address, Wei, H256};
use tinyevm_wire::{persist, ChainSnapshot, ChannelSnapshot, EndpointRole, Message, WireError};

use crate::channel::{ChannelRole, PaymentChannel};
use crate::endpoint::{ChannelEndpoint, ChannelRegistration, Effect, EndpointError};
use crate::sidechain::SideChainLog;

/// Errors produced by the protocol driver.
#[derive(Debug)]
#[non_exhaustive]
pub enum ProtocolError {
    /// The chain rejected an operation.
    Chain(tinyevm_chain::ChainError),
    /// A device could not deploy or execute the channel contract.
    Device(String),
    /// The radio link failed to deliver a message.
    Link(tinyevm_net::LinkError),
    /// The shared medium refused or failed an operation (multi-node
    /// scenarios).
    Medium(tinyevm_net::MediumError),
    /// A channel-level rule was violated.
    Channel(crate::channel::ChannelError),
    /// The protocol was driven out of order (e.g. paying before opening).
    OutOfOrder(&'static str),
    /// A signature check failed.
    BadSignature,
    /// A wire message failed to encode or decode.
    Wire(WireError),
    /// The peer sent a structurally valid message of the wrong kind.
    UnexpectedMessage {
        /// What the protocol step expected.
        expected: &'static str,
        /// What actually arrived.
        got: &'static str,
    },
    /// An endpoint rejected an input (unknown peer, proposal mismatch, or
    /// a future endpoint rule).
    Endpoint(EndpointError),
    /// A scheduled crash point fired: the named node power-cycled before
    /// the next message could be conveyed. The driver stays usable; call
    /// [`ProtocolDriver::power_cycle`] for the node and keep going.
    Crashed {
        /// The node the crash schedule targeted.
        node: NodeAddr,
    },
    /// The gateway refuses to run rounds with a quarantined sensor (see
    /// [`crate::gateway::SensorHealth`]).
    Quarantined {
        /// The quarantined sensor.
        sensor: NodeAddr,
    },
}

impl core::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProtocolError::Chain(error) => write!(f, "chain error: {error}"),
            ProtocolError::Device(message) => write!(f, "device error: {message}"),
            ProtocolError::Link(error) => write!(f, "link error: {error}"),
            ProtocolError::Medium(error) => write!(f, "medium error: {error}"),
            ProtocolError::Channel(error) => write!(f, "channel error: {error}"),
            ProtocolError::OutOfOrder(step) => write!(f, "protocol step out of order: {step}"),
            ProtocolError::BadSignature => write!(f, "signature verification failed"),
            ProtocolError::Wire(error) => write!(f, "wire format error: {error}"),
            ProtocolError::UnexpectedMessage { expected, got } => {
                write!(f, "expected a {expected} message, got {got}")
            }
            ProtocolError::Endpoint(error) => write!(f, "endpoint error: {error}"),
            ProtocolError::Crashed { node } => {
                write!(f, "node {node} power-cycled at a scheduled crash point")
            }
            ProtocolError::Quarantined { sensor } => {
                write!(
                    f,
                    "sensor {sensor} is quarantined after repeated violations"
                )
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<tinyevm_chain::ChainError> for ProtocolError {
    fn from(error: tinyevm_chain::ChainError) -> Self {
        ProtocolError::Chain(error)
    }
}

impl From<tinyevm_net::LinkError> for ProtocolError {
    fn from(error: tinyevm_net::LinkError) -> Self {
        ProtocolError::Link(error)
    }
}

impl From<MediumError> for ProtocolError {
    fn from(error: MediumError) -> Self {
        // Point-to-point failures keep their historical variant.
        match error {
            MediumError::Link(link) => ProtocolError::Link(link),
            other => ProtocolError::Medium(other),
        }
    }
}

impl From<crate::channel::ChannelError> for ProtocolError {
    fn from(error: crate::channel::ChannelError) -> Self {
        ProtocolError::Channel(error)
    }
}

impl From<WireError> for ProtocolError {
    fn from(error: WireError) -> Self {
        ProtocolError::Wire(error)
    }
}

impl From<EndpointError> for ProtocolError {
    fn from(error: EndpointError) -> Self {
        // Endpoint rejections that existed before the sans-IO redesign keep
        // their historical driver-level variants; new ones surface as
        // `Endpoint`.
        match error {
            EndpointError::Channel(inner) => ProtocolError::Channel(inner),
            EndpointError::Wire(inner) => ProtocolError::Wire(inner),
            EndpointError::Device(inner) => ProtocolError::Device(inner),
            EndpointError::OutOfOrder(step) => ProtocolError::OutOfOrder(step),
            EndpointError::BadSignature => ProtocolError::BadSignature,
            EndpointError::UnexpectedMessage { expected, got } => {
                ProtocolError::UnexpectedMessage { expected, got }
            }
            other => ProtocolError::Endpoint(other),
        }
    }
}

// --- the shared pump -----------------------------------------------------

/// One radio transfer a pump performed.
#[derive(Debug, Clone)]
pub struct Transfer {
    /// The message kind that moved ([`Message::label`]).
    pub label: &'static str,
    /// Bytes on the air, headers and retransmissions included.
    pub wire_bytes: usize,
}

/// Everything a pump run produced: the endpoints' effects (tagged with the
/// emitting endpoint's address) and the transfers that carried them.
#[derive(Debug, Default)]
pub struct PumpLog {
    /// Effects the endpoints emitted, tagged with the emitting address.
    pub effects: Vec<(NodeAddr, Effect)>,
    /// The radio transfers that carried them.
    pub transfers: Vec<Transfer>,
}

impl PumpLog {
    /// Total wire bytes moved.
    pub fn wire_bytes(&self) -> usize {
        self.transfers.iter().map(|t| t.wire_bytes).sum()
    }

    /// Wire bytes of transfers whose message label is in `labels`.
    pub fn wire_bytes_of(&self, labels: &[&str]) -> usize {
        self.transfers
            .iter()
            .filter(|t| labels.contains(&t.label))
            .map(|t| t.wire_bytes)
            .sum()
    }
}

/// A one-shot crash point: the pump power-fails `target` just before it
/// would convey the `after_message`-th message of the session (counting
/// every message the driver has moved so far, across all phases — so a
/// sweep over `after_message` hits every protocol step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSchedule {
    /// The node that loses power.
    pub target: NodeAddr,
    /// Session-wide conveyed-message count at which the crash fires.
    pub after_message: u64,
}

/// Mutable pump state a driver threads through every [`pump_pair_with`]
/// call: the session-wide conveyed-message counter and the (at most one)
/// pending crash point.
#[derive(Debug, Default)]
pub(crate) struct PumpControl {
    pub crash: Option<CrashSchedule>,
    pub conveyed: u64,
}

/// Shuttles messages between two endpoints over `radio` until both
/// outboxes drain: poll `a`, then `b`, move the envelope, account both
/// sides, feed the decoded bytes to the destination, and apply
/// peer-processing waits to the transmitting side. This is the whole of
/// the drivers' transport logic — the protocol itself lives in the
/// endpoints.
///
/// Faults surface here and are classified, not panicked on:
///
/// * a transport-level [`LinkError`](tinyevm_net::LinkError) hands the
///   transmitter to its retry/backoff machinery
///   ([`ChannelEndpoint::on_transport_error`]); exhausted budgets abort the
///   round with a typed [`EndpointError::RoundAborted`];
/// * undecodable bytes (corruption that survived framing) and stale
///   replayed payments are dropped — the sender's stall-retransmit path
///   recovers the round;
/// * when both outboxes drain with a round still pending (a message
///   vanished whole), the stalled endpoint retransmits with backoff until
///   the round completes or aborts;
/// * a scheduled [`CrashSchedule`] fires *before* the doomed message is
///   polled, so the transmitter keeps it for retransmission after the
///   power cycle.
pub(crate) fn pump_pair<R: Radio>(
    radio: &mut R,
    a: &mut ChannelEndpoint,
    b: &mut ChannelEndpoint,
) -> Result<PumpLog, ProtocolError> {
    pump_pair_with(radio, a, b, &mut PumpControl::default())
}

/// The contention-free single-slot pump: shuttles messages between one
/// endpoint pair until both outboxes drain, exactly as the lockstep
/// drivers do. Public so event-driven fleet schedulers (`tinyevm-sim`)
/// running a contention-free single-slot configuration delegate to the
/// *same* code path as [`GatewayDriver`](crate::GatewayDriver) /
/// [`ProtocolDriver`] — the equivalence tests pin the two byte-identical.
///
/// # Errors
///
/// Same classification as the drivers' pumps: transport errors feed the
/// transmitter's retry machinery, poisoned messages are dropped for the
/// stall-retransmit path to recover, and exhausted retry budgets surface
/// as [`EndpointError::RoundAborted`].
pub fn pump_contention_free<R: Radio>(
    radio: &mut R,
    a: &mut ChannelEndpoint,
    b: &mut ChannelEndpoint,
) -> Result<PumpLog, ProtocolError> {
    pump_pair(radio, a, b)
}

/// [`pump_pair`] with an explicit [`PumpControl`] (crash schedule and
/// session-wide message counter).
pub(crate) fn pump_pair_with<R: Radio>(
    radio: &mut R,
    a: &mut ChannelEndpoint,
    b: &mut ChannelEndpoint,
    control: &mut PumpControl,
) -> Result<PumpLog, ProtocolError> {
    let mut log = PumpLog::default();
    loop {
        if let Some(crash) = control.crash {
            if control.conveyed >= crash.after_message {
                control.crash = None;
                return Err(ProtocolError::Crashed { node: crash.target });
            }
        }
        let (from_a, envelope) = if let Some(envelope) = a.poll_transmit() {
            (true, envelope)
        } else if let Some(envelope) = b.poll_transmit() {
            (false, envelope)
        } else {
            // Both outboxes drained. If a round is still pending on either
            // side, its last message vanished on the air: retransmit with
            // backoff (or abort with a typed error once the budget runs
            // out) instead of returning an incomplete round.
            if a.stalled_round().is_some() {
                a.on_round_stalled()?;
                continue;
            }
            if b.stalled_round().is_some() {
                b.on_round_stalled()?;
                continue;
            }
            break;
        };
        let (tx, rx) = if from_a {
            (&mut *a, &mut *b)
        } else {
            (&mut *b, &mut *a)
        };
        if envelope.to != rx.addr() {
            return Err(ProtocolError::OutOfOrder(
                "envelope addressed to a peer this pump does not serve",
            ));
        }
        let wire = envelope.message.to_wire();
        let (delivered, report) = match radio.convey(tx.addr(), rx.addr(), &wire) {
            Ok(result) => result,
            Err(MediumError::Link(_)) => {
                // The link refused the message (retry budget exhausted,
                // partition window, ...). The transmitter backs off and
                // retransmits; when its budget runs out the round aborts
                // with a typed error and committed state untouched.
                tx.on_transport_error()?;
                continue;
            }
            Err(other) => return Err(other.into()),
        };
        control.conveyed += 1;
        tx.account_transmitted(report.wire_bytes);
        rx.account_received(report.wire_bytes);
        let effects = match rx.handle_wire(tx.addr(), &delivered) {
            Ok(effects) => effects,
            Err(EndpointError::Wire(_)) => {
                // Corruption that survived framing: the bytes reassembled
                // but do not decode. Drop them; the sender's
                // stall-retransmit recovers the round.
                log.transfers.push(Transfer {
                    label: envelope.message.label(),
                    wire_bytes: report.wire_bytes,
                });
                continue;
            }
            Err(EndpointError::Channel(crate::channel::ChannelError::Payment(
                crate::payment::PaymentError::StaleSequence { .. },
            ))) => {
                // A replayed (or crash-recovery-retransmitted) payment the
                // channel already holds. Ignoring it is safe: committed
                // state is monotone and the live round, if any, recovers
                // via stall-retransmit.
                log.transfers.push(Transfer {
                    label: envelope.message.label(),
                    wire_bytes: report.wire_bytes,
                });
                continue;
            }
            Err(EndpointError::BadSignature) => {
                // Bit flips that survive framing *and* RLP can only land in
                // free-form byte strings — signatures and public keys — so
                // the message decodes but fails verification. Treat it as
                // line noise, exactly like a framing error: drop it and let
                // the retransmission machinery re-deliver the original.
                // (Deliberate tampering looks identical on the wire, is
                // equally refused here, and still surfaces as
                // `BadSignature` when the endpoint is driven directly.)
                log.transfers.push(Transfer {
                    label: envelope.message.label(),
                    wire_bytes: report.wire_bytes,
                });
                continue;
            }
            Err(EndpointError::UnexpectedMessage { .. } | EndpointError::OutOfOrder(_)) => {
                // An out-of-phase message: a peer that power-cycled mid
                // round (its RAM dedup state is gone) or an aborted round's
                // straggler retransmits something this endpoint is not
                // waiting for — e.g. a re-sent acknowledgement for a
                // payment the rebooted sender already holds in flash.
                // Dropping it is the sans-IO answer — the live round
                // converges via stall-retransmit or aborts through the
                // retry budget; committed state is untouched either way.
                // (`OutOfOrder` from *local intents* — say, paying while a
                // round is in flight — is raised before the pump runs and
                // still propagates.)
                log.transfers.push(Transfer {
                    label: envelope.message.label(),
                    wire_bytes: report.wire_bytes,
                });
                continue;
            }
            Err(other) => return Err(other.into()),
        };
        log.transfers.push(Transfer {
            label: envelope.message.label(),
            wire_bytes: report.wire_bytes,
        });
        let rx_addr = rx.addr();
        for effect in effects {
            if let Effect::PaymentAccepted { processing, .. } = &effect {
                // The payer idles in LPM2 while the peer verifies,
                // registers and signs; that wait is part of the payment's
                // end-to-end latency (and of the Figure 5 timeline).
                tx.wait(*processing);
            }
            log.effects.push((rx_addr, effect));
        }
    }
    Ok(log)
}

// --- nodes ---------------------------------------------------------------

/// One protocol node: a sans-IO [`ChannelEndpoint`] plus the link-layer
/// address of its counterparty.
#[derive(Debug)]
pub struct OffChainNode {
    endpoint: ChannelEndpoint,
    peer: NodeAddr,
    fallback_log: SideChainLog,
}

impl OffChainNode {
    /// Creates a node with an OpenMote-B class device and a link-layer
    /// address chosen by role (sender = 1, receiver = 2); multi-node
    /// topologies pick explicit addresses via [`OffChainNode::with_addr`].
    pub fn new(name: &str, role: ChannelRole) -> Self {
        let addr = match role {
            ChannelRole::Sender => NodeAddr::new(1),
            ChannelRole::Receiver => NodeAddr::new(2),
        };
        Self::with_addr(name, role, addr)
    }

    /// Creates a node with an explicit link-layer address.
    pub fn with_addr(name: &str, role: ChannelRole, addr: NodeAddr) -> Self {
        let endpoint = match role {
            ChannelRole::Sender => ChannelEndpoint::two_party_sender(name, addr),
            ChannelRole::Receiver => ChannelEndpoint::two_party_receiver(name, addr),
        };
        // Until a driver binds two nodes, assume the conventional
        // counterpart address.
        let peer = match role {
            ChannelRole::Sender => NodeAddr::new(2),
            ChannelRole::Receiver => NodeAddr::new(1),
        };
        OffChainNode {
            endpoint,
            peer,
            fallback_log: SideChainLog::new(H256::ZERO),
        }
    }

    /// The node's protocol state machine.
    pub fn endpoint(&self) -> &ChannelEndpoint {
        &self.endpoint
    }

    /// Mutable access to the protocol state machine.
    pub fn endpoint_mut(&mut self) -> &mut ChannelEndpoint {
        &mut self.endpoint
    }

    /// This node's link-layer address (what goes in the frame headers).
    pub fn node_addr(&self) -> NodeAddr {
        self.endpoint.addr()
    }

    /// The underlying simulated device.
    pub fn device(&self) -> &Device {
        self.endpoint.device()
    }

    /// Mutable access to the device (used by examples to inspect or extend
    /// the sensor registry).
    pub fn device_mut(&mut self) -> &mut Device {
        self.endpoint.device_mut()
    }

    /// This node's payment identity.
    pub fn address(&self) -> Address {
        self.endpoint.account()
    }

    /// This node's role.
    pub fn role(&self) -> ChannelRole {
        self.endpoint.role()
    }

    /// The node's channel endpoint state machine, once opened.
    pub fn channel(&self) -> Option<&PaymentChannel> {
        self.endpoint.channel(self.peer)
    }

    /// Address of the locally deployed payment-channel contract.
    pub fn channel_contract(&self) -> Option<Address> {
        self.endpoint.contract(self.peer)
    }

    /// The node's side-chain log.
    pub fn side_chain(&self) -> &SideChainLog {
        self.endpoint
            .side_chain(self.peer)
            .unwrap_or(&self.fallback_log)
    }

    /// Acknowledgement signatures received from the peer.
    pub fn peer_signatures(&self) -> &[Signature] {
        self.endpoint.peer_acks(self.peer).unwrap_or(&[])
    }

    /// Captures this node's channel endpoint, side-chain log and collected
    /// peer acknowledgements as a wire-format snapshot, or `None` before a
    /// channel is open.
    pub fn snapshot(&self) -> Option<ChannelSnapshot> {
        self.endpoint.snapshot(self.peer)
    }

    /// Restores the channel endpoint, side-chain log and peer
    /// acknowledgements from a snapshot (the node's role must match).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Wire`] for a snapshot whose log does not
    /// verify and [`ProtocolError::OutOfOrder`] for a role mismatch.
    pub fn restore(&mut self, snapshot: &ChannelSnapshot) -> Result<(), ProtocolError> {
        self.endpoint.install_snapshot(self.peer, snapshot)?;
        Ok(())
    }

    /// Rebinds this node to a peer at `new` (drivers call this when wiring
    /// two standalone nodes together).
    fn bind_peer(&mut self, new: NodeAddr) {
        self.endpoint.rekey_peer(self.peer, new);
        self.peer = new;
    }
}

/// Measurements of one channel-opening handshake.
#[derive(Debug, Clone)]
pub struct ChannelOpenReport {
    /// Channel id issued by the template's logical clock.
    pub channel_id: u64,
    /// Time the sender spent executing the channel constructor.
    pub sender_create_time: Duration,
    /// Time the receiver spent executing the channel constructor.
    pub receiver_create_time: Duration,
    /// Bytes exchanged over the radio during the handshake.
    pub bytes_exchanged: usize,
}

/// Measurements of one off-chain payment.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Sequence number of the payment.
    pub sequence: u64,
    /// Cumulative amount owed to the receiver afterwards.
    pub cumulative: Wei,
    /// Wall-clock time from initiating the payment on the sender until the
    /// receiver's acknowledgement arrived back (the "complete an off-chain
    /// payment" latency the paper reports as 584 ms on average).
    pub end_to_end_latency: Duration,
    /// Time the sender's own hardware was active for this payment (crypto +
    /// CPU + radio, excluding the wait for the peer).
    pub sender_active_time: Duration,
    /// Time the sender spent executing the payment-channel contract to
    /// register the payment on its side-chain.
    pub sender_register_time: Duration,
    /// Time the sender spent signing.
    pub sender_sign_time: Duration,
    /// Radio bytes exchanged (both directions).
    pub bytes_exchanged: usize,
}

/// Result of settling the channel on-chain.
#[derive(Debug, Clone)]
pub struct SettlementReport {
    /// The settlement the chain computed.
    pub settlement: Settlement,
    /// Final balance of the sender on-chain.
    pub sender_balance: Wei,
    /// Final balance of the receiver on-chain.
    pub receiver_balance: Wei,
    /// Total payments that were exchanged off-chain.
    pub payments_exchanged: u64,
    /// Number of on-chain transactions the whole session needed.
    pub on_chain_transactions: usize,
}

/// The protocol driver: two sans-IO endpoints, a link and the chain.
///
/// # Example
///
/// ```
/// use tinyevm_channel::ProtocolDriver;
/// use tinyevm_types::Wei;
///
/// let mut driver = ProtocolDriver::smart_parking(Wei::from_eth_milli(100));
/// driver.publish_template().unwrap();
/// driver.open_channel().unwrap();
/// let report = driver.pay(Wei::from_eth_milli(5)).unwrap();
/// assert!(report.end_to_end_latency.as_millis() > 300);
/// let settlement = driver.close_and_settle().unwrap();
/// assert!(!settlement.settlement.fraud_detected);
/// ```
#[derive(Debug)]
pub struct ProtocolDriver {
    chain: Blockchain,
    sender: OffChainNode,
    receiver: OffChainNode,
    link: Link,
    deposit: Wei,
    template: Option<Address>,
    channel_id: Option<u64>,
    tracer: TraceHandle,
    control: PumpControl,
}

impl ProtocolDriver {
    /// The smart-parking setup of the paper: a "smart-car" sender, a
    /// "parking-sensor" receiver, a lossless TSCH link and the given
    /// deposit.
    pub fn smart_parking(deposit: Wei) -> Self {
        Self::smart_parking_with_link(LinkConfig::default(), deposit)
    }

    /// The smart-parking setup over an explicit link configuration (e.g. a
    /// lossy one). The device identities are the same as
    /// [`ProtocolDriver::smart_parking`], so sessions persisted under one
    /// link profile restore under another.
    pub fn smart_parking_with_link(link_config: LinkConfig, deposit: Wei) -> Self {
        Self::new(
            OffChainNode::new("smart-car", ChannelRole::Sender),
            OffChainNode::new("parking-sensor", ChannelRole::Receiver),
            link_config,
            deposit,
        )
    }

    /// Builds a driver from explicit parts.
    pub fn new(
        mut sender: OffChainNode,
        mut receiver: OffChainNode,
        link_config: LinkConfig,
        deposit: Wei,
    ) -> Self {
        let mut chain = Blockchain::new();
        // Genesis allocation: the sender needs funds to lock the deposit.
        chain.fund(sender.address(), deposit.saturating_add(Wei::from_eth(1)));
        let link = Link::between(sender.node_addr(), receiver.node_addr(), link_config);
        sender.bind_peer(receiver.node_addr());
        receiver.bind_peer(sender.node_addr());
        ProtocolDriver {
            chain,
            sender,
            receiver,
            link,
            deposit,
            template: None,
            channel_id: None,
            tracer: TraceHandle::default(),
            control: PumpControl::default(),
        }
    }

    /// Routes the whole session's trace output through `tracer`: both
    /// endpoints (round phases, power states, contract calls), the radio
    /// link (per-frame events, retransmission and loss counters), and the
    /// driver's own per-round latency histogram.
    pub fn set_tracer(&mut self, tracer: TraceHandle) {
        self.sender.endpoint.set_tracer(tracer.clone());
        self.receiver.endpoint.set_tracer(tracer.clone());
        self.link.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Builder form of [`ProtocolDriver::set_tracer`].
    #[must_use]
    pub fn with_tracer(mut self, tracer: TraceHandle) -> Self {
        self.set_tracer(tracer);
        self
    }

    /// The simulated main chain.
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    /// The paying node.
    pub fn sender(&self) -> &OffChainNode {
        &self.sender
    }

    /// The receiving node.
    pub fn receiver(&self) -> &OffChainNode {
        &self.receiver
    }

    /// The template address once published.
    pub fn template(&self) -> Option<Address> {
        self.template
    }

    /// The radio link between the two devices (message and wire-byte
    /// statistics).
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// Adjusts the idle gap inserted between protocol steps.
    pub fn set_idle_gap(&mut self, gap: Duration) {
        self.sender.endpoint.set_idle_gap(gap);
        self.receiver.endpoint.set_idle_gap(gap);
    }

    /// The sender's power-state timeline (Figure 5 raw data).
    pub fn sender_timeline(&self) -> &[TimelineEntry] {
        self.sender.device().timeline()
    }

    /// The sender's energy report (Table IV data).
    pub fn sender_energy(&self) -> EnergyReport {
        self.sender.device().energy_report()
    }

    // --- phase 1 -----------------------------------------------------------

    /// Publishes the template on-chain and locks the deposit.
    ///
    /// # Errors
    ///
    /// Returns a chain error when the deposit cannot be locked.
    pub fn publish_template(&mut self) -> Result<Address, ProtocolError> {
        let config = TemplateConfig {
            sender: self.sender.address(),
            receiver: self.receiver.address(),
            deposit: self.deposit,
            challenge_period_blocks: 10,
        };
        let address = self.chain.publish_template(config)?;
        self.template = Some(address);
        Ok(address)
    }

    // --- phase 2 -----------------------------------------------------------

    /// Opens the off-chain payment channel: both endpoints observe the
    /// chain registration, the devices exchange sensor readings and the
    /// channel-open proposal over the link, and each executes the channel
    /// constructor locally (with its IoT sensor read).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::OutOfOrder`] before the template is
    /// published, or the underlying device / chain / link error.
    pub fn open_channel(&mut self) -> Result<ChannelOpenReport, ProtocolError> {
        let template = self
            .template
            .ok_or(ProtocolError::OutOfOrder("publish_template first"))?;
        let channel_id = self
            .chain
            .create_payment_channel(self.sender.address(), template)?;
        self.channel_id = Some(channel_id);

        // Both endpoints observe the same on-chain registration; the
        // receiver will refuse any proposal that contradicts it.
        let registration = ChannelRegistration {
            template,
            channel_id,
            sender: self.sender.address(),
            receiver: self.receiver.address(),
            deposit_cap: self.deposit,
            anchor: self
                .chain
                .template(&template)
                .map(|t| t.side_chain_root().hash)
                .unwrap_or(H256::ZERO),
        };
        self.receiver
            .endpoint
            .expect_channel(self.sender.node_addr(), registration.clone())?;
        let mut effects: Vec<(NodeAddr, Effect)> = self
            .sender
            .endpoint
            .open(self.receiver.node_addr(), registration)?
            .into_iter()
            .map(|effect| (self.sender.node_addr(), effect))
            .collect();
        let log = self.pump()?;
        effects.extend(log.effects.iter().cloned());

        let create_time_of = |addr: NodeAddr| {
            effects.iter().find_map(|(emitter, effect)| match effect {
                Effect::ChannelOpened { create_time, .. } if *emitter == addr => Some(*create_time),
                _ => None,
            })
        };
        let (Some(sender_create_time), Some(receiver_create_time)) = (
            create_time_of(self.sender.node_addr()),
            create_time_of(self.receiver.node_addr()),
        ) else {
            return Err(ProtocolError::OutOfOrder("open handshake did not complete"));
        };
        Ok(ChannelOpenReport {
            channel_id,
            sender_create_time,
            receiver_create_time,
            bytes_exchanged: log.wire_bytes(),
        })
    }

    // --- off-chain payments --------------------------------------------------

    /// Performs one off-chain payment of `amount` from the sender to the
    /// receiver, measuring the full round.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::OutOfOrder`] before the channel is open, or
    /// the underlying channel / link / signature error.
    pub fn pay(&mut self, amount: Wei) -> Result<RoundReport, ProtocolError> {
        if self.channel_id.is_none() {
            return Err(ProtocolError::OutOfOrder("open_channel first"));
        }
        self.sender
            .endpoint
            .pay(self.receiver.node_addr(), amount)?;
        let log = self.pump()?;
        let receipt = log
            .effects
            .iter()
            .find_map(|(_, effect)| match effect {
                Effect::PaymentCompleted { receipt, .. } => Some(receipt.clone()),
                _ => None,
            })
            .ok_or(ProtocolError::OutOfOrder("payment round did not complete"))?;
        self.tracer.observe(
            "driver.round_latency_ms",
            receipt.end_to_end_latency.as_secs_f64() * 1_000.0,
        );
        Ok(RoundReport {
            sequence: receipt.sequence,
            cumulative: receipt.cumulative,
            end_to_end_latency: receipt.end_to_end_latency,
            sender_active_time: receipt.active_time,
            sender_register_time: receipt.register_time,
            sender_sign_time: receipt.sign_time,
            bytes_exchanged: log.wire_bytes_of(&["payment", "payment-ack"]),
        })
    }

    /// Runs a complete parking session: open a channel (if not already
    /// open), make `payments` payments of `amount`, and return the per-round
    /// reports. This is the workload behind Figure 5 and Table IV.
    ///
    /// # Errors
    ///
    /// Propagates the first error of any step.
    pub fn run_session(
        &mut self,
        payments: usize,
        amount: Wei,
    ) -> Result<Vec<RoundReport>, ProtocolError> {
        if self.template.is_none() {
            self.publish_template()?;
        }
        if self.channel_id.is_none() {
            self.open_channel()?;
        }
        let mut reports = Vec::with_capacity(payments);
        for _ in 0..payments {
            reports.push(self.pay(amount)?);
        }
        Ok(reports)
    }

    // --- phase 3 -----------------------------------------------------------

    /// Closes the channel: the sender's endpoint signs the final state, the
    /// receiver's endpoint validates it against its own channel view and
    /// counter-signs, the dual-signed envelope is committed on-chain, the
    /// challenge period elapses and the deposit is distributed.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::OutOfOrder`] before a channel exists, or the
    /// chain's rejection.
    pub fn close_and_settle(&mut self) -> Result<SettlementReport, ProtocolError> {
        let template = self
            .template
            .ok_or(ProtocolError::OutOfOrder("publish_template first"))?;
        let payments_exchanged = self
            .receiver
            .channel()
            .map(|c| c.payments_seen())
            .unwrap_or(0);

        // The sender initiates the close over the wire; the receiver
        // validates, counter-signs, and hands the driver the envelope.
        self.sender.endpoint.close(self.receiver.node_addr())?;
        self.pump()?;
        let commits = self.receiver.endpoint.finalize_closes()?;
        let Some(Effect::CommitReady { envelope, .. }) = commits.into_iter().next() else {
            return Err(ProtocolError::OutOfOrder(
                "close handshake did not complete",
            ));
        };
        self.chain
            .commit_channel_state(self.receiver.address(), template, &envelope)?;
        self.chain.start_exit(self.receiver.address(), template)?;
        self.chain.advance_blocks(11);
        let settlement = self
            .chain
            .finalize_template(self.receiver.address(), template)?;

        Ok(SettlementReport {
            sender_balance: self.chain.balance(&self.sender.address()),
            receiver_balance: self.chain.balance(&self.receiver.address()),
            settlement,
            payments_exchanged,
            on_chain_transactions: self.chain.transactions().len(),
        })
    }

    // --- persistence --------------------------------------------------------

    /// Snapshot of the simulated main chain's consensus state.
    pub fn chain_snapshot(&self) -> ChainSnapshot {
        ChainSnapshot::capture(&self.chain)
    }

    /// Writes the whole session — chain snapshot plus both channel
    /// endpoints — to a wire-format persistence file.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::OutOfOrder`] before the channel is open and
    /// [`ProtocolError::Wire`] on filesystem failure.
    pub fn save_session(&self, path: &Path) -> Result<(), ProtocolError> {
        let sender = self
            .sender
            .snapshot()
            .ok_or(ProtocolError::OutOfOrder("open_channel first"))?;
        let receiver = self
            .receiver
            .snapshot()
            .ok_or(ProtocolError::OutOfOrder("open_channel first"))?;
        persist::write_messages(
            path,
            &[
                Message::ChainSnapshot(self.chain_snapshot()),
                Message::ChannelSnapshot(sender),
                Message::ChannelSnapshot(receiver),
            ],
        )?;
        Ok(())
    }

    /// Resumes a session from a persistence file written by
    /// [`ProtocolDriver::save_session`]: restores the chain (verified
    /// hash-equal against the snapshot's state root), both channel
    /// endpoints and their side-chain logs, and re-instantiates the local
    /// channel contracts on devices that lost them in the power cycle.
    ///
    /// The whole file is validated before any driver state changes: it
    /// must contain the chain snapshot *and* both endpoint snapshots, the
    /// endpoints must agree on the channel parameters, and the template
    /// they name must exist on the restored chain. A file truncated
    /// mid-write (power loss during the save) or spliced from two
    /// different sessions is rejected as a whole, never half-applied.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Wire`] for unreadable, foreign, tampered,
    /// incomplete or inconsistent files, and a device error when a channel
    /// contract cannot be re-created.
    pub fn restore_session(&mut self, path: &Path) -> Result<(), ProtocolError> {
        // Stage everything first; self is only touched once the file as a
        // whole has been validated.
        let mut chain = None;
        let mut sender_snapshot = None;
        let mut receiver_snapshot = None;
        for message in persist::read_messages(path)? {
            match message {
                Message::ChainSnapshot(snapshot) => {
                    chain = Some(snapshot.restore()?);
                }
                Message::ChannelSnapshot(snapshot) => match snapshot.role {
                    EndpointRole::Sender => sender_snapshot = Some(snapshot),
                    EndpointRole::Receiver => receiver_snapshot = Some(snapshot),
                },
                other => {
                    return Err(ProtocolError::UnexpectedMessage {
                        expected: "snapshot",
                        got: other.label(),
                    })
                }
            }
        }
        let (Some(chain), Some(sender_snapshot), Some(receiver_snapshot)) =
            (chain, sender_snapshot, receiver_snapshot)
        else {
            return Err(ProtocolError::Wire(WireError::Truncated));
        };
        // The two endpoints must describe the same channel, anchored at a
        // template the restored chain actually knows — a file spliced from
        // two different sessions fails here.
        if sender_snapshot.template != receiver_snapshot.template
            || sender_snapshot.channel_id != receiver_snapshot.channel_id
            || sender_snapshot.sender != receiver_snapshot.sender
            || sender_snapshot.receiver != receiver_snapshot.receiver
            || sender_snapshot.deposit_cap != receiver_snapshot.deposit_cap
        {
            return Err(ProtocolError::Wire(WireError::Value(
                "endpoint snapshots describe different channels",
            )));
        }
        if chain.template(&sender_snapshot.template).is_none() {
            return Err(ProtocolError::Wire(WireError::Value(
                "snapshot template is not on the restored chain",
            )));
        }
        // The session must belong to *these* devices — restoring someone
        // else's snapshot would leave channels whose configured parties
        // can never produce valid signatures.
        if sender_snapshot.sender != self.sender.address()
            || sender_snapshot.receiver != self.receiver.address()
        {
            return Err(ProtocolError::Wire(WireError::Value(
                "snapshot belongs to different device identities",
            )));
        }
        // Decode both endpoints (side-chain logs re-verified) before any
        // commit.
        PaymentChannel::restore(&sender_snapshot)?;
        PaymentChannel::restore(&receiver_snapshot)?;

        // Commit.
        self.chain = chain;
        self.template = Some(sender_snapshot.template);
        self.channel_id = Some(sender_snapshot.channel_id);
        self.sender.restore(&sender_snapshot)?;
        self.receiver.restore(&receiver_snapshot)?;
        // Devices that lost their contract world in the power cycle
        // re-instantiate the off-chain contract from the template.
        let receiver_addr = self.receiver.node_addr();
        let sender_addr = self.sender.node_addr();
        self.sender.endpoint.ensure_contract(receiver_addr)?;
        self.receiver.endpoint.ensure_contract(sender_addr)?;
        Ok(())
    }

    // --- fault injection ----------------------------------------------------

    /// Installs a fault plan on the link (corruption, duplication,
    /// reordering, replay, delay windows, partitions — see
    /// [`tinyevm_net::FaultConfig`]).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Link`] for a configuration with an invalid
    /// rate.
    pub fn set_link_faults(
        &mut self,
        config: tinyevm_net::FaultConfig,
    ) -> Result<(), ProtocolError> {
        self.link.set_faults(config)?;
        Ok(())
    }

    /// Removes any installed fault plan from the link.
    pub fn clear_link_faults(&mut self) {
        self.link.clear_faults();
    }

    /// Configures the retry/backoff policy of both endpoints.
    pub fn set_retry_policy(&mut self, policy: crate::endpoint::RetryPolicy) {
        self.sender.endpoint.set_retry_policy(policy);
        self.receiver.endpoint.set_retry_policy(policy);
    }

    /// Arms a one-shot crash point: the next pump run returns
    /// [`ProtocolError::Crashed`] when the session-wide conveyed-message
    /// counter (see [`ProtocolDriver::messages_conveyed`]) reaches
    /// `crash.after_message`. At most one crash is armed at a time.
    pub fn schedule_crash(&mut self, crash: CrashSchedule) {
        self.control.crash = Some(crash);
    }

    /// Messages the driver has conveyed over the link so far, across all
    /// protocol phases (the clock [`CrashSchedule::after_message`] runs
    /// on).
    pub fn messages_conveyed(&self) -> u64 {
        self.control.conveyed
    }

    /// Power-cycles one node mid-session: volatile state (outbox, pending
    /// round, retransmission slot, duplicate-suppression cache) is lost,
    /// while committed state — the channel, the side-chain log and the
    /// collected acknowledgements, which live in flash via the snapshot
    /// machinery — survives and is re-installed. The peer's
    /// stall-retransmit plus the channel's gap tolerance then reconverge
    /// the session.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::OutOfOrder`] for an address that is
    /// neither node, and the underlying error when the committed state
    /// cannot be re-installed.
    pub fn power_cycle(&mut self, node: NodeAddr) -> Result<(), ProtocolError> {
        let (target, peer) = if node == self.sender.node_addr() {
            (&mut self.sender, self.receiver.endpoint.addr())
        } else if node == self.receiver.node_addr() {
            (&mut self.receiver, self.sender.endpoint.addr())
        } else {
            return Err(ProtocolError::OutOfOrder(
                "power_cycle targets a node this driver does not own",
            ));
        };
        let snapshot = target.endpoint.snapshot(peer);
        target.endpoint.clear_volatile();
        if let Some(snapshot) = snapshot {
            target.endpoint.install_snapshot(peer, &snapshot)?;
            target.endpoint.ensure_contract(peer)?;
        }
        Ok(())
    }

    /// Pumps any interrupted round to completion (or to a typed abort)
    /// without starting new work — what a harness calls after
    /// [`ProtocolDriver::power_cycle`] to let the surviving node's
    /// retransmissions reconverge the session before the next payment.
    ///
    /// # Errors
    ///
    /// Propagates a typed [`EndpointError::RoundAborted`] when the
    /// interrupted round's retry budget runs out, and any other pump
    /// error.
    pub fn resume(&mut self) -> Result<(), ProtocolError> {
        self.pump()?;
        Ok(())
    }

    // --- internals ----------------------------------------------------------

    /// Drains both endpoints' outboxes through the link.
    fn pump(&mut self) -> Result<PumpLog, ProtocolError> {
        pump_pair_with(
            &mut self.link,
            &mut self.sender.endpoint,
            &mut self.receiver.endpoint,
            &mut self.control,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyevm_device::PowerState;
    use tinyevm_trace::TraceEvent;
    use tinyevm_types::U256;

    fn driver() -> ProtocolDriver {
        ProtocolDriver::smart_parking(Wei::from(1_000_000u64))
    }

    #[test]
    fn template_must_be_published_before_opening() {
        let mut d = driver();
        assert!(matches!(
            d.open_channel(),
            Err(ProtocolError::OutOfOrder(_))
        ));
        assert!(matches!(
            d.pay(Wei::from(1u64)),
            Err(ProtocolError::OutOfOrder(_))
        ));
        assert!(matches!(
            d.close_and_settle(),
            Err(ProtocolError::OutOfOrder(_))
        ));
    }

    #[test]
    fn publish_template_locks_the_deposit() {
        let mut d = driver();
        let before = d.chain().balance(&d.sender().address());
        let template = d.publish_template().unwrap();
        assert!(d.chain().template(&template).is_some());
        let after = d.chain().balance(&d.sender().address());
        assert_eq!(before.checked_sub(after).unwrap(), Wei::from(1_000_000u64));
    }

    #[test]
    fn open_channel_deploys_the_contract_on_both_devices() {
        let mut d = driver();
        d.publish_template().unwrap();
        let report = d.open_channel().unwrap();
        assert_eq!(report.channel_id, 1);
        assert!(report.sender_create_time > Duration::from_millis(5));
        assert!(report.bytes_exchanged > 0);
        assert!(d.sender().channel().is_some());
        assert!(d.receiver().channel().is_some());
        let contract = d.sender().channel_contract().unwrap();
        assert!(!d.sender().device().world().code_of(&contract).is_empty());
        // The constructor stored the IoT sensor reading in slot 0x0C.
        assert_eq!(
            d.sender()
                .device()
                .world()
                .storage_of(&contract, U256::from(crate::contracts::SLOT_SENSOR as u64)),
            U256::from(2150u64)
        );
    }

    #[test]
    fn a_payment_round_produces_paper_scale_numbers() {
        let mut d = driver();
        let reports = d.run_session(1, Wei::from(5_000u64)).unwrap();
        let report = &reports[0];
        assert_eq!(report.sequence, 1);
        assert_eq!(report.cumulative, Wei::from(5_000u64));
        // Crypto dominates: the sender signs for 355 ms, so the end-to-end
        // latency sits in the high hundreds of milliseconds — the same
        // regime as the paper's 584 ms average.
        assert!(report.sender_sign_time >= Duration::from_millis(355));
        assert!(report.end_to_end_latency > Duration::from_millis(400));
        assert!(report.end_to_end_latency < Duration::from_secs(2));
        assert!(report.sender_active_time < report.end_to_end_latency);
        assert!(report.bytes_exchanged > 100);

        // Both side-chain logs recorded the payment and still verify.
        assert_eq!(d.sender().side_chain().len(), 1);
        assert_eq!(d.receiver().side_chain().len(), 1);
        assert!(d.sender().side_chain().verify());
        assert!(d.receiver().side_chain().verify());
        assert_eq!(d.sender().peer_signatures().len(), 1);
    }

    #[test]
    fn energy_split_matches_table_four_shape() {
        let mut d = driver();
        d.run_session(1, Wei::from(1_000u64)).unwrap();
        let report = d.sender_energy();
        // The crypto engine is the dominant consumer (paper: ~65%).
        let crypto_share = report.share_of(PowerState::CryptoEngine);
        assert!(crypto_share > 0.4, "crypto share too small: {crypto_share}");
        // Radio and CPU are minor contributors.
        assert!(report.share_of(PowerState::Tx) < 0.2);
        assert!(report.share_of(PowerState::Rx) < 0.2);
        // Total energy per round is tens of millijoules, as in Table IV.
        assert!(report.total_energy_mj() > 5.0);
        assert!(report.total_energy_mj() < 120.0);
        // The timeline contains crypto, radio, CPU and sleep states.
        let timeline = d.sender_timeline();
        assert!(timeline.iter().any(|e| e.state == PowerState::CryptoEngine));
        assert!(timeline.iter().any(|e| e.state == PowerState::Tx));
        assert!(timeline.iter().any(|e| e.state == PowerState::Rx));
        assert!(timeline.iter().any(|e| e.state == PowerState::Lpm2));
    }

    #[test]
    fn multiple_payments_accumulate_and_settle() {
        let mut d = driver();
        let reports = d.run_session(5, Wei::from(10_000u64)).unwrap();
        assert_eq!(reports.len(), 5);
        assert_eq!(reports[4].sequence, 5);
        assert_eq!(reports[4].cumulative, Wei::from(50_000u64));

        let settlement = d.close_and_settle().unwrap();
        assert!(!settlement.settlement.fraud_detected);
        assert_eq!(settlement.settlement.to_receiver, Wei::from(50_000u64));
        assert_eq!(settlement.payments_exchanged, 5);
        assert_eq!(
            settlement.receiver_balance,
            Wei::from(50_000u64),
            "receiver is paid exactly the cumulative amount"
        );
        // The sender got the unspent deposit back (1_000_000 - 50_000),
        // plus its remaining genesis funds.
        assert!(settlement.sender_balance >= Wei::from(950_000u64));
        // The whole session needed only a handful of on-chain transactions.
        assert!(settlement.on_chain_transactions <= 6);
    }

    #[test]
    fn overspending_the_deposit_is_refused_off_chain() {
        let mut d = ProtocolDriver::smart_parking(Wei::from(1_000u64));
        d.publish_template().unwrap();
        d.open_channel().unwrap();
        d.pay(Wei::from(800u64)).unwrap();
        let error = d.pay(Wei::from(800u64)).unwrap_err();
        assert!(matches!(error, ProtocolError::Channel(_)));
    }

    #[test]
    fn every_protocol_step_is_a_wire_message() {
        let mut d = driver();
        d.run_session(2, Wei::from(1_000u64)).unwrap();
        d.close_and_settle().unwrap();
        // Messages on the link: 2 sensor readings + 1 channel-open at
        // opening, then (2 readings + payment + ack) per payment, then the
        // close request. All of them real encoded transfers.
        assert_eq!(d.link().total_messages(), 3 + 2 * 4 + 1);
        assert!(d.link().total_wire_bytes() > 0);
    }

    #[test]
    fn session_survives_a_lossy_link() {
        let config = LinkConfig::default().with_loss(0.2, 42);
        let mut d = ProtocolDriver::smart_parking_with_link(config, Wei::from(1_000_000u64));
        let reports = d.run_session(3, Wei::from(10_000u64)).unwrap();
        assert_eq!(reports.len(), 3);
        let settlement = d.close_and_settle().unwrap();
        assert_eq!(settlement.settlement.to_receiver, Wei::from(30_000u64));
        assert!(!settlement.settlement.fraud_detected);
    }

    #[test]
    fn session_resumes_from_a_snapshot_file_after_power_cycle() {
        let mut path = std::env::temp_dir();
        path.push(format!("tinyevm-session-{}.snap", std::process::id()));

        // First life: open a channel, make two payments, persist.
        let mut d = driver();
        d.run_session(2, Wei::from(5_000u64)).unwrap();
        let chain_root_before = d.chain().state_root();
        d.save_session(&path).unwrap();

        // Power cycle: a brand-new driver (same device identities), resumed
        // from disk.
        let mut resumed = driver();
        resumed.restore_session(&path).unwrap();
        assert_eq!(
            resumed.chain().state_root(),
            chain_root_before,
            "restored chain is hash-identical"
        );
        assert_eq!(
            resumed.sender().snapshot().unwrap(),
            d.sender().snapshot().unwrap(),
            "restored sender endpoint is identical"
        );
        assert!(resumed.receiver().side_chain().verify());

        // The session continues where it left off...
        let report = resumed.pay(Wei::from(5_000u64)).unwrap();
        assert_eq!(report.sequence, 3);
        assert_eq!(report.cumulative, Wei::from(15_000u64));
        // ...and settles for all three payments.
        let settlement = resumed.close_and_settle().unwrap();
        assert_eq!(settlement.settlement.to_receiver, Wei::from(15_000u64));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn incomplete_session_file_is_rejected_whole() {
        // A save interrupted by the power loss itself: only the chain
        // snapshot made it to disk. Restore must refuse rather than leave
        // the driver half-initialized.
        let mut path = std::env::temp_dir();
        path.push(format!("tinyevm-partial-{}.snap", std::process::id()));
        let mut d = driver();
        d.run_session(1, Wei::from(1_000u64)).unwrap();
        tinyevm_wire::persist::write_messages(&path, &[Message::ChainSnapshot(d.chain_snapshot())])
            .unwrap();
        let mut resumed = driver();
        assert!(matches!(
            resumed.restore_session(&path),
            Err(ProtocolError::Wire(tinyevm_wire::WireError::Truncated))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_device_snapshot_is_rejected() {
        let mut path = std::env::temp_dir();
        path.push(format!("tinyevm-foreign-{}.snap", std::process::id()));
        let mut d = driver();
        d.run_session(1, Wei::from(1_000u64)).unwrap();
        d.save_session(&path).unwrap();
        // A driver with different device identities must refuse the file
        // outright instead of restoring channels it can never sign for.
        let mut other = ProtocolDriver::new(
            OffChainNode::new("other-car", ChannelRole::Sender),
            OffChainNode::new("other-sensor", ChannelRole::Receiver),
            LinkConfig::default(),
            Wei::from(1_000_000u64),
        );
        assert!(matches!(
            other.restore_session(&path),
            Err(ProtocolError::Wire(tinyevm_wire::WireError::Value(_)))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tampered_session_file_is_rejected() {
        let mut path = std::env::temp_dir();
        path.push(format!("tinyevm-tampered-{}.snap", std::process::id()));
        let mut d = driver();
        d.run_session(1, Wei::from(1_000u64)).unwrap();
        d.save_session(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let mut resumed = driver();
        assert!(matches!(
            resumed.restore_session(&path),
            Err(ProtocolError::Wire(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn a_traced_session_captures_rounds_phases_and_power() {
        let tracer = tinyevm_trace::TraceHandle::recording(8192);
        let mut d =
            ProtocolDriver::smart_parking(Wei::from(1_000_000u64)).with_tracer(tracer.clone());
        d.run_session(2, Wei::from(1_000u64)).unwrap();
        d.close_and_settle().unwrap();
        let snapshot = tracer.snapshot().unwrap();

        // Two completed rounds, each with reading/payment/ack phases on the
        // sender and a payment phase on the receiver, plus the close.
        assert_eq!(snapshot.events_of_kind("Round").count(), 2);
        let phases: Vec<&TraceEvent> = snapshot.events_of_kind("Phase").collect();
        assert!(phases.len() > 2 * 4, "got {} phases", phases.len());
        assert!(phases
            .iter()
            .any(|e| matches!(e, TraceEvent::Phase { phase, .. } if phase == "close")));
        // The device meters and the link reported through the same handle.
        assert!(snapshot.events_of_kind("Power").next().is_some());
        assert!(snapshot.events_of_kind("FrameTx").next().is_some());
        assert!(snapshot.events_of_kind("ContractCall").next().is_some());

        // Round latencies landed in both histograms, in the paper's regime.
        for name in ["channel.round_latency_ms", "driver.round_latency_ms"] {
            let histogram = snapshot.metrics.histogram(name).unwrap();
            assert_eq!(histogram.count(), 2);
            let p50 = histogram.p50().unwrap();
            assert!(p50 > 300.0, "{name} p50 {p50}");
        }
        // The balance gauges track the cumulative amount on both sides.
        let balances: Vec<(&str, f64)> = snapshot
            .metrics
            .gauges()
            .filter(|(name, _)| name.starts_with("channel.cumulative_wei."))
            .collect();
        assert_eq!(balances.len(), 2, "one gauge per endpoint's peer");
        assert!(balances.iter().all(|(_, value)| *value == 2_000.0));
        // Lossless link: frames were counted, nothing retransmitted.
        assert!(snapshot.metrics.counter("net.frames_tx") > 0);
        assert_eq!(snapshot.metrics.counter("net.frames_lost"), 0);
    }

    #[test]
    fn an_untraced_session_is_byte_identical_to_a_traced_one() {
        let run = |traced: bool| {
            let mut d = ProtocolDriver::smart_parking(Wei::from(1_000_000u64));
            if traced {
                d.set_tracer(tinyevm_trace::TraceHandle::recording(4096));
            }
            let reports = d.run_session(2, Wei::from(1_000u64)).unwrap();
            let settlement = d.close_and_settle().unwrap();
            (
                reports
                    .iter()
                    .map(|r| (r.sequence, r.end_to_end_latency, r.bytes_exchanged))
                    .collect::<Vec<_>>(),
                d.chain().state_root(),
                settlement.settlement.to_receiver,
                d.sender_energy().total_energy_mj().to_bits(),
            )
        };
        assert_eq!(run(false), run(true), "tracing must not perturb the run");
    }

    #[test]
    fn a_closing_partition_window_is_ridden_out_by_retransmission() {
        use tinyevm_net::{FaultConfig, MessageWindow};
        let mut d = driver();
        d.run_session(1, Wei::from(5_000u64)).unwrap();
        // Silence the link for the next three messages; the endpoints'
        // backoff retransmissions pick the round up when the window ends.
        let conveyed = d.messages_conveyed();
        d.set_link_faults(FaultConfig {
            partition: Some(MessageWindow {
                from_message: conveyed,
                to_message: conveyed + 3,
            }),
            ..FaultConfig::quiet(9)
        })
        .unwrap();
        let report = d.pay(Wei::from(5_000u64)).unwrap();
        assert_eq!(report.sequence, 2);
        let settlement = d.close_and_settle().unwrap();
        assert_eq!(settlement.settlement.to_receiver, Wei::from(10_000u64));
    }

    #[test]
    fn a_permanent_partition_aborts_the_round_with_committed_state_intact() {
        use tinyevm_net::{FaultConfig, MessageWindow};
        let mut d = driver();
        d.run_session(1, Wei::from(5_000u64)).unwrap();
        let committed = d.receiver().channel().unwrap().cumulative();
        d.set_link_faults(FaultConfig {
            partition: Some(MessageWindow {
                from_message: 0,
                to_message: u64::MAX,
            }),
            ..FaultConfig::quiet(9)
        })
        .unwrap();
        let error = d.pay(Wei::from(5_000u64)).unwrap_err();
        assert!(matches!(
            error,
            ProtocolError::Endpoint(EndpointError::RoundAborted { attempts: 5, .. })
        ));
        // Committed state on both sides is exactly what it was before.
        assert_eq!(d.receiver().channel().unwrap().cumulative(), committed);
        assert_eq!(d.receiver().side_chain().len(), 1);
        // The round died in the reading exchange, before anything was
        // signed: once the link heals the session simply continues, and
        // settles for exactly what was actually paid.
        d.clear_link_faults();
        let report = d.pay(Wei::from(5_000u64)).unwrap();
        assert_eq!(report.cumulative, Wei::from(10_000u64));
        let settlement = d.close_and_settle().unwrap();
        assert_eq!(settlement.settlement.to_receiver, Wei::from(10_000u64));
        assert!(!settlement.settlement.fraud_detected);
    }

    #[test]
    fn a_scheduled_crash_power_cycles_and_the_session_reconverges() {
        let mut d = driver();
        d.run_session(1, Wei::from(5_000u64)).unwrap();
        let receiver_addr = d.receiver().node_addr();
        let snapshot_before = d.receiver().snapshot().unwrap();
        d.schedule_crash(CrashSchedule {
            target: receiver_addr,
            after_message: d.messages_conveyed() + 2,
        });
        let error = d.pay(Wei::from(5_000u64)).unwrap_err();
        assert!(matches!(
            error,
            ProtocolError::Crashed { node } if node == receiver_addr
        ));
        d.power_cycle(receiver_addr).unwrap();
        // Committed flash state survived the power cycle byte-for-byte...
        // except for whatever the interrupted round already committed,
        // which must be a superset, never a regression.
        let snapshot_after = d.receiver().snapshot().unwrap();
        assert!(
            snapshot_after.log.len() >= snapshot_before.log.len(),
            "power cycle must never lose committed payments"
        );
        // ...the surviving sender finishes the interrupted round...
        d.resume().unwrap();
        // ...and the next payment reconverges both sides.
        let report = d.pay(Wei::from(5_000u64)).unwrap();
        assert_eq!(report.cumulative, Wei::from(15_000u64));
        let settlement = d.close_and_settle().unwrap();
        assert_eq!(settlement.settlement.to_receiver, Wei::from(15_000u64));
    }

    #[test]
    fn a_tampered_close_request_is_refused_by_the_receiver() {
        // An adversarial sender cannot settle for more than it paid: a
        // close request whose state disagrees with the receiver's channel
        // view is rejected before any signature is produced.
        let mut d = driver();
        d.run_session(1, Wei::from(5_000u64)).unwrap();
        let key = *d.sender().device().private_key();
        let mut state = d.sender().channel().unwrap().closing_state();
        state.total_to_receiver = Wei::from(900_000u64);
        let forged = tinyevm_wire::CloseRequest {
            signature: key.sign_prehashed(&state.digest()),
            public_key: key.public_key(),
            state,
        };
        let sender_addr = d.sender().node_addr();
        let error = d
            .receiver
            .endpoint_mut()
            .handle_message(sender_addr, Message::CloseRequest(forged))
            .unwrap_err();
        assert!(matches!(error, EndpointError::ProposalMismatch(_)));
        // The channel is still open and the honest close still settles.
        let settlement = d.close_and_settle().unwrap();
        assert_eq!(settlement.settlement.to_receiver, Wei::from(5_000u64));
    }
}
