//! The end-to-end TinyEVM protocol between two devices and the chain.
//!
//! [`ProtocolDriver`] owns the three actors of the paper's Figure 2 — the
//! paying device (the smart car), the receiving device (the parking sensor)
//! and the main chain — plus the radio link between the devices, and runs
//! the protocol:
//!
//! 1. [`ProtocolDriver::publish_template`]: the template goes on-chain with
//!    the sender's deposit (phase 1).
//! 2. [`ProtocolDriver::open_channel`]: the devices exchange sensor data and
//!    each executes the payment-channel constructor locally — including the
//!    IoT-opcode sensor read — creating the off-chain channel (phase 2).
//! 3. [`ProtocolDriver::pay`]: one off-chain payment — sign, transmit,
//!    verify, register on the side-chain, acknowledge (the quantity behind
//!    the paper's "584 ms per payment" and the Figure 5 / Table IV round).
//! 4. [`ProtocolDriver::close_and_settle`]: the channel closes, both parties
//!    sign the final state, it is committed on-chain, the challenge period
//!    elapses and the deposit is distributed (phase 3).
//!
//! All timing and energy falls out of the device model; nothing in this
//! module hard-codes the paper's numbers.

use std::time::Duration;

use tinyevm_chain::{Blockchain, Settlement, TemplateConfig};
use tinyevm_crypto::secp256k1::Signature;
use tinyevm_device::{Device, EnergyReport, RadioDirection, TimelineEntry};
use tinyevm_net::{Link, LinkConfig};
use tinyevm_types::{Address, Wei, H256, U256};

use crate::channel::{ChannelConfig, ChannelRole, PaymentChannel};
use crate::contracts;
use crate::payment::SignedPayment;
use crate::sidechain::SideChainLog;

/// Errors produced by the protocol driver.
#[derive(Debug)]
pub enum ProtocolError {
    /// The chain rejected an operation.
    Chain(tinyevm_chain::ChainError),
    /// A device could not deploy or execute the channel contract.
    Device(String),
    /// The radio link failed to deliver a message.
    Link(tinyevm_net::LinkError),
    /// A channel-level rule was violated.
    Channel(crate::channel::ChannelError),
    /// The protocol was driven out of order (e.g. paying before opening).
    OutOfOrder(&'static str),
    /// A signature check failed.
    BadSignature,
}

impl core::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProtocolError::Chain(error) => write!(f, "chain error: {error}"),
            ProtocolError::Device(message) => write!(f, "device error: {message}"),
            ProtocolError::Link(error) => write!(f, "link error: {error}"),
            ProtocolError::Channel(error) => write!(f, "channel error: {error}"),
            ProtocolError::OutOfOrder(step) => write!(f, "protocol step out of order: {step}"),
            ProtocolError::BadSignature => write!(f, "signature verification failed"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<tinyevm_chain::ChainError> for ProtocolError {
    fn from(error: tinyevm_chain::ChainError) -> Self {
        ProtocolError::Chain(error)
    }
}

impl From<tinyevm_net::LinkError> for ProtocolError {
    fn from(error: tinyevm_net::LinkError) -> Self {
        ProtocolError::Link(error)
    }
}

impl From<crate::channel::ChannelError> for ProtocolError {
    fn from(error: crate::channel::ChannelError) -> Self {
        ProtocolError::Channel(error)
    }
}

/// One protocol endpoint: a device plus its channel bookkeeping.
#[derive(Debug)]
pub struct OffChainNode {
    device: Device,
    role: ChannelRole,
    channel: Option<PaymentChannel>,
    channel_contract: Option<Address>,
    log: SideChainLog,
    peer_signatures: Vec<Signature>,
}

impl OffChainNode {
    /// Creates a node with an OpenMote-B class device.
    pub fn new(name: &str, role: ChannelRole) -> Self {
        OffChainNode {
            device: Device::openmote_b(name),
            role,
            channel: None,
            channel_contract: None,
            log: SideChainLog::new(H256::ZERO),
            peer_signatures: Vec::new(),
        }
    }

    /// The underlying simulated device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mutable access to the device (used by examples to inspect or extend
    /// the sensor registry).
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// This node's payment identity.
    pub fn address(&self) -> Address {
        self.device.address()
    }

    /// This node's role.
    pub fn role(&self) -> ChannelRole {
        self.role
    }

    /// The node's channel endpoint, once opened.
    pub fn channel(&self) -> Option<&PaymentChannel> {
        self.channel.as_ref()
    }

    /// Address of the locally deployed payment-channel contract.
    pub fn channel_contract(&self) -> Option<Address> {
        self.channel_contract
    }

    /// The node's side-chain log.
    pub fn side_chain(&self) -> &SideChainLog {
        &self.log
    }

    /// Acknowledgement signatures received from the peer.
    pub fn peer_signatures(&self) -> &[Signature] {
        &self.peer_signatures
    }
}

/// Measurements of one channel-opening handshake.
#[derive(Debug, Clone)]
pub struct ChannelOpenReport {
    /// Channel id issued by the template's logical clock.
    pub channel_id: u64,
    /// Time the sender spent executing the channel constructor.
    pub sender_create_time: Duration,
    /// Time the receiver spent executing the channel constructor.
    pub receiver_create_time: Duration,
    /// Bytes exchanged over the radio during the handshake.
    pub bytes_exchanged: usize,
}

/// Measurements of one off-chain payment.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Sequence number of the payment.
    pub sequence: u64,
    /// Cumulative amount owed to the receiver afterwards.
    pub cumulative: Wei,
    /// Wall-clock time from initiating the payment on the sender until the
    /// receiver's acknowledgement arrived back (the "complete an off-chain
    /// payment" latency the paper reports as 584 ms on average).
    pub end_to_end_latency: Duration,
    /// Time the sender's own hardware was active for this payment (crypto +
    /// CPU + radio, excluding the wait for the peer).
    pub sender_active_time: Duration,
    /// Time the sender spent executing the payment-channel contract to
    /// register the payment on its side-chain.
    pub sender_register_time: Duration,
    /// Time the sender spent signing.
    pub sender_sign_time: Duration,
    /// Radio bytes exchanged (both directions).
    pub bytes_exchanged: usize,
}

/// Result of settling the channel on-chain.
#[derive(Debug, Clone)]
pub struct SettlementReport {
    /// The settlement the chain computed.
    pub settlement: Settlement,
    /// Final balance of the sender on-chain.
    pub sender_balance: Wei,
    /// Final balance of the receiver on-chain.
    pub receiver_balance: Wei,
    /// Total payments that were exchanged off-chain.
    pub payments_exchanged: u64,
    /// Number of on-chain transactions the whole session needed.
    pub on_chain_transactions: usize,
}

/// The protocol driver: two devices, a link and the chain.
///
/// # Example
///
/// ```
/// use tinyevm_channel::ProtocolDriver;
/// use tinyevm_types::Wei;
///
/// let mut driver = ProtocolDriver::smart_parking(Wei::from_eth_milli(100));
/// driver.publish_template().unwrap();
/// driver.open_channel().unwrap();
/// let report = driver.pay(Wei::from_eth_milli(5)).unwrap();
/// assert!(report.end_to_end_latency.as_millis() > 300);
/// let settlement = driver.close_and_settle().unwrap();
/// assert!(!settlement.settlement.fraud_detected);
/// ```
#[derive(Debug)]
pub struct ProtocolDriver {
    chain: Blockchain,
    sender: OffChainNode,
    receiver: OffChainNode,
    link: Link,
    deposit: Wei,
    template: Option<Address>,
    channel_id: Option<u64>,
    /// Idle gap inserted between protocol steps (TSCH slot waiting /
    /// application pacing); spent in LPM2.
    idle_gap: Duration,
}

impl ProtocolDriver {
    /// The smart-parking setup of the paper: a "smart-car" sender, a
    /// "parking-sensor" receiver, a lossless TSCH link and the given
    /// deposit.
    pub fn smart_parking(deposit: Wei) -> Self {
        Self::new(
            OffChainNode::new("smart-car", ChannelRole::Sender),
            OffChainNode::new("parking-sensor", ChannelRole::Receiver),
            LinkConfig::default(),
            deposit,
        )
    }

    /// Builds a driver from explicit parts.
    pub fn new(
        sender: OffChainNode,
        receiver: OffChainNode,
        link_config: LinkConfig,
        deposit: Wei,
    ) -> Self {
        let mut chain = Blockchain::new();
        // Genesis allocation: the sender needs funds to lock the deposit.
        chain.fund(sender.address(), deposit.saturating_add(Wei::from_eth(1)));
        ProtocolDriver {
            chain,
            sender,
            receiver,
            link: Link::new(link_config),
            deposit,
            template: None,
            channel_id: None,
            idle_gap: Duration::from_millis(120),
        }
    }

    /// The simulated main chain.
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    /// The paying node.
    pub fn sender(&self) -> &OffChainNode {
        &self.sender
    }

    /// The receiving node.
    pub fn receiver(&self) -> &OffChainNode {
        &self.receiver
    }

    /// The template address once published.
    pub fn template(&self) -> Option<Address> {
        self.template
    }

    /// Adjusts the idle gap inserted between protocol steps.
    pub fn set_idle_gap(&mut self, gap: Duration) {
        self.idle_gap = gap;
    }

    /// The sender's power-state timeline (Figure 5 raw data).
    pub fn sender_timeline(&self) -> &[TimelineEntry] {
        self.sender.device.timeline()
    }

    /// The sender's energy report (Table IV data).
    pub fn sender_energy(&self) -> EnergyReport {
        self.sender.device.energy_report()
    }

    // --- phase 1 -----------------------------------------------------------

    /// Publishes the template on-chain and locks the deposit.
    ///
    /// # Errors
    ///
    /// Returns a chain error when the deposit cannot be locked.
    pub fn publish_template(&mut self) -> Result<Address, ProtocolError> {
        let config = TemplateConfig {
            sender: self.sender.address(),
            receiver: self.receiver.address(),
            deposit: self.deposit,
            challenge_period_blocks: 10,
        };
        let address = self.chain.publish_template(config)?;
        self.template = Some(address);
        Ok(address)
    }

    // --- phase 2 -----------------------------------------------------------

    /// Opens the off-chain payment channel: the devices exchange sensor
    /// data, each executes the channel constructor locally (with its IoT
    /// sensor read), and the template's logical clock issues the channel id.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::OutOfOrder`] before the template is
    /// published, or the underlying device / chain / link error.
    pub fn open_channel(&mut self) -> Result<ChannelOpenReport, ProtocolError> {
        let template = self
            .template
            .ok_or(ProtocolError::OutOfOrder("publish_template first"))?;
        let channel_id = self
            .chain
            .create_payment_channel(self.sender.address(), template)?;
        self.channel_id = Some(channel_id);

        // Sensor-data exchange (paper: "the nodes exchange their data").
        let sender_reading = self
            .sender
            .device
            .read_sensor(tinyevm_device::sensors::peripheral_id::TEMPERATURE, 0)
            .unwrap_or(U256::ZERO);
        let receiver_reading = self
            .receiver
            .device
            .read_sensor(tinyevm_device::sensors::peripheral_id::OCCUPANCY, 0)
            .unwrap_or(U256::ZERO);
        let mut bytes_exchanged = 0usize;
        bytes_exchanged += self.exchange(true, &sender_reading.to_be_bytes())?;
        bytes_exchanged += self.exchange(false, &receiver_reading.to_be_bytes())?;
        self.pause();

        // Each side executes the payment-channel constructor locally, in its
        // own contract world — the constructor's IoT sensor read and storage
        // writes land there.
        let init = contracts::payment_channel_init_code(
            tinyevm_device::sensors::peripheral_id::TEMPERATURE,
            channel_id,
        );
        let (sender_contract, sender_create_time) = self
            .sender
            .device
            .create_local_contract(&init)
            .map_err(|e| ProtocolError::Device(e.to_string()))?;
        let (receiver_contract, receiver_create_time) = self
            .receiver
            .device
            .create_local_contract(&init)
            .map_err(|e| ProtocolError::Device(e.to_string()))?;
        self.sender.channel_contract = Some(sender_contract);
        self.receiver.channel_contract = Some(receiver_contract);

        // Both endpoints open their channel state machines.
        let config = ChannelConfig {
            template,
            channel_id,
            sender: self.sender.address(),
            receiver: self.receiver.address(),
            deposit_cap: self.deposit,
        };
        self.sender.channel = Some(PaymentChannel::new(config.clone(), ChannelRole::Sender));
        self.receiver.channel = Some(PaymentChannel::new(config, ChannelRole::Receiver));

        // Anchor both side-chain logs at the on-chain template root.
        let anchor = self
            .chain
            .template(&template)
            .map(|t| t.side_chain_root().hash)
            .unwrap_or(H256::ZERO);
        self.sender.log = SideChainLog::new(anchor);
        self.receiver.log = SideChainLog::new(anchor);
        self.pause();

        Ok(ChannelOpenReport {
            channel_id,
            sender_create_time,
            receiver_create_time,
            bytes_exchanged,
        })
    }

    // --- off-chain payments --------------------------------------------------

    /// Performs one off-chain payment of `amount` from the sender to the
    /// receiver, measuring the full round.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::OutOfOrder`] before the channel is open, or
    /// the underlying channel / link / signature error.
    pub fn pay(&mut self, amount: Wei) -> Result<RoundReport, ProtocolError> {
        let started_at = self.sender.device.now();
        let sensor_hash = self.exchange_sensor_data()?;

        // 1. The sender builds and signs the payment. The channel state
        //    machine signs with the node key; the device model charges the
        //    crypto-engine latency for the same digest.
        let (payment, sender_sign_time) = {
            let channel = self
                .sender
                .channel
                .as_mut()
                .ok_or(ProtocolError::OutOfOrder("open_channel first"))?;
            let key = *self.sender.device.private_key();
            let payment = channel.create_payment(&key, amount, sensor_hash)?;
            let (device_signature, sign_time) =
                self.sender.device.sign_payload(&payment.encode_payload());
            debug_assert_eq!(device_signature, payment.signature);
            (payment, sign_time)
        };

        // 2. The signed payment crosses the radio link.
        let wire = payment.to_wire();
        let payment_bytes = self.exchange(true, &wire)?;

        // 3. The receiver verifies the signature and registers the payment
        //    on its side-chain (its own device time, not the sender's).
        let receiver_busy_from = self.receiver.device.now();
        let payer = self
            .receiver
            .device
            .verify_payload(&payment.encode_payload(), &payment.signature)
            .ok_or(ProtocolError::BadSignature)?;
        if payer != self.sender.address() {
            return Err(ProtocolError::BadSignature);
        }
        {
            let channel = self
                .receiver
                .channel
                .as_mut()
                .ok_or(ProtocolError::OutOfOrder("open_channel first"))?;
            channel.accept_payment(&payment)?;
        }
        Self::register_on_side_chain(&mut self.receiver, &payment)?;

        // 4. The receiver acknowledges by signing the same payload; the
        //    acknowledgement travels back to the sender. While the receiver
        //    works, the sender idles in LPM2 — that wait is part of the
        //    payment's end-to-end latency (and of the Figure 5 timeline).
        let (ack_signature, _) = self.receiver.device.sign_payload(&payment.encode_payload());
        let receiver_busy = self
            .receiver
            .device
            .now()
            .saturating_sub(receiver_busy_from);
        self.sender.device.sleep(receiver_busy);
        let ack_bytes = self.exchange(false, &ack_signature.to_bytes())?;
        self.sender.peer_signatures.push(ack_signature);

        // 5. The sender registers the payment on its own side-chain copy.
        let sender_register_time = Self::register_on_side_chain(&mut self.sender, &payment)?;

        let end_to_end_latency = self.sender.device.now().saturating_sub(started_at);
        self.pause();

        let sender_active_time = sender_sign_time
            + sender_register_time
            + self.sender.device.airtime(wire.len())
            + self.sender.device.airtime(65);

        Ok(RoundReport {
            sequence: payment.sequence,
            cumulative: payment.cumulative,
            end_to_end_latency,
            sender_active_time,
            sender_register_time,
            sender_sign_time,
            bytes_exchanged: payment_bytes + ack_bytes,
        })
    }

    /// Runs a complete parking session: open a channel (if not already
    /// open), make `payments` payments of `amount`, and return the per-round
    /// reports. This is the workload behind Figure 5 and Table IV.
    ///
    /// # Errors
    ///
    /// Propagates the first error of any step.
    pub fn run_session(
        &mut self,
        payments: usize,
        amount: Wei,
    ) -> Result<Vec<RoundReport>, ProtocolError> {
        if self.template.is_none() {
            self.publish_template()?;
        }
        if self.channel_id.is_none() {
            self.open_channel()?;
        }
        let mut reports = Vec::with_capacity(payments);
        for _ in 0..payments {
            reports.push(self.pay(amount)?);
        }
        Ok(reports)
    }

    // --- phase 3 -----------------------------------------------------------

    /// Closes the channel, commits the dual-signed final state on-chain,
    /// waits out the challenge period and settles.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::OutOfOrder`] before a channel exists, or the
    /// chain's rejection.
    pub fn close_and_settle(&mut self) -> Result<SettlementReport, ProtocolError> {
        let template = self
            .template
            .ok_or(ProtocolError::OutOfOrder("publish_template first"))?;
        let payments_exchanged = self
            .receiver
            .channel
            .as_ref()
            .map(|c| c.payments_seen())
            .unwrap_or(0);

        // Close on the receiver side (it holds the money claim) and have
        // both devices sign the final state.
        let state = {
            let channel = self
                .receiver
                .channel
                .as_mut()
                .ok_or(ProtocolError::OutOfOrder("open_channel first"))?;
            channel.close()
        };
        if let Some(channel) = self.sender.channel.as_mut() {
            channel.close();
        }
        let encoded = state.encode();
        let (sender_signature, _) = self.sender.device.sign_payload(&encoded);
        let (receiver_signature, _) = self.receiver.device.sign_payload(&encoded);
        let envelope = PaymentChannel::envelope(state, sender_signature, receiver_signature);

        // The final state travels to the receiver's gateway and on-chain.
        self.exchange(true, &envelope.state.encode())?;
        self.chain
            .commit_channel_state(self.receiver.address(), template, &envelope)?;
        self.chain.start_exit(self.receiver.address(), template)?;
        self.chain.advance_blocks(11);
        let settlement = self
            .chain
            .finalize_template(self.receiver.address(), template)?;

        Ok(SettlementReport {
            sender_balance: self.chain.balance(&self.sender.address()),
            receiver_balance: self.chain.balance(&self.receiver.address()),
            settlement,
            payments_exchanged,
            on_chain_transactions: self.chain.transactions().len(),
        })
    }

    // --- internals ----------------------------------------------------------

    /// Reads both sensors and exchanges the readings; returns the hash that
    /// binds them into the next payment.
    fn exchange_sensor_data(&mut self) -> Result<H256, ProtocolError> {
        let sender_reading = self
            .sender
            .device
            .read_sensor(tinyevm_device::sensors::peripheral_id::TEMPERATURE, 0)
            .unwrap_or(U256::ZERO);
        let receiver_reading = self
            .receiver
            .device
            .read_sensor(tinyevm_device::sensors::peripheral_id::OCCUPANCY, 0)
            .unwrap_or(U256::ZERO);
        self.exchange(true, &sender_reading.to_be_bytes())?;
        self.exchange(false, &receiver_reading.to_be_bytes())?;
        let mut data = Vec::with_capacity(64);
        data.extend_from_slice(&sender_reading.to_be_bytes());
        data.extend_from_slice(&receiver_reading.to_be_bytes());
        Ok(tinyevm_crypto::keccak256_h256(&data))
    }

    /// Moves a message across the link, charging TX on one device and RX on
    /// the other. `from_sender` selects the direction. Returns wire bytes.
    fn exchange(&mut self, from_sender: bool, message: &[u8]) -> Result<usize, ProtocolError> {
        let (_, report) = self.link.transfer(message)?;
        let (tx_node, rx_node) = if from_sender {
            (&mut self.sender, &mut self.receiver)
        } else {
            (&mut self.receiver, &mut self.sender)
        };
        tx_node
            .device
            .account_radio(RadioDirection::Transmit, report.wire_bytes);
        rx_node
            .device
            .account_radio(RadioDirection::Receive, report.wire_bytes);
        Ok(report.wire_bytes)
    }

    /// Executes the payment-channel contract on a node's device to register
    /// a payment in its local side-chain, then appends to the hash-linked
    /// log. Returns the VM execution time.
    fn register_on_side_chain(
        node: &mut OffChainNode,
        payment: &SignedPayment,
    ) -> Result<Duration, ProtocolError> {
        let contract = node
            .channel_contract
            .ok_or(ProtocolError::OutOfOrder("open_channel first"))?;
        let calldata =
            contracts::record_payment_calldata(payment.sequence, payment.cumulative.amount());
        let (_, success, time) = node
            .device
            .call_local_contract(contract, U256::ZERO, &calldata);
        if !success {
            return Err(ProtocolError::Device(
                "payment-channel contract rejected the payment".to_string(),
            ));
        }
        node.log.append(
            payment.channel_id,
            payment.sequence,
            payment.cumulative,
            H256::from_bytes(payment.digest()),
        );
        Ok(time)
    }

    /// Inserts the configured idle gap on both devices (LPM2).
    fn pause(&mut self) {
        self.sender.device.sleep(self.idle_gap);
        self.receiver.device.sleep(self.idle_gap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyevm_device::PowerState;

    fn driver() -> ProtocolDriver {
        ProtocolDriver::smart_parking(Wei::from(1_000_000u64))
    }

    #[test]
    fn template_must_be_published_before_opening() {
        let mut d = driver();
        assert!(matches!(
            d.open_channel(),
            Err(ProtocolError::OutOfOrder(_))
        ));
        assert!(matches!(
            d.pay(Wei::from(1u64)),
            Err(ProtocolError::OutOfOrder(_))
        ));
        assert!(matches!(
            d.close_and_settle(),
            Err(ProtocolError::OutOfOrder(_))
        ));
    }

    #[test]
    fn publish_template_locks_the_deposit() {
        let mut d = driver();
        let before = d.chain().balance(&d.sender().address());
        let template = d.publish_template().unwrap();
        assert!(d.chain().template(&template).is_some());
        let after = d.chain().balance(&d.sender().address());
        assert_eq!(before.checked_sub(after).unwrap(), Wei::from(1_000_000u64));
    }

    #[test]
    fn open_channel_deploys_the_contract_on_both_devices() {
        let mut d = driver();
        d.publish_template().unwrap();
        let report = d.open_channel().unwrap();
        assert_eq!(report.channel_id, 1);
        assert!(report.sender_create_time > Duration::from_millis(5));
        assert!(report.bytes_exchanged > 0);
        assert!(d.sender().channel().is_some());
        assert!(d.receiver().channel().is_some());
        let contract = d.sender().channel_contract().unwrap();
        assert!(!d.sender().device().world().code_of(&contract).is_empty());
        // The constructor stored the IoT sensor reading in slot 0x0C.
        assert_eq!(
            d.sender()
                .device()
                .world()
                .storage_of(&contract, U256::from(contracts::SLOT_SENSOR as u64)),
            U256::from(2150u64)
        );
    }

    #[test]
    fn a_payment_round_produces_paper_scale_numbers() {
        let mut d = driver();
        let reports = d.run_session(1, Wei::from(5_000u64)).unwrap();
        let report = &reports[0];
        assert_eq!(report.sequence, 1);
        assert_eq!(report.cumulative, Wei::from(5_000u64));
        // Crypto dominates: the sender signs for 355 ms, so the end-to-end
        // latency sits in the high hundreds of milliseconds — the same
        // regime as the paper's 584 ms average.
        assert!(report.sender_sign_time >= Duration::from_millis(355));
        assert!(report.end_to_end_latency > Duration::from_millis(400));
        assert!(report.end_to_end_latency < Duration::from_secs(2));
        assert!(report.sender_active_time < report.end_to_end_latency);
        assert!(report.bytes_exchanged > 100);

        // Both side-chain logs recorded the payment and still verify.
        assert_eq!(d.sender().side_chain().len(), 1);
        assert_eq!(d.receiver().side_chain().len(), 1);
        assert!(d.sender().side_chain().verify());
        assert!(d.receiver().side_chain().verify());
        assert_eq!(d.sender().peer_signatures().len(), 1);
    }

    #[test]
    fn energy_split_matches_table_four_shape() {
        let mut d = driver();
        d.run_session(1, Wei::from(1_000u64)).unwrap();
        let report = d.sender_energy();
        // The crypto engine is the dominant consumer (paper: ~65%).
        let crypto_share = report.share_of(PowerState::CryptoEngine);
        assert!(crypto_share > 0.4, "crypto share too small: {crypto_share}");
        // Radio and CPU are minor contributors.
        assert!(report.share_of(PowerState::Tx) < 0.2);
        assert!(report.share_of(PowerState::Rx) < 0.2);
        // Total energy per round is tens of millijoules, as in Table IV.
        assert!(report.total_energy_mj() > 5.0);
        assert!(report.total_energy_mj() < 120.0);
        // The timeline contains crypto, radio, CPU and sleep states.
        let timeline = d.sender_timeline();
        assert!(timeline.iter().any(|e| e.state == PowerState::CryptoEngine));
        assert!(timeline.iter().any(|e| e.state == PowerState::Tx));
        assert!(timeline.iter().any(|e| e.state == PowerState::Rx));
        assert!(timeline.iter().any(|e| e.state == PowerState::Lpm2));
    }

    #[test]
    fn multiple_payments_accumulate_and_settle() {
        let mut d = driver();
        let reports = d.run_session(5, Wei::from(10_000u64)).unwrap();
        assert_eq!(reports.len(), 5);
        assert_eq!(reports[4].sequence, 5);
        assert_eq!(reports[4].cumulative, Wei::from(50_000u64));

        let settlement = d.close_and_settle().unwrap();
        assert!(!settlement.settlement.fraud_detected);
        assert_eq!(settlement.settlement.to_receiver, Wei::from(50_000u64));
        assert_eq!(settlement.payments_exchanged, 5);
        assert_eq!(
            settlement.receiver_balance,
            Wei::from(50_000u64),
            "receiver is paid exactly the cumulative amount"
        );
        // The sender got the unspent deposit back (1_000_000 - 50_000),
        // plus its remaining genesis funds.
        assert!(settlement.sender_balance >= Wei::from(950_000u64));
        // The whole session needed only a handful of on-chain transactions.
        assert!(settlement.on_chain_transactions <= 6);
    }

    #[test]
    fn overspending_the_deposit_is_refused_off_chain() {
        let mut d = ProtocolDriver::smart_parking(Wei::from(1_000u64));
        d.publish_template().unwrap();
        d.open_channel().unwrap();
        d.pay(Wei::from(800u64)).unwrap();
        let error = d.pay(Wei::from(800u64)).unwrap_err();
        assert!(matches!(error, ProtocolError::Channel(_)));
    }
}
