//! The end-to-end TinyEVM protocol between two devices and the chain.
//!
//! [`ProtocolDriver`] owns the three actors of the paper's Figure 2 — the
//! paying device (the smart car), the receiving device (the parking sensor)
//! and the main chain — plus the radio link between the devices, and runs
//! the protocol:
//!
//! 1. [`ProtocolDriver::publish_template`]: the template goes on-chain with
//!    the sender's deposit (phase 1).
//! 2. [`ProtocolDriver::open_channel`]: the devices exchange sensor data and
//!    each executes the payment-channel constructor locally — including the
//!    IoT-opcode sensor read — creating the off-chain channel (phase 2).
//! 3. [`ProtocolDriver::pay`]: one off-chain payment — sign, transmit,
//!    verify, register on the side-chain, acknowledge (the quantity behind
//!    the paper's "584 ms per payment" and the Figure 5 / Table IV round).
//! 4. [`ProtocolDriver::close_and_settle`]: the channel closes, both parties
//!    sign the final state, it is committed on-chain, the challenge period
//!    elapses and the deposit is distributed (phase 3).
//!
//! Every protocol step is carried by the `tinyevm-wire` format: the sending
//! device encodes a [`Message`] envelope, the link fragments it into
//! 127-byte 802.15.4 frames, and the receiving device reassembles and
//! *decodes* the bytes — the peer only ever acts on what actually crossed
//! the (possibly lossy) radio. The reported air time and energy therefore
//! derive from real encoded sizes. [`ProtocolDriver::save_session`] /
//! [`ProtocolDriver::restore_session`] persist the chain and both channel
//! endpoints to disk so a device can power-cycle mid-session and resume.
//!
//! All timing and energy falls out of the device model; nothing in this
//! module hard-codes the paper's numbers.

use std::path::Path;
use std::time::Duration;

use tinyevm_chain::{Blockchain, Settlement, TemplateConfig};
use tinyevm_crypto::secp256k1::Signature;
use tinyevm_device::{Device, EnergyReport, RadioDirection, TimelineEntry};
use tinyevm_net::{Link, LinkConfig, NodeAddr};
use tinyevm_types::{Address, Wei, H256, U256};
use tinyevm_wire::{
    persist, ChainSnapshot, ChannelOpen, ChannelSnapshot, EndpointRole, Message, PaymentAck,
    SensorReading, WireError,
};

use crate::channel::{ChannelConfig, ChannelRole, PaymentChannel};
use crate::contracts;
use crate::payment::SignedPayment;
use crate::sidechain::SideChainLog;

/// Errors produced by the protocol driver.
#[derive(Debug)]
pub enum ProtocolError {
    /// The chain rejected an operation.
    Chain(tinyevm_chain::ChainError),
    /// A device could not deploy or execute the channel contract.
    Device(String),
    /// The radio link failed to deliver a message.
    Link(tinyevm_net::LinkError),
    /// The shared medium refused or failed an operation (multi-node
    /// scenarios).
    Medium(tinyevm_net::MediumError),
    /// A channel-level rule was violated.
    Channel(crate::channel::ChannelError),
    /// The protocol was driven out of order (e.g. paying before opening).
    OutOfOrder(&'static str),
    /// A signature check failed.
    BadSignature,
    /// A wire message failed to encode or decode.
    Wire(WireError),
    /// The peer sent a structurally valid message of the wrong kind.
    UnexpectedMessage {
        /// What the protocol step expected.
        expected: &'static str,
        /// What actually arrived.
        got: &'static str,
    },
}

impl core::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProtocolError::Chain(error) => write!(f, "chain error: {error}"),
            ProtocolError::Device(message) => write!(f, "device error: {message}"),
            ProtocolError::Link(error) => write!(f, "link error: {error}"),
            ProtocolError::Medium(error) => write!(f, "medium error: {error}"),
            ProtocolError::Channel(error) => write!(f, "channel error: {error}"),
            ProtocolError::OutOfOrder(step) => write!(f, "protocol step out of order: {step}"),
            ProtocolError::BadSignature => write!(f, "signature verification failed"),
            ProtocolError::Wire(error) => write!(f, "wire format error: {error}"),
            ProtocolError::UnexpectedMessage { expected, got } => {
                write!(f, "expected a {expected} message, got {got}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<tinyevm_chain::ChainError> for ProtocolError {
    fn from(error: tinyevm_chain::ChainError) -> Self {
        ProtocolError::Chain(error)
    }
}

impl From<tinyevm_net::LinkError> for ProtocolError {
    fn from(error: tinyevm_net::LinkError) -> Self {
        ProtocolError::Link(error)
    }
}

impl From<tinyevm_net::MediumError> for ProtocolError {
    fn from(error: tinyevm_net::MediumError) -> Self {
        ProtocolError::Medium(error)
    }
}

impl From<crate::channel::ChannelError> for ProtocolError {
    fn from(error: crate::channel::ChannelError) -> Self {
        ProtocolError::Channel(error)
    }
}

impl From<WireError> for ProtocolError {
    fn from(error: WireError) -> Self {
        ProtocolError::Wire(error)
    }
}

/// One protocol endpoint: a device plus its channel bookkeeping.
#[derive(Debug)]
pub struct OffChainNode {
    device: Device,
    role: ChannelRole,
    addr: NodeAddr,
    channel: Option<PaymentChannel>,
    channel_contract: Option<Address>,
    log: SideChainLog,
    peer_signatures: Vec<Signature>,
}

impl OffChainNode {
    /// Creates a node with an OpenMote-B class device and a link-layer
    /// address chosen by role (sender = 1, receiver = 2); multi-node
    /// topologies pick explicit addresses via [`OffChainNode::with_addr`].
    pub fn new(name: &str, role: ChannelRole) -> Self {
        let addr = match role {
            ChannelRole::Sender => NodeAddr::new(1),
            ChannelRole::Receiver => NodeAddr::new(2),
        };
        Self::with_addr(name, role, addr)
    }

    /// Creates a node with an explicit link-layer address.
    pub fn with_addr(name: &str, role: ChannelRole, addr: NodeAddr) -> Self {
        OffChainNode {
            device: Device::openmote_b(name),
            role,
            addr,
            channel: None,
            channel_contract: None,
            log: SideChainLog::new(H256::ZERO),
            peer_signatures: Vec::new(),
        }
    }

    /// This node's link-layer address (what goes in the frame headers).
    pub fn node_addr(&self) -> NodeAddr {
        self.addr
    }

    /// The underlying simulated device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mutable access to the device (used by examples to inspect or extend
    /// the sensor registry).
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// This node's payment identity.
    pub fn address(&self) -> Address {
        self.device.address()
    }

    /// This node's role.
    pub fn role(&self) -> ChannelRole {
        self.role
    }

    /// The node's channel endpoint, once opened.
    pub fn channel(&self) -> Option<&PaymentChannel> {
        self.channel.as_ref()
    }

    /// Address of the locally deployed payment-channel contract.
    pub fn channel_contract(&self) -> Option<Address> {
        self.channel_contract
    }

    /// The node's side-chain log.
    pub fn side_chain(&self) -> &SideChainLog {
        &self.log
    }

    /// Acknowledgement signatures received from the peer.
    pub fn peer_signatures(&self) -> &[Signature] {
        &self.peer_signatures
    }

    /// Captures this node's channel endpoint, side-chain log and collected
    /// peer acknowledgements as a wire-format snapshot, or `None` before a
    /// channel is open.
    pub fn snapshot(&self) -> Option<ChannelSnapshot> {
        self.channel
            .as_ref()
            .map(|channel| channel.snapshot(&self.log, &self.peer_signatures))
    }

    /// Restores the channel endpoint, side-chain log and peer
    /// acknowledgements from a snapshot (the node's role must match).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Wire`] for a snapshot whose log does not
    /// verify and [`ProtocolError::OutOfOrder`] for a role mismatch.
    pub fn restore(&mut self, snapshot: &ChannelSnapshot) -> Result<(), ProtocolError> {
        let expected = match self.role {
            ChannelRole::Sender => EndpointRole::Sender,
            ChannelRole::Receiver => EndpointRole::Receiver,
        };
        if snapshot.role != expected {
            return Err(ProtocolError::OutOfOrder(
                "snapshot belongs to the other endpoint",
            ));
        }
        let (channel, log, peer_acks) = PaymentChannel::restore(snapshot)?;
        self.channel = Some(channel);
        self.log = log;
        self.peer_signatures = peer_acks;
        Ok(())
    }
}

/// Measurements of one channel-opening handshake.
#[derive(Debug, Clone)]
pub struct ChannelOpenReport {
    /// Channel id issued by the template's logical clock.
    pub channel_id: u64,
    /// Time the sender spent executing the channel constructor.
    pub sender_create_time: Duration,
    /// Time the receiver spent executing the channel constructor.
    pub receiver_create_time: Duration,
    /// Bytes exchanged over the radio during the handshake.
    pub bytes_exchanged: usize,
}

/// Measurements of one off-chain payment.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Sequence number of the payment.
    pub sequence: u64,
    /// Cumulative amount owed to the receiver afterwards.
    pub cumulative: Wei,
    /// Wall-clock time from initiating the payment on the sender until the
    /// receiver's acknowledgement arrived back (the "complete an off-chain
    /// payment" latency the paper reports as 584 ms on average).
    pub end_to_end_latency: Duration,
    /// Time the sender's own hardware was active for this payment (crypto +
    /// CPU + radio, excluding the wait for the peer).
    pub sender_active_time: Duration,
    /// Time the sender spent executing the payment-channel contract to
    /// register the payment on its side-chain.
    pub sender_register_time: Duration,
    /// Time the sender spent signing.
    pub sender_sign_time: Duration,
    /// Radio bytes exchanged (both directions).
    pub bytes_exchanged: usize,
}

/// Result of settling the channel on-chain.
#[derive(Debug, Clone)]
pub struct SettlementReport {
    /// The settlement the chain computed.
    pub settlement: Settlement,
    /// Final balance of the sender on-chain.
    pub sender_balance: Wei,
    /// Final balance of the receiver on-chain.
    pub receiver_balance: Wei,
    /// Total payments that were exchanged off-chain.
    pub payments_exchanged: u64,
    /// Number of on-chain transactions the whole session needed.
    pub on_chain_transactions: usize,
}

/// The protocol driver: two devices, a link and the chain.
///
/// # Example
///
/// ```
/// use tinyevm_channel::ProtocolDriver;
/// use tinyevm_types::Wei;
///
/// let mut driver = ProtocolDriver::smart_parking(Wei::from_eth_milli(100));
/// driver.publish_template().unwrap();
/// driver.open_channel().unwrap();
/// let report = driver.pay(Wei::from_eth_milli(5)).unwrap();
/// assert!(report.end_to_end_latency.as_millis() > 300);
/// let settlement = driver.close_and_settle().unwrap();
/// assert!(!settlement.settlement.fraud_detected);
/// ```
#[derive(Debug)]
pub struct ProtocolDriver {
    chain: Blockchain,
    sender: OffChainNode,
    receiver: OffChainNode,
    link: Link,
    deposit: Wei,
    template: Option<Address>,
    channel_id: Option<u64>,
    /// Idle gap inserted between protocol steps (TSCH slot waiting /
    /// application pacing); spent in LPM2.
    idle_gap: Duration,
}

impl ProtocolDriver {
    /// The smart-parking setup of the paper: a "smart-car" sender, a
    /// "parking-sensor" receiver, a lossless TSCH link and the given
    /// deposit.
    pub fn smart_parking(deposit: Wei) -> Self {
        Self::smart_parking_with_link(LinkConfig::default(), deposit)
    }

    /// The smart-parking setup over an explicit link configuration (e.g. a
    /// lossy one). The device identities are the same as
    /// [`ProtocolDriver::smart_parking`], so sessions persisted under one
    /// link profile restore under another.
    pub fn smart_parking_with_link(link_config: LinkConfig, deposit: Wei) -> Self {
        Self::new(
            OffChainNode::new("smart-car", ChannelRole::Sender),
            OffChainNode::new("parking-sensor", ChannelRole::Receiver),
            link_config,
            deposit,
        )
    }

    /// Builds a driver from explicit parts.
    pub fn new(
        sender: OffChainNode,
        receiver: OffChainNode,
        link_config: LinkConfig,
        deposit: Wei,
    ) -> Self {
        let mut chain = Blockchain::new();
        // Genesis allocation: the sender needs funds to lock the deposit.
        chain.fund(sender.address(), deposit.saturating_add(Wei::from_eth(1)));
        let link = Link::between(sender.node_addr(), receiver.node_addr(), link_config);
        ProtocolDriver {
            chain,
            sender,
            receiver,
            link,
            deposit,
            template: None,
            channel_id: None,
            idle_gap: Duration::from_millis(120),
        }
    }

    /// The simulated main chain.
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    /// The paying node.
    pub fn sender(&self) -> &OffChainNode {
        &self.sender
    }

    /// The receiving node.
    pub fn receiver(&self) -> &OffChainNode {
        &self.receiver
    }

    /// The template address once published.
    pub fn template(&self) -> Option<Address> {
        self.template
    }

    /// The radio link between the two devices (message and wire-byte
    /// statistics).
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// Adjusts the idle gap inserted between protocol steps.
    pub fn set_idle_gap(&mut self, gap: Duration) {
        self.idle_gap = gap;
    }

    /// The sender's power-state timeline (Figure 5 raw data).
    pub fn sender_timeline(&self) -> &[TimelineEntry] {
        self.sender.device.timeline()
    }

    /// The sender's energy report (Table IV data).
    pub fn sender_energy(&self) -> EnergyReport {
        self.sender.device.energy_report()
    }

    // --- phase 1 -----------------------------------------------------------

    /// Publishes the template on-chain and locks the deposit.
    ///
    /// # Errors
    ///
    /// Returns a chain error when the deposit cannot be locked.
    pub fn publish_template(&mut self) -> Result<Address, ProtocolError> {
        let config = TemplateConfig {
            sender: self.sender.address(),
            receiver: self.receiver.address(),
            deposit: self.deposit,
            challenge_period_blocks: 10,
        };
        let address = self.chain.publish_template(config)?;
        self.template = Some(address);
        Ok(address)
    }

    // --- phase 2 -----------------------------------------------------------

    /// Opens the off-chain payment channel: the devices exchange sensor
    /// data, each executes the channel constructor locally (with its IoT
    /// sensor read), and the template's logical clock issues the channel id.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::OutOfOrder`] before the template is
    /// published, or the underlying device / chain / link error.
    pub fn open_channel(&mut self) -> Result<ChannelOpenReport, ProtocolError> {
        let template = self
            .template
            .ok_or(ProtocolError::OutOfOrder("publish_template first"))?;
        let channel_id = self
            .chain
            .create_payment_channel(self.sender.address(), template)?;
        self.channel_id = Some(channel_id);

        // Sensor-data exchange (paper: "the nodes exchange their data"),
        // each reading carried as an encoded wire message.
        let mut bytes_exchanged = 0usize;
        let (_, sensor_bytes) = self.exchange_sensor_readings()?;
        bytes_exchanged += sensor_bytes;
        self.pause();

        // The sender proposes the channel parameters; the receiver
        // instantiates its endpoint from the *decoded* proposal, so a
        // mis-encoded handshake cannot silently open mismatched channels.
        let proposal = Message::ChannelOpen(ChannelOpen {
            template,
            channel_id,
            sender: self.sender.address(),
            receiver: self.receiver.address(),
            deposit_cap: self.deposit,
        });
        let (delivered, open_bytes, _) = self.exchange_message(true, &proposal)?;
        bytes_exchanged += open_bytes;
        let Message::ChannelOpen(accepted) = delivered else {
            return Err(ProtocolError::UnexpectedMessage {
                expected: "channel-open",
                got: "other",
            });
        };

        // Each side executes the payment-channel constructor locally, in its
        // own contract world — the constructor's IoT sensor read and storage
        // writes land there.
        let init = contracts::payment_channel_init_code(
            tinyevm_device::sensors::peripheral_id::TEMPERATURE,
            channel_id,
        );
        let (sender_contract, sender_create_time) = self
            .sender
            .device
            .create_local_contract(&init)
            .map_err(|e| ProtocolError::Device(e.to_string()))?;
        let (receiver_contract, receiver_create_time) = self
            .receiver
            .device
            .create_local_contract(&init)
            .map_err(|e| ProtocolError::Device(e.to_string()))?;
        self.sender.channel_contract = Some(sender_contract);
        self.receiver.channel_contract = Some(receiver_contract);

        // Both endpoints open their channel state machines — the sender
        // from its local parameters, the receiver from the decoded wire
        // proposal.
        let config = ChannelConfig {
            template,
            channel_id,
            sender: self.sender.address(),
            receiver: self.receiver.address(),
            deposit_cap: self.deposit,
        };
        let receiver_config = ChannelConfig {
            template: accepted.template,
            channel_id: accepted.channel_id,
            sender: accepted.sender,
            receiver: accepted.receiver,
            deposit_cap: accepted.deposit_cap,
        };
        self.sender.channel = Some(PaymentChannel::new(config, ChannelRole::Sender));
        self.receiver.channel = Some(PaymentChannel::new(receiver_config, ChannelRole::Receiver));

        // Anchor both side-chain logs at the on-chain template root.
        let anchor = self
            .chain
            .template(&template)
            .map(|t| t.side_chain_root().hash)
            .unwrap_or(H256::ZERO);
        self.sender.log = SideChainLog::new(anchor);
        self.receiver.log = SideChainLog::new(anchor);
        self.pause();

        Ok(ChannelOpenReport {
            channel_id,
            sender_create_time,
            receiver_create_time,
            bytes_exchanged,
        })
    }

    // --- off-chain payments --------------------------------------------------

    /// Performs one off-chain payment of `amount` from the sender to the
    /// receiver, measuring the full round.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::OutOfOrder`] before the channel is open, or
    /// the underlying channel / link / signature error.
    pub fn pay(&mut self, amount: Wei) -> Result<RoundReport, ProtocolError> {
        let started_at = self.sender.device.now();
        let (sensor_hash, _) = self.exchange_sensor_readings()?;

        // 1. The sender builds and signs the payment. The channel state
        //    machine signs with the node key; the device model charges the
        //    crypto-engine latency for the same digest.
        let (payment, sender_sign_time) = {
            let channel = self
                .sender
                .channel
                .as_mut()
                .ok_or(ProtocolError::OutOfOrder("open_channel first"))?;
            let key = *self.sender.device.private_key();
            let payment = channel.create_payment(&key, amount, sensor_hash)?;
            let (device_signature, sign_time) =
                self.sender.device.sign_payload(&payment.encode_payload());
            debug_assert_eq!(device_signature, payment.signature);
            (payment, sign_time)
        };

        // 2. The signed payment crosses the radio link as an encoded wire
        //    message; everything the receiver does below acts on the
        //    *decoded* artifact, not the in-process object.
        let payment_message = Message::Payment(payment.clone());
        let (delivered, payment_bytes, payment_wire_len) =
            self.exchange_message(true, &payment_message)?;
        let Message::Payment(received) = delivered else {
            return Err(ProtocolError::UnexpectedMessage {
                expected: "payment",
                got: "other",
            });
        };

        // 3. The receiver verifies the signature and registers the payment
        //    on its side-chain (its own device time, not the sender's).
        let receiver_busy_from = self.receiver.device.now();
        let payer = self
            .receiver
            .device
            .verify_payload(&received.encode_payload(), &received.signature)
            .ok_or(ProtocolError::BadSignature)?;
        if payer != self.sender.address() {
            return Err(ProtocolError::BadSignature);
        }
        {
            let channel = self
                .receiver
                .channel
                .as_mut()
                .ok_or(ProtocolError::OutOfOrder("open_channel first"))?;
            channel.accept_payment(&received)?;
        }
        Self::register_on_side_chain(&mut self.receiver, &received)?;

        // 4. The receiver acknowledges by signing the same payload; the
        //    acknowledgement travels back as a wire message. While the
        //    receiver works, the sender idles in LPM2 — that wait is part
        //    of the payment's end-to-end latency (and of the Figure 5
        //    timeline).
        let (ack_signature, _) = self
            .receiver
            .device
            .sign_payload(&received.encode_payload());
        let receiver_busy = self
            .receiver
            .device
            .now()
            .saturating_sub(receiver_busy_from);
        self.sender.device.sleep(receiver_busy);
        let ack_message = Message::PaymentAck(PaymentAck {
            channel_id: received.channel_id,
            sequence: received.sequence,
            signature: ack_signature,
        });
        let (delivered_ack, ack_bytes, ack_wire_len) =
            self.exchange_message(false, &ack_message)?;
        let Message::PaymentAck(ack) = delivered_ack else {
            return Err(ProtocolError::UnexpectedMessage {
                expected: "payment-ack",
                got: "other",
            });
        };
        if ack.sequence != payment.sequence || ack.channel_id != payment.channel_id {
            return Err(ProtocolError::OutOfOrder(
                "acknowledgement for a different payment",
            ));
        }
        // The decoded acknowledgement must recover to the receiver — run
        // through the sender's device so the recovery is charged to its
        // crypto engine like every other signature check.
        let ack_signer = self
            .sender
            .device
            .verify_payload(&payment.encode_payload(), &ack.signature)
            .ok_or(ProtocolError::BadSignature)?;
        if ack_signer != self.receiver.address() {
            return Err(ProtocolError::BadSignature);
        }
        self.sender.peer_signatures.push(ack.signature);

        // 5. The sender registers the payment on its own side-chain copy.
        let sender_register_time = Self::register_on_side_chain(&mut self.sender, &payment)?;

        let end_to_end_latency = self.sender.device.now().saturating_sub(started_at);
        self.pause();

        let sender_active_time = sender_sign_time
            + sender_register_time
            + self.sender.device.airtime(payment_wire_len)
            + self.sender.device.airtime(ack_wire_len);

        Ok(RoundReport {
            sequence: payment.sequence,
            cumulative: payment.cumulative,
            end_to_end_latency,
            sender_active_time,
            sender_register_time,
            sender_sign_time,
            bytes_exchanged: payment_bytes + ack_bytes,
        })
    }

    /// Runs a complete parking session: open a channel (if not already
    /// open), make `payments` payments of `amount`, and return the per-round
    /// reports. This is the workload behind Figure 5 and Table IV.
    ///
    /// # Errors
    ///
    /// Propagates the first error of any step.
    pub fn run_session(
        &mut self,
        payments: usize,
        amount: Wei,
    ) -> Result<Vec<RoundReport>, ProtocolError> {
        if self.template.is_none() {
            self.publish_template()?;
        }
        if self.channel_id.is_none() {
            self.open_channel()?;
        }
        let mut reports = Vec::with_capacity(payments);
        for _ in 0..payments {
            reports.push(self.pay(amount)?);
        }
        Ok(reports)
    }

    // --- phase 3 -----------------------------------------------------------

    /// Closes the channel, commits the dual-signed final state on-chain,
    /// waits out the challenge period and settles.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::OutOfOrder`] before a channel exists, or the
    /// chain's rejection.
    pub fn close_and_settle(&mut self) -> Result<SettlementReport, ProtocolError> {
        let template = self
            .template
            .ok_or(ProtocolError::OutOfOrder("publish_template first"))?;
        let payments_exchanged = self
            .receiver
            .channel
            .as_ref()
            .map(|c| c.payments_seen())
            .unwrap_or(0);

        // Close on the receiver side (it holds the money claim) and have
        // both devices sign the final state.
        let state = {
            let channel = self
                .receiver
                .channel
                .as_mut()
                .ok_or(ProtocolError::OutOfOrder("open_channel first"))?;
            channel.close()
        };
        if let Some(channel) = self.sender.channel.as_mut() {
            channel.close();
        }
        let encoded = state.encode();
        let (sender_signature, _) = self.sender.device.sign_payload(&encoded);
        let (receiver_signature, _) = self.receiver.device.sign_payload(&encoded);
        let envelope = PaymentChannel::envelope(state, sender_signature, receiver_signature);

        // The dual-signed final state travels to the receiver's gateway as
        // a wire message; what goes on-chain is the *decoded* envelope.
        let (delivered, _, _) = self.exchange_message(true, &Message::ChannelClose(envelope))?;
        let Message::ChannelClose(committed) = delivered else {
            return Err(ProtocolError::UnexpectedMessage {
                expected: "channel-close",
                got: "other",
            });
        };
        self.chain
            .commit_channel_state(self.receiver.address(), template, &committed)?;
        self.chain.start_exit(self.receiver.address(), template)?;
        self.chain.advance_blocks(11);
        let settlement = self
            .chain
            .finalize_template(self.receiver.address(), template)?;

        Ok(SettlementReport {
            sender_balance: self.chain.balance(&self.sender.address()),
            receiver_balance: self.chain.balance(&self.receiver.address()),
            settlement,
            payments_exchanged,
            on_chain_transactions: self.chain.transactions().len(),
        })
    }

    // --- persistence --------------------------------------------------------

    /// Snapshot of the simulated main chain's consensus state.
    pub fn chain_snapshot(&self) -> ChainSnapshot {
        ChainSnapshot::capture(&self.chain)
    }

    /// Writes the whole session — chain snapshot plus both channel
    /// endpoints — to a wire-format persistence file.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::OutOfOrder`] before the channel is open and
    /// [`ProtocolError::Wire`] on filesystem failure.
    pub fn save_session(&self, path: &Path) -> Result<(), ProtocolError> {
        let sender = self
            .sender
            .snapshot()
            .ok_or(ProtocolError::OutOfOrder("open_channel first"))?;
        let receiver = self
            .receiver
            .snapshot()
            .ok_or(ProtocolError::OutOfOrder("open_channel first"))?;
        persist::write_messages(
            path,
            &[
                Message::ChainSnapshot(self.chain_snapshot()),
                Message::ChannelSnapshot(sender),
                Message::ChannelSnapshot(receiver),
            ],
        )?;
        Ok(())
    }

    /// Resumes a session from a persistence file written by
    /// [`ProtocolDriver::save_session`]: restores the chain (verified
    /// hash-equal against the snapshot's state root), both channel
    /// endpoints and their side-chain logs, and re-instantiates the local
    /// channel contracts on devices that lost them in the power cycle.
    ///
    /// The whole file is validated before any driver state changes: it
    /// must contain the chain snapshot *and* both endpoint snapshots, the
    /// endpoints must agree on the channel parameters, and the template
    /// they name must exist on the restored chain. A file truncated
    /// mid-write (power loss during the save) or spliced from two
    /// different sessions is rejected as a whole, never half-applied.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Wire`] for unreadable, foreign, tampered,
    /// incomplete or inconsistent files, and a device error when a channel
    /// contract cannot be re-created.
    pub fn restore_session(&mut self, path: &Path) -> Result<(), ProtocolError> {
        // Stage everything first; self is only touched once the file as a
        // whole has been validated.
        let mut chain = None;
        let mut sender_snapshot = None;
        let mut receiver_snapshot = None;
        for message in persist::read_messages(path)? {
            match message {
                Message::ChainSnapshot(snapshot) => {
                    chain = Some(snapshot.restore()?);
                }
                Message::ChannelSnapshot(snapshot) => match snapshot.role {
                    EndpointRole::Sender => sender_snapshot = Some(snapshot),
                    EndpointRole::Receiver => receiver_snapshot = Some(snapshot),
                },
                other => {
                    return Err(ProtocolError::UnexpectedMessage {
                        expected: "snapshot",
                        got: other.label(),
                    })
                }
            }
        }
        let (Some(chain), Some(sender_snapshot), Some(receiver_snapshot)) =
            (chain, sender_snapshot, receiver_snapshot)
        else {
            return Err(ProtocolError::Wire(WireError::Truncated));
        };
        // The two endpoints must describe the same channel, anchored at a
        // template the restored chain actually knows — a file spliced from
        // two different sessions fails here.
        if sender_snapshot.template != receiver_snapshot.template
            || sender_snapshot.channel_id != receiver_snapshot.channel_id
            || sender_snapshot.sender != receiver_snapshot.sender
            || sender_snapshot.receiver != receiver_snapshot.receiver
            || sender_snapshot.deposit_cap != receiver_snapshot.deposit_cap
        {
            return Err(ProtocolError::Wire(WireError::Value(
                "endpoint snapshots describe different channels",
            )));
        }
        if chain.template(&sender_snapshot.template).is_none() {
            return Err(ProtocolError::Wire(WireError::Value(
                "snapshot template is not on the restored chain",
            )));
        }
        // The session must belong to *these* devices — restoring someone
        // else's snapshot would leave channels whose configured parties
        // can never produce valid signatures.
        if sender_snapshot.sender != self.sender.address()
            || sender_snapshot.receiver != self.receiver.address()
        {
            return Err(ProtocolError::Wire(WireError::Value(
                "snapshot belongs to different device identities",
            )));
        }
        // Decode both endpoints (side-chain logs re-verified) before any
        // commit.
        let sender_parts = PaymentChannel::restore(&sender_snapshot)?;
        let receiver_parts = PaymentChannel::restore(&receiver_snapshot)?;

        // Commit.
        let channel_changed = self.channel_id != Some(sender_snapshot.channel_id);
        self.chain = chain;
        self.template = Some(sender_snapshot.template);
        self.channel_id = Some(sender_snapshot.channel_id);
        for (node, (channel, log, peer_acks)) in [
            (&mut self.sender, sender_parts),
            (&mut self.receiver, receiver_parts),
        ] {
            node.channel = Some(channel);
            node.log = log;
            node.peer_signatures = peer_acks;
            if node.channel_contract.is_none() || channel_changed {
                // The device's contract world was lost with the power
                // cycle; re-instantiate the off-chain contract from the
                // template.
                let init = contracts::payment_channel_init_code(
                    tinyevm_device::sensors::peripheral_id::TEMPERATURE,
                    sender_snapshot.channel_id,
                );
                let (contract, _) = node
                    .device
                    .create_local_contract(&init)
                    .map_err(|e| ProtocolError::Device(e.to_string()))?;
                node.channel_contract = Some(contract);
            }
        }
        Ok(())
    }

    // --- internals ----------------------------------------------------------

    /// Reads both sensors and exchanges the readings as wire messages;
    /// returns the hash binding what actually crossed the radio (the price
    /// justification of the next payment) and the wire bytes moved.
    fn exchange_sensor_readings(&mut self) -> Result<(H256, usize), ProtocolError> {
        let sender_reading = self
            .sender
            .device
            .read_sensor(tinyevm_device::sensors::peripheral_id::TEMPERATURE, 0)
            .unwrap_or(U256::ZERO);
        let receiver_reading = self
            .receiver
            .device
            .read_sensor(tinyevm_device::sensors::peripheral_id::OCCUPANCY, 0)
            .unwrap_or(U256::ZERO);
        let (delivered_sender, sender_bytes, _) = self.exchange_message(
            true,
            &Message::SensorReading(SensorReading {
                peripheral: tinyevm_device::sensors::peripheral_id::TEMPERATURE,
                value: sender_reading,
            }),
        )?;
        let (delivered_receiver, receiver_bytes, _) = self.exchange_message(
            false,
            &Message::SensorReading(SensorReading {
                peripheral: tinyevm_device::sensors::peripheral_id::OCCUPANCY,
                value: receiver_reading,
            }),
        )?;
        let (Message::SensorReading(sender_seen), Message::SensorReading(receiver_seen)) =
            (delivered_sender, delivered_receiver)
        else {
            return Err(ProtocolError::UnexpectedMessage {
                expected: "sensor-reading",
                got: "other",
            });
        };
        let mut data = Vec::with_capacity(64);
        data.extend_from_slice(&sender_seen.value.to_be_bytes());
        data.extend_from_slice(&receiver_seen.value.to_be_bytes());
        Ok((
            tinyevm_crypto::keccak256_h256(&data),
            sender_bytes + receiver_bytes,
        ))
    }

    /// Moves one encoded message across the link: the transmitting device
    /// pays the encode CPU time and TX energy, the receiving device pays RX
    /// energy and the decode CPU time, and the function returns the
    /// *decoded* message — the only thing the far side may act on — plus
    /// the wire bytes (headers and retransmissions included) and the
    /// envelope's encoded length (so callers don't re-encode just to size
    /// it).
    fn exchange_message(
        &mut self,
        from_sender: bool,
        message: &Message,
    ) -> Result<(Message, usize, usize), ProtocolError> {
        let wire = message.to_wire();
        let encoded_len = wire.len();
        // The frame headers carry the true direction: sender → receiver
        // uses the link's local → peer addressing, acknowledgements and
        // receiver-originated readings the reverse.
        let (delivered, report) = if from_sender {
            self.link.transfer(&wire)?
        } else {
            self.link.transfer_reverse(&wire)?
        };
        let (tx_node, rx_node) = if from_sender {
            (&mut self.sender, &mut self.receiver)
        } else {
            (&mut self.receiver, &mut self.sender)
        };
        tx_node.device.account_codec(encoded_len);
        tx_node
            .device
            .account_radio(RadioDirection::Transmit, report.wire_bytes);
        rx_node
            .device
            .account_radio(RadioDirection::Receive, report.wire_bytes);
        rx_node.device.account_codec(delivered.len());
        let decoded = Message::from_wire(&delivered)?;
        Ok((decoded, report.wire_bytes, encoded_len))
    }

    /// Executes the payment-channel contract on a node's device to register
    /// a payment in its local side-chain, then appends to the hash-linked
    /// log. Returns the VM execution time.
    fn register_on_side_chain(
        node: &mut OffChainNode,
        payment: &SignedPayment,
    ) -> Result<Duration, ProtocolError> {
        let contract = node
            .channel_contract
            .ok_or(ProtocolError::OutOfOrder("open_channel first"))?;
        let calldata =
            contracts::record_payment_calldata(payment.sequence, payment.cumulative.amount());
        let (_, success, time) = node
            .device
            .call_local_contract(contract, U256::ZERO, &calldata);
        if !success {
            return Err(ProtocolError::Device(
                "payment-channel contract rejected the payment".to_string(),
            ));
        }
        node.log.append(
            payment.channel_id,
            payment.sequence,
            payment.cumulative,
            H256::from_bytes(payment.digest()),
        );
        Ok(time)
    }

    /// Inserts the configured idle gap on both devices (LPM2).
    fn pause(&mut self) {
        self.sender.device.sleep(self.idle_gap);
        self.receiver.device.sleep(self.idle_gap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyevm_device::PowerState;

    fn driver() -> ProtocolDriver {
        ProtocolDriver::smart_parking(Wei::from(1_000_000u64))
    }

    #[test]
    fn template_must_be_published_before_opening() {
        let mut d = driver();
        assert!(matches!(
            d.open_channel(),
            Err(ProtocolError::OutOfOrder(_))
        ));
        assert!(matches!(
            d.pay(Wei::from(1u64)),
            Err(ProtocolError::OutOfOrder(_))
        ));
        assert!(matches!(
            d.close_and_settle(),
            Err(ProtocolError::OutOfOrder(_))
        ));
    }

    #[test]
    fn publish_template_locks_the_deposit() {
        let mut d = driver();
        let before = d.chain().balance(&d.sender().address());
        let template = d.publish_template().unwrap();
        assert!(d.chain().template(&template).is_some());
        let after = d.chain().balance(&d.sender().address());
        assert_eq!(before.checked_sub(after).unwrap(), Wei::from(1_000_000u64));
    }

    #[test]
    fn open_channel_deploys_the_contract_on_both_devices() {
        let mut d = driver();
        d.publish_template().unwrap();
        let report = d.open_channel().unwrap();
        assert_eq!(report.channel_id, 1);
        assert!(report.sender_create_time > Duration::from_millis(5));
        assert!(report.bytes_exchanged > 0);
        assert!(d.sender().channel().is_some());
        assert!(d.receiver().channel().is_some());
        let contract = d.sender().channel_contract().unwrap();
        assert!(!d.sender().device().world().code_of(&contract).is_empty());
        // The constructor stored the IoT sensor reading in slot 0x0C.
        assert_eq!(
            d.sender()
                .device()
                .world()
                .storage_of(&contract, U256::from(contracts::SLOT_SENSOR as u64)),
            U256::from(2150u64)
        );
    }

    #[test]
    fn a_payment_round_produces_paper_scale_numbers() {
        let mut d = driver();
        let reports = d.run_session(1, Wei::from(5_000u64)).unwrap();
        let report = &reports[0];
        assert_eq!(report.sequence, 1);
        assert_eq!(report.cumulative, Wei::from(5_000u64));
        // Crypto dominates: the sender signs for 355 ms, so the end-to-end
        // latency sits in the high hundreds of milliseconds — the same
        // regime as the paper's 584 ms average.
        assert!(report.sender_sign_time >= Duration::from_millis(355));
        assert!(report.end_to_end_latency > Duration::from_millis(400));
        assert!(report.end_to_end_latency < Duration::from_secs(2));
        assert!(report.sender_active_time < report.end_to_end_latency);
        assert!(report.bytes_exchanged > 100);

        // Both side-chain logs recorded the payment and still verify.
        assert_eq!(d.sender().side_chain().len(), 1);
        assert_eq!(d.receiver().side_chain().len(), 1);
        assert!(d.sender().side_chain().verify());
        assert!(d.receiver().side_chain().verify());
        assert_eq!(d.sender().peer_signatures().len(), 1);
    }

    #[test]
    fn energy_split_matches_table_four_shape() {
        let mut d = driver();
        d.run_session(1, Wei::from(1_000u64)).unwrap();
        let report = d.sender_energy();
        // The crypto engine is the dominant consumer (paper: ~65%).
        let crypto_share = report.share_of(PowerState::CryptoEngine);
        assert!(crypto_share > 0.4, "crypto share too small: {crypto_share}");
        // Radio and CPU are minor contributors.
        assert!(report.share_of(PowerState::Tx) < 0.2);
        assert!(report.share_of(PowerState::Rx) < 0.2);
        // Total energy per round is tens of millijoules, as in Table IV.
        assert!(report.total_energy_mj() > 5.0);
        assert!(report.total_energy_mj() < 120.0);
        // The timeline contains crypto, radio, CPU and sleep states.
        let timeline = d.sender_timeline();
        assert!(timeline.iter().any(|e| e.state == PowerState::CryptoEngine));
        assert!(timeline.iter().any(|e| e.state == PowerState::Tx));
        assert!(timeline.iter().any(|e| e.state == PowerState::Rx));
        assert!(timeline.iter().any(|e| e.state == PowerState::Lpm2));
    }

    #[test]
    fn multiple_payments_accumulate_and_settle() {
        let mut d = driver();
        let reports = d.run_session(5, Wei::from(10_000u64)).unwrap();
        assert_eq!(reports.len(), 5);
        assert_eq!(reports[4].sequence, 5);
        assert_eq!(reports[4].cumulative, Wei::from(50_000u64));

        let settlement = d.close_and_settle().unwrap();
        assert!(!settlement.settlement.fraud_detected);
        assert_eq!(settlement.settlement.to_receiver, Wei::from(50_000u64));
        assert_eq!(settlement.payments_exchanged, 5);
        assert_eq!(
            settlement.receiver_balance,
            Wei::from(50_000u64),
            "receiver is paid exactly the cumulative amount"
        );
        // The sender got the unspent deposit back (1_000_000 - 50_000),
        // plus its remaining genesis funds.
        assert!(settlement.sender_balance >= Wei::from(950_000u64));
        // The whole session needed only a handful of on-chain transactions.
        assert!(settlement.on_chain_transactions <= 6);
    }

    #[test]
    fn overspending_the_deposit_is_refused_off_chain() {
        let mut d = ProtocolDriver::smart_parking(Wei::from(1_000u64));
        d.publish_template().unwrap();
        d.open_channel().unwrap();
        d.pay(Wei::from(800u64)).unwrap();
        let error = d.pay(Wei::from(800u64)).unwrap_err();
        assert!(matches!(error, ProtocolError::Channel(_)));
    }

    #[test]
    fn every_protocol_step_is_a_wire_message() {
        let mut d = driver();
        d.run_session(2, Wei::from(1_000u64)).unwrap();
        d.close_and_settle().unwrap();
        // Messages on the link: 2 sensor readings + 1 channel-open at
        // opening, then (2 readings + payment + ack) per payment, then the
        // channel-close. All of them real encoded transfers.
        assert_eq!(d.link().total_messages(), 3 + 2 * 4 + 1);
        assert!(d.link().total_wire_bytes() > 0);
    }

    #[test]
    fn session_survives_a_lossy_link() {
        let config = LinkConfig::default().with_loss(0.2, 42);
        let mut d = ProtocolDriver::smart_parking_with_link(config, Wei::from(1_000_000u64));
        let reports = d.run_session(3, Wei::from(10_000u64)).unwrap();
        assert_eq!(reports.len(), 3);
        let settlement = d.close_and_settle().unwrap();
        assert_eq!(settlement.settlement.to_receiver, Wei::from(30_000u64));
        assert!(!settlement.settlement.fraud_detected);
    }

    #[test]
    fn session_resumes_from_a_snapshot_file_after_power_cycle() {
        let mut path = std::env::temp_dir();
        path.push(format!("tinyevm-session-{}.snap", std::process::id()));

        // First life: open a channel, make two payments, persist.
        let mut d = driver();
        d.run_session(2, Wei::from(5_000u64)).unwrap();
        let chain_root_before = d.chain().state_root();
        d.save_session(&path).unwrap();

        // Power cycle: a brand-new driver (same device identities), resumed
        // from disk.
        let mut resumed = driver();
        resumed.restore_session(&path).unwrap();
        assert_eq!(
            resumed.chain().state_root(),
            chain_root_before,
            "restored chain is hash-identical"
        );
        assert_eq!(
            resumed.sender().snapshot().unwrap(),
            d.sender().snapshot().unwrap(),
            "restored sender endpoint is identical"
        );
        assert!(resumed.receiver().side_chain().verify());

        // The session continues where it left off...
        let report = resumed.pay(Wei::from(5_000u64)).unwrap();
        assert_eq!(report.sequence, 3);
        assert_eq!(report.cumulative, Wei::from(15_000u64));
        // ...and settles for all three payments.
        let settlement = resumed.close_and_settle().unwrap();
        assert_eq!(settlement.settlement.to_receiver, Wei::from(15_000u64));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn incomplete_session_file_is_rejected_whole() {
        // A save interrupted by the power loss itself: only the chain
        // snapshot made it to disk. Restore must refuse rather than leave
        // the driver half-initialized.
        let mut path = std::env::temp_dir();
        path.push(format!("tinyevm-partial-{}.snap", std::process::id()));
        let mut d = driver();
        d.run_session(1, Wei::from(1_000u64)).unwrap();
        tinyevm_wire::persist::write_messages(&path, &[Message::ChainSnapshot(d.chain_snapshot())])
            .unwrap();
        let mut resumed = driver();
        assert!(matches!(
            resumed.restore_session(&path),
            Err(ProtocolError::Wire(tinyevm_wire::WireError::Truncated))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_device_snapshot_is_rejected() {
        let mut path = std::env::temp_dir();
        path.push(format!("tinyevm-foreign-{}.snap", std::process::id()));
        let mut d = driver();
        d.run_session(1, Wei::from(1_000u64)).unwrap();
        d.save_session(&path).unwrap();
        // A driver with different device identities must refuse the file
        // outright instead of restoring channels it can never sign for.
        let mut other = ProtocolDriver::new(
            OffChainNode::new("other-car", ChannelRole::Sender),
            OffChainNode::new("other-sensor", ChannelRole::Receiver),
            LinkConfig::default(),
            Wei::from(1_000_000u64),
        );
        assert!(matches!(
            other.restore_session(&path),
            Err(ProtocolError::Wire(tinyevm_wire::WireError::Value(_)))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tampered_session_file_is_rejected() {
        let mut path = std::env::temp_dir();
        path.push(format!("tinyevm-tampered-{}.snap", std::process::id()));
        let mut d = driver();
        d.run_session(1, Wei::from(1_000u64)).unwrap();
        d.save_session(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let mut resumed = driver();
        assert!(matches!(
            resumed.restore_session(&path),
            Err(ProtocolError::Wire(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
