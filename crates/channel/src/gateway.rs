//! The multi-node gateway scenario: N sensor devices, one gateway.
//!
//! The paper's deployment is not one car and one parking sensor but a
//! *fleet* of low-power devices each paying a single gateway over its own
//! off-chain channel. [`GatewayDriver`] builds that topology as a thin pump
//! over sans-IO endpoints (see [`crate::endpoint`]):
//!
//! * N [`SensorNode`]s — each a sender-role [`ChannelEndpoint`] with its
//!   own OpenMote-B device, key, link-layer [`NodeAddr`] and payment
//!   channel;
//! * one [`Gateway`] — a **single receiver-role endpoint multiplexing all N
//!   sensor peers keyed by address**, with one device (one radio, one
//!   crypto engine), a per-sensor channel state machine, side-chain log and
//!   locally deployed channel contract;
//! * a [`SharedMedium`] carrying all traffic, with every wire byte and
//!   microsecond of airtime attributed to the sensor that caused it;
//! * one [`Blockchain`] that hosts all N templates and settles all N
//!   channels at the end of the session. At settlement the gateway
//!   endpoint verifies **all N closing signatures in one batched
//!   multi-scalar pass** (`tinyevm_crypto::secp256k1::verify_batch`).
//!
//! Every protocol step crosses the medium as an encoded
//! [`tinyevm_wire::Message`] and the far side acts only on the decoded
//! artifact, exactly like the two-party [`crate::ProtocolDriver`] — both
//! drivers share the same endpoint implementation and the same pump. The
//! whole multi-session state — chain plus 2 × N channel endpoints — can be
//! persisted as one wire-format file and restored after a power cycle.
//!
//! Everything is seeded (device keys from names, per-sensor loss processes
//! from the medium seed and the sensor address), so a scenario run is
//! deterministic: the same configuration produces byte-identical
//! statistics every time.

use std::collections::BTreeMap;
use std::path::Path;
use std::time::Duration;

use tinyevm_chain::{Blockchain, Settlement, TemplateConfig};
use tinyevm_crypto::secp256k1::Signature;
use tinyevm_device::Device;
use tinyevm_net::{EndpointStats, LinkConfig, NodeAddr, SharedMedium};
use tinyevm_trace::TraceHandle;
use tinyevm_types::{Address, Wei, H256};
use tinyevm_wire::{persist, ChainSnapshot, ChannelSnapshot, EndpointRole, Message, WireError};

use crate::channel::PaymentChannel;
use crate::endpoint::{ChannelEndpoint, ChannelRegistration, Effect, EndpointError};
use crate::protocol::{ProtocolError, PumpLog};
use crate::sidechain::SideChainLog;

/// Protocol violations (bad signatures, tampered proposals, channel-rule
/// breaches) a single sensor may commit before the gateway quarantines it.
pub const QUARANTINE_THRESHOLD: u32 = 3;

/// Health of one sensor as the gateway driver sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorHealth {
    /// Behaving normally.
    Healthy,
    /// The last round died on transport (retry budget exhausted, link
    /// refusal); the sensor recovers to [`SensorHealth::Healthy`] on its
    /// next clean round.
    Degraded,
    /// The sensor committed [`QUARANTINE_THRESHOLD`] protocol violations;
    /// the gateway refuses further rounds and excludes it from settlement.
    /// The rest of the fleet keeps paying and settles normally.
    Quarantined,
}

/// How a pump error reflects on the sensor that caused it.
enum FaultClass {
    /// Invalid signature, tampered proposal or channel-rule breach —
    /// counts toward quarantine.
    Violation,
    /// Transport trouble (round aborted, link refusal) — degrades, never
    /// quarantines.
    Transport,
    /// Driver-level misuse or chain trouble — not the sensor's doing.
    Fatal,
}

fn classify(error: &ProtocolError) -> FaultClass {
    match error {
        ProtocolError::BadSignature
        | ProtocolError::Channel(_)
        | ProtocolError::UnexpectedMessage { .. }
        | ProtocolError::Endpoint(EndpointError::ProposalMismatch(_)) => FaultClass::Violation,
        ProtocolError::Link(_)
        | ProtocolError::Medium(_)
        | ProtocolError::Endpoint(EndpointError::RoundAborted { .. }) => FaultClass::Transport,
        _ => FaultClass::Fatal,
    }
}

/// Default link-layer address of the gateway.
pub const GATEWAY_ADDR: NodeAddr = NodeAddr::new(0xFE);

/// One paying sensor device of the fleet: a sender-role sans-IO endpoint
/// whose single peer is the gateway.
#[derive(Debug)]
pub struct SensorNode {
    endpoint: ChannelEndpoint,
    fallback_log: SideChainLog,
}

impl SensorNode {
    fn new(index: usize) -> Self {
        SensorNode {
            endpoint: ChannelEndpoint::fleet_sensor(
                &format!("sensor-{:02}", index + 1),
                NodeAddr::new(index as u16 + 1),
            ),
            fallback_log: SideChainLog::new(H256::ZERO),
        }
    }

    /// The sensor's protocol state machine.
    pub fn endpoint(&self) -> &ChannelEndpoint {
        &self.endpoint
    }

    /// The underlying simulated device.
    pub fn device(&self) -> &Device {
        self.endpoint.device()
    }

    /// The sensor's link-layer address.
    pub fn node_addr(&self) -> NodeAddr {
        self.endpoint.addr()
    }

    /// The sensor's payment identity.
    pub fn address(&self) -> Address {
        self.endpoint.account()
    }

    /// The sensor's channel state machine, once opened.
    pub fn channel(&self) -> Option<&PaymentChannel> {
        self.endpoint.channel(GATEWAY_ADDR)
    }

    /// The sensor's side-chain log.
    pub fn side_chain(&self) -> &SideChainLog {
        self.endpoint
            .side_chain(GATEWAY_ADDR)
            .unwrap_or(&self.fallback_log)
    }

    /// Gateway acknowledgement signatures this sensor has collected.
    pub fn ack_signatures(&self) -> &[Signature] {
        self.endpoint.peer_acks(GATEWAY_ADDR).unwrap_or(&[])
    }

    /// End-to-end latencies of this sensor's payments, in order.
    pub fn latencies(&self) -> &[Duration] {
        self.endpoint.latencies(GATEWAY_ADDR).unwrap_or(&[])
    }
}

/// The single receiver terminating all N channels: one receiver-role
/// endpoint multiplexing every sensor peer.
#[derive(Debug)]
pub struct Gateway {
    endpoint: ChannelEndpoint,
}

impl Gateway {
    fn new(addr: NodeAddr) -> Self {
        Gateway {
            endpoint: ChannelEndpoint::gateway("gateway", addr),
        }
    }

    /// The gateway's protocol state machine.
    pub fn endpoint(&self) -> &ChannelEndpoint {
        &self.endpoint
    }

    /// The gateway device (one radio, one crypto engine, N contracts).
    pub fn device(&self) -> &Device {
        self.endpoint.device()
    }

    /// The gateway's link-layer address.
    pub fn node_addr(&self) -> NodeAddr {
        self.endpoint.addr()
    }

    /// The gateway's payment identity.
    pub fn address(&self) -> Address {
        self.endpoint.account()
    }

    /// The gateway's channel state machine for one sensor.
    pub fn channel_for(&self, sensor: NodeAddr) -> Option<&PaymentChannel> {
        self.endpoint.channel(sensor)
    }

    /// The gateway's side-chain log for one sensor's channel.
    pub fn side_chain_for(&self, sensor: NodeAddr) -> Option<&SideChainLog> {
        self.endpoint.side_chain(sensor)
    }

    /// The on-chain template backing one sensor's channel.
    pub fn template_for(&self, sensor: NodeAddr) -> Option<Address> {
        self.endpoint
            .registration(sensor)
            .map(|registration| registration.template)
    }
}

/// Measurements of one multi-node payment round.
#[derive(Debug, Clone)]
pub struct GatewayRoundReport {
    /// The paying sensor.
    pub sensor: NodeAddr,
    /// Sequence number on that sensor's channel.
    pub sequence: u64,
    /// Cumulative amount that sensor now owes the gateway.
    pub cumulative: Wei,
    /// Wall-clock time from initiating the payment on the sensor until the
    /// gateway's acknowledgement arrived back.
    pub end_to_end_latency: Duration,
    /// Radio bytes exchanged for this payment (both directions).
    pub bytes_exchanged: usize,
}

/// Per-sensor summary of a finished (or running) session.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorSummary {
    /// The sensor's link-layer address.
    pub addr: NodeAddr,
    /// The sensor's payment identity.
    pub account: Address,
    /// Payments the sensor made.
    pub payments: u64,
    /// Cumulative amount paid to the gateway.
    pub paid: Wei,
    /// Mean end-to-end payment latency.
    pub mean_latency: Duration,
    /// Energy the sensor's hardware consumed so far (mJ).
    pub energy_mj: f64,
    /// Wire-level accounting attributed to this sensor on the medium.
    pub wire: EndpointStats,
    /// Health of the sensor as the gateway sees it.
    pub health: SensorHealth,
    /// Protocol violations the sensor has committed.
    pub violations: u32,
}

/// Result of settling every channel on the gateway's chain.
#[derive(Debug, Clone)]
pub struct GatewaySettlementReport {
    /// Per-sensor settlements, in sensor-address order.
    pub settlements: Vec<(NodeAddr, Settlement)>,
    /// Sum paid to the gateway across all channels.
    pub total_to_gateway: Wei,
    /// The gateway's final on-chain balance.
    pub gateway_balance: Wei,
    /// On-chain transactions the whole multi-channel session needed.
    pub on_chain_transactions: usize,
}

/// The multi-node driver: N sensors, one gateway, one chain, one medium.
///
/// # Example
///
/// ```
/// use tinyevm_channel::gateway::GatewayDriver;
/// use tinyevm_net::LinkConfig;
/// use tinyevm_types::Wei;
///
/// let mut driver = GatewayDriver::new(4, LinkConfig::default(), Wei::from(1_000_000u64));
/// driver.open_all().unwrap();
/// driver.run(2, Wei::from(1_000u64)).unwrap();
/// let report = driver.settle_all().unwrap();
/// assert_eq!(report.settlements.len(), 4);
/// assert_eq!(report.total_to_gateway, Wei::from(8_000u64));
/// ```
#[derive(Debug)]
pub struct GatewayDriver {
    chain: Blockchain,
    gateway: Gateway,
    sensors: Vec<SensorNode>,
    medium: SharedMedium,
    deposit: Wei,
    idle_gap: Duration,
    rounds: Vec<GatewayRoundReport>,
    health: Vec<(SensorHealth, u32)>,
    tracer: TraceHandle,
}

impl GatewayDriver {
    /// Builds a fleet of `sensor_count` sensors around one gateway, all
    /// funded on a fresh chain. Sensor addresses are 1..=N; the gateway
    /// sits at [`GATEWAY_ADDR`].
    ///
    /// # Panics
    ///
    /// Panics when `sensor_count` is 0, collides with [`GATEWAY_ADDR`], or
    /// the link configuration is invalid.
    pub fn new(sensor_count: usize, link: LinkConfig, deposit: Wei) -> Self {
        assert!(sensor_count >= 1, "a gateway needs at least one sensor");
        assert!(
            sensor_count < usize::from(GATEWAY_ADDR.value()),
            "sensor addresses would collide with the gateway's"
        );
        let gateway = Gateway::new(GATEWAY_ADDR);
        let mut medium = SharedMedium::new(gateway.node_addr(), link);
        let mut chain = Blockchain::new();
        let sensors: Vec<SensorNode> = (0..sensor_count)
            .map(|index| {
                let sensor = SensorNode::new(index);
                medium
                    .attach(sensor.node_addr())
                    .expect("sensor addresses are unique");
                // Genesis allocation: each sensor locks its own deposit.
                chain.fund(sensor.address(), deposit.saturating_add(Wei::from_eth(1)));
                sensor
            })
            .collect();
        let health = vec![(SensorHealth::Healthy, 0u32); sensor_count];
        GatewayDriver {
            chain,
            gateway,
            sensors,
            medium,
            deposit,
            idle_gap: Duration::from_millis(120),
            rounds: Vec::new(),
            health,
            tracer: TraceHandle::default(),
        }
    }

    /// Routes the whole fleet's trace output through `tracer`: every
    /// sensor endpoint and the gateway endpoint (round phases, power
    /// states, contract calls), the shared medium (per-frame events,
    /// retransmission and loss counters), and the driver's own per-round
    /// latency histogram.
    pub fn set_tracer(&mut self, tracer: TraceHandle) {
        for sensor in &mut self.sensors {
            sensor.endpoint.set_tracer(tracer.clone());
        }
        self.gateway.endpoint.set_tracer(tracer.clone());
        self.medium.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Builder form of [`GatewayDriver::set_tracer`].
    #[must_use]
    pub fn with_tracer(mut self, tracer: TraceHandle) -> Self {
        self.set_tracer(tracer);
        self
    }

    /// The chain settling all channels.
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    /// The gateway.
    pub fn gateway(&self) -> &Gateway {
        &self.gateway
    }

    /// The sensor fleet, in address order.
    pub fn sensors(&self) -> &[SensorNode] {
        &self.sensors
    }

    /// The shared medium (per-sensor wire accounting).
    pub fn medium(&self) -> &SharedMedium {
        &self.medium
    }

    /// Reports of every payment made so far, in execution order.
    pub fn rounds(&self) -> &[GatewayRoundReport] {
        &self.rounds
    }

    /// Adjusts the idle gap inserted between protocol steps.
    pub fn set_idle_gap(&mut self, gap: Duration) {
        self.idle_gap = gap;
        self.gateway.endpoint.set_idle_gap(gap);
        for sensor in &mut self.sensors {
            sensor.endpoint.set_idle_gap(gap);
        }
    }

    /// Opens every sensor's channel: publishes its template (locking the
    /// sensor's deposit), registers the payment channel on-chain, feeds the
    /// registration to both endpoints, and pumps the channel-open proposal
    /// over the medium (each side instantiates its channel contract
    /// locally).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::OutOfOrder`] when called twice, or the
    /// underlying chain / device / medium error.
    pub fn open_all(&mut self) -> Result<(), ProtocolError> {
        if self.sensors.iter().any(|sensor| sensor.channel().is_some()) {
            return Err(ProtocolError::OutOfOrder("channels are already open"));
        }
        let gateway_account = self.gateway.address();
        for index in 0..self.sensors.len() {
            let (sensor_account, sensor_addr) = {
                let sensor = &self.sensors[index];
                (sensor.address(), sensor.node_addr())
            };
            let template = self.chain.publish_template(TemplateConfig {
                sender: sensor_account,
                receiver: gateway_account,
                deposit: self.deposit,
                challenge_period_blocks: 10,
            })?;
            let channel_id = self
                .chain
                .create_payment_channel(sensor_account, template)?;
            let registration = ChannelRegistration {
                template,
                channel_id,
                sender: sensor_account,
                receiver: gateway_account,
                deposit_cap: self.deposit,
                anchor: self
                    .chain
                    .template(&template)
                    .map(|t| t.side_chain_root().hash)
                    .unwrap_or(H256::ZERO),
            };
            self.gateway
                .endpoint
                .expect_channel(sensor_addr, registration.clone())?;
            self.sensors[index]
                .endpoint
                .open(GATEWAY_ADDR, registration)?;
            self.pump(index)?;
        }
        self.pause_all();
        Ok(())
    }

    /// One off-chain payment from sensor `index` to the gateway: sensor
    /// reading uplink, signed payment uplink, verification and side-chain
    /// registration on the gateway, acknowledgement downlink, registration
    /// on the sensor.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::OutOfOrder`] before [`GatewayDriver::open_all`]
    /// or for an out-of-range index, and the underlying channel / medium /
    /// signature error otherwise.
    pub fn pay(&mut self, index: usize, amount: Wei) -> Result<GatewayRoundReport, ProtocolError> {
        if index >= self.sensors.len() {
            return Err(ProtocolError::OutOfOrder("no such sensor"));
        }
        let sensor_addr = self.sensors[index].node_addr();
        if self.health[index].0 == SensorHealth::Quarantined {
            return Err(ProtocolError::Quarantined {
                sensor: sensor_addr,
            });
        }
        let result = self.pay_inner(index, amount);
        match &result {
            Ok(_) => {
                // A clean round clears a transport-degraded state; recorded
                // violations are not forgiven.
                if self.health[index].0 == SensorHealth::Degraded {
                    self.health[index].0 = SensorHealth::Healthy;
                }
            }
            Err(error) => self.record_fault(index, error),
        }
        result
    }

    fn pay_inner(
        &mut self,
        index: usize,
        amount: Wei,
    ) -> Result<GatewayRoundReport, ProtocolError> {
        let sensor_addr = self.sensors[index].node_addr();
        self.sensors[index].endpoint.pay(GATEWAY_ADDR, amount)?;
        let log = self.pump(index)?;
        let receipt = log
            .effects
            .iter()
            .find_map(|(_, effect)| match effect {
                Effect::PaymentCompleted { receipt, .. } => Some(receipt.clone()),
                _ => None,
            })
            .ok_or(ProtocolError::OutOfOrder("payment round did not complete"))?;
        let report = GatewayRoundReport {
            sensor: sensor_addr,
            sequence: receipt.sequence,
            cumulative: receipt.cumulative,
            end_to_end_latency: receipt.end_to_end_latency,
            bytes_exchanged: log.wire_bytes(),
        };
        self.tracer.observe(
            "driver.round_latency_ms",
            receipt.end_to_end_latency.as_secs_f64() * 1_000.0,
        );
        self.rounds.push(report.clone());
        Ok(report)
    }

    /// Runs `rounds` full rounds: every sensor pays `amount` once per
    /// round, in address order. The fleet degrades gracefully: sensors
    /// whose rounds die on transport or who violate the protocol are
    /// recorded ([`GatewayDriver::sensor_health`]) and *skipped* —
    /// quarantining one sensor never blocks the rest of the fleet.
    ///
    /// # Errors
    ///
    /// Propagates the first driver-level error (out-of-order use, chain
    /// trouble) — per-sensor faults are absorbed into the health state.
    pub fn run(&mut self, rounds: usize, amount: Wei) -> Result<(), ProtocolError> {
        for _ in 0..rounds {
            for index in 0..self.sensors.len() {
                if self.health[index].0 == SensorHealth::Quarantined {
                    continue;
                }
                match self.pay(index, amount) {
                    Ok(_) => {}
                    Err(error) => match classify(&error) {
                        FaultClass::Violation | FaultClass::Transport => continue,
                        FaultClass::Fatal => return Err(error),
                    },
                }
            }
        }
        Ok(())
    }

    /// Closes and settles every channel on the gateway's chain: each
    /// sensor's endpoint signs its final state and sends it up the medium;
    /// the gateway endpoint validates each against its own channel view,
    /// verifies **all N closing signatures in one batched multi-scalar
    /// pass**, counter-signs, and the driver commits every envelope. After
    /// one shared challenge period every template is finalized.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::OutOfOrder`] before channels are open, or
    /// the chain's rejection.
    pub fn settle_all(&mut self) -> Result<GatewaySettlementReport, ProtocolError> {
        let gateway_account = self.gateway.address();
        for index in 0..self.sensors.len() {
            // Quarantined sensors are excluded: the gateway does not run
            // a close handshake with a peer it no longer trusts. Their
            // channels simply stay open (a later on-chain challenge can
            // still settle them unilaterally).
            if self.health[index].0 == SensorHealth::Quarantined {
                continue;
            }
            self.sensors[index].endpoint.close(GATEWAY_ADDR)?;
            self.pump(index)?;
        }
        // One Straus pass over all N closing signatures, then one
        // counter-signature per channel.
        let commits = self.gateway.endpoint.finalize_closes()?;
        let mut templates = Vec::with_capacity(self.sensors.len());
        for effect in commits {
            let Effect::CommitReady { peer, envelope } = effect else {
                continue;
            };
            let template = envelope.state.template;
            self.chain
                .commit_channel_state(gateway_account, template, &envelope)?;
            self.chain.start_exit(gateway_account, template)?;
            templates.push((peer, template));
        }

        // One shared challenge period covers every exit (all templates use
        // the same period), then each settles individually.
        self.chain.advance_blocks(11);
        let mut settlements = Vec::with_capacity(templates.len());
        let mut total_to_gateway = Wei::ZERO;
        for (sensor_addr, template) in templates {
            let settlement = self.chain.finalize_template(gateway_account, template)?;
            total_to_gateway = total_to_gateway.saturating_add(settlement.to_receiver);
            settlements.push((sensor_addr, settlement));
        }
        Ok(GatewaySettlementReport {
            settlements,
            total_to_gateway,
            gateway_balance: self.chain.balance(&gateway_account),
            on_chain_transactions: self.chain.transactions().len(),
        })
    }

    /// Health of sensor `index`, or `None` for an out-of-range index.
    pub fn sensor_health(&self, index: usize) -> Option<SensorHealth> {
        self.health.get(index).map(|(health, _)| *health)
    }

    /// Protocol violations sensor `index` has committed.
    pub fn sensor_violations(&self, index: usize) -> u32 {
        self.health
            .get(index)
            .map(|(_, violations)| *violations)
            .unwrap_or(0)
    }

    /// Number of currently quarantined sensors.
    pub fn quarantined_count(&self) -> usize {
        self.health
            .iter()
            .filter(|(health, _)| *health == SensorHealth::Quarantined)
            .count()
    }

    /// Installs a fault plan on one sensor's uplink/downlink (see
    /// [`tinyevm_net::FaultConfig`]); the rest of the fleet is untouched.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::OutOfOrder`] for an out-of-range index and
    /// [`ProtocolError::Medium`] / [`ProtocolError::Link`] for an invalid
    /// configuration.
    pub fn set_sensor_faults(
        &mut self,
        index: usize,
        config: tinyevm_net::FaultConfig,
    ) -> Result<(), ProtocolError> {
        let addr = self
            .sensors
            .get(index)
            .map(SensorNode::node_addr)
            .ok_or(ProtocolError::OutOfOrder("no such sensor"))?;
        self.medium.set_faults(addr, config)?;
        Ok(())
    }

    /// Removes any fault plan from one sensor's endpoint on the medium.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::OutOfOrder`] for an out-of-range index.
    pub fn clear_sensor_faults(&mut self, index: usize) -> Result<(), ProtocolError> {
        let addr = self
            .sensors
            .get(index)
            .map(SensorNode::node_addr)
            .ok_or(ProtocolError::OutOfOrder("no such sensor"))?;
        self.medium.clear_faults(addr)?;
        Ok(())
    }

    /// Books a pump error against the sensor that caused it: violations
    /// count toward quarantine, transport trouble degrades.
    fn record_fault(&mut self, index: usize, error: &ProtocolError) {
        match classify(error) {
            FaultClass::Violation => {
                let (health, violations) = &mut self.health[index];
                *violations += 1;
                self.tracer.count("gateway.violations", 1);
                if *violations >= QUARANTINE_THRESHOLD && *health != SensorHealth::Quarantined {
                    *health = SensorHealth::Quarantined;
                    let node = self.gateway.endpoint.device().name().to_string();
                    let peer = self.sensors[index].node_addr().to_string();
                    self.tracer.count("gateway.sensors_quarantined", 1);
                    self.tracer.event(|| tinyevm_trace::TraceEvent::Phase {
                        node,
                        peer,
                        phase: "quarantine".to_string(),
                        sequence: 0,
                        duration_us: 0,
                    });
                }
            }
            FaultClass::Transport => {
                if self.health[index].0 == SensorHealth::Healthy {
                    self.health[index].0 = SensorHealth::Degraded;
                }
            }
            FaultClass::Fatal => {}
        }
    }

    /// Per-sensor summary rows, in address order.
    pub fn sensor_summaries(&self) -> Vec<SensorSummary> {
        self.sensors
            .iter()
            .zip(&self.health)
            .map(|(sensor, (health, violations))| {
                let latencies = sensor.latencies();
                let mean_latency = if latencies.is_empty() {
                    Duration::ZERO
                } else {
                    latencies.iter().sum::<Duration>() / latencies.len() as u32
                };
                SensorSummary {
                    addr: sensor.node_addr(),
                    account: sensor.address(),
                    payments: sensor.channel().map(|c| c.payments_seen()).unwrap_or(0),
                    paid: sensor
                        .channel()
                        .map(|c| c.cumulative())
                        .unwrap_or(Wei::ZERO),
                    mean_latency,
                    energy_mj: sensor.device().energy_report().total_energy_mj(),
                    wire: self
                        .medium
                        .stats(sensor.node_addr())
                        .cloned()
                        .unwrap_or_default(),
                    health: *health,
                    violations: *violations,
                }
            })
            .collect()
    }

    // --- persistence -----------------------------------------------------

    /// Writes the whole multi-session state — the chain plus both
    /// endpoints of every channel — to one wire-format persistence file.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::OutOfOrder`] before channels are open and
    /// [`ProtocolError::Wire`] on filesystem failure.
    pub fn save_session(&self, path: &Path) -> Result<(), ProtocolError> {
        let mut messages = Vec::with_capacity(1 + 2 * self.sensors.len());
        messages.push(Message::ChainSnapshot(ChainSnapshot::capture(&self.chain)));
        for sensor in &self.sensors {
            let sensor_snapshot = sensor
                .endpoint
                .snapshot(GATEWAY_ADDR)
                .ok_or(ProtocolError::OutOfOrder("open_all first"))?;
            messages.push(Message::ChannelSnapshot(sensor_snapshot));
            let gateway_snapshot = self
                .gateway
                .endpoint
                .snapshot(sensor.node_addr())
                .ok_or(ProtocolError::OutOfOrder("open_all first"))?;
            messages.push(Message::ChannelSnapshot(gateway_snapshot));
        }
        persist::write_messages(path, &messages)?;
        Ok(())
    }

    /// Restores a session saved by [`GatewayDriver::save_session`] into
    /// this driver (which must have the same fleet size and device
    /// identities). The file is validated as a whole before any state
    /// changes: the chain snapshot must be present, every sensor must have
    /// a sender and a receiver snapshot agreeing on the channel, and all
    /// templates must exist on the restored chain. Measurement history
    /// ([`GatewayDriver::rounds`], per-sensor latencies) is cleared — it
    /// belongs to the process that was lost in the power cycle.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Wire`] for unreadable, incomplete,
    /// tampered or foreign files and a device error when a channel
    /// contract cannot be re-created.
    pub fn restore_session(&mut self, path: &Path) -> Result<(), ProtocolError> {
        let mut chain = None;
        let mut senders: BTreeMap<Address, ChannelSnapshot> = BTreeMap::new();
        let mut receivers: BTreeMap<Address, ChannelSnapshot> = BTreeMap::new();
        for message in persist::read_messages(path)? {
            match message {
                Message::ChainSnapshot(snapshot) => chain = Some(snapshot.restore()?),
                Message::ChannelSnapshot(snapshot) => {
                    let by_party = match snapshot.role {
                        EndpointRole::Sender => &mut senders,
                        EndpointRole::Receiver => &mut receivers,
                    };
                    by_party.insert(snapshot.sender, snapshot);
                }
                other => {
                    return Err(ProtocolError::UnexpectedMessage {
                        expected: "snapshot",
                        got: other.label(),
                    })
                }
            }
        }
        let Some(chain) = chain else {
            return Err(ProtocolError::Wire(WireError::Truncated));
        };
        if senders.len() != self.sensors.len() || receivers.len() != self.sensors.len() {
            return Err(ProtocolError::Wire(WireError::Truncated));
        }
        // Validate and decode everything before committing any state.
        let gateway_account = self.gateway.address();
        for sensor in &self.sensors {
            let account = sensor.address();
            let (Some(sender_snapshot), Some(receiver_snapshot)) =
                (senders.get(&account), receivers.get(&account))
            else {
                return Err(ProtocolError::Wire(WireError::Value(
                    "snapshot is missing a fleet device's channel",
                )));
            };
            if sender_snapshot.template != receiver_snapshot.template
                || sender_snapshot.channel_id != receiver_snapshot.channel_id
                || sender_snapshot.receiver != receiver_snapshot.receiver
                || sender_snapshot.deposit_cap != receiver_snapshot.deposit_cap
            {
                return Err(ProtocolError::Wire(WireError::Value(
                    "endpoint snapshots describe different channels",
                )));
            }
            if sender_snapshot.receiver != gateway_account {
                return Err(ProtocolError::Wire(WireError::Value(
                    "snapshot belongs to a different gateway",
                )));
            }
            if chain.template(&sender_snapshot.template).is_none() {
                return Err(ProtocolError::Wire(WireError::Value(
                    "snapshot template is not on the restored chain",
                )));
            }
            PaymentChannel::restore(sender_snapshot)?;
            PaymentChannel::restore(receiver_snapshot)?;
        }

        // Commit. Measurement history (round reports and per-sensor
        // latencies) describes the life of *this* process, not the
        // restored session — a power cycle loses it, so it is cleared
        // rather than left to mix stale numbers with restored channels.
        // Device meters and medium statistics likewise keep counting from
        // boot; the contract re-creations below are part of that boot
        // cost, exactly as on real flash-restored hardware.
        self.chain = chain;
        self.rounds.clear();
        // Health is the gateway process's volatile protection state; a
        // power cycle starts every sensor back at Healthy.
        self.health = vec![(SensorHealth::Healthy, 0); self.sensors.len()];
        let stale_peers: Vec<NodeAddr> = self.gateway.endpoint.peers().collect();
        for peer in stale_peers {
            self.gateway.endpoint.drop_session(peer);
        }
        for sensor in &mut self.sensors {
            let account = sensor.address();
            let sensor_addr = sensor.node_addr();
            let sender_snapshot = &senders[&account];
            let receiver_snapshot = &receivers[&account];
            sensor.endpoint.drop_session(GATEWAY_ADDR);
            sensor
                .endpoint
                .install_snapshot(GATEWAY_ADDR, sender_snapshot)?;
            sensor.endpoint.ensure_contract(GATEWAY_ADDR)?;
            self.gateway
                .endpoint
                .install_snapshot(sensor_addr, receiver_snapshot)?;
            self.gateway.endpoint.ensure_contract(sensor_addr)?;
        }
        Ok(())
    }

    // --- internals -------------------------------------------------------

    /// Drains the outboxes of sensor `index` and the gateway through the
    /// shared medium — one sensor owning the whole medium for its turn.
    ///
    /// This is exactly the contention-free single-slot schedule: the same
    /// shared pump (`pump_contention_free`) that `tinyevm-sim`'s
    /// `FleetScheduler` runs per slot in its single-slot configuration, so
    /// the legacy lockstep driver and the event scheduler stay
    /// byte-identical (pinned by the driver-equivalence goldens).
    fn pump(&mut self, index: usize) -> Result<PumpLog, ProtocolError> {
        crate::protocol::pump_contention_free(
            &mut self.medium,
            &mut self.sensors[index].endpoint,
            &mut self.gateway.endpoint,
        )
    }

    /// Inserts the configured idle gap on every device (LPM2).
    fn pause_all(&mut self) {
        for sensor in &mut self.sensors {
            sensor.endpoint.wait(self.idle_gap);
        }
        self.gateway.endpoint.wait(self.idle_gap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn driver(sensors: usize) -> GatewayDriver {
        GatewayDriver::new(sensors, LinkConfig::default(), Wei::from(1_000_000u64))
    }

    #[test]
    fn fleet_has_distinct_identities_and_addresses() {
        let d = driver(4);
        let mut accounts: Vec<Address> = d.sensors().iter().map(|s| s.address()).collect();
        accounts.push(d.gateway().address());
        accounts.sort();
        accounts.dedup();
        assert_eq!(accounts.len(), 5, "all payment identities are distinct");
        let addrs: Vec<NodeAddr> = d.sensors().iter().map(|s| s.node_addr()).collect();
        assert_eq!(
            addrs,
            vec![
                NodeAddr::new(1),
                NodeAddr::new(2),
                NodeAddr::new(3),
                NodeAddr::new(4)
            ]
        );
        assert_eq!(d.gateway().node_addr(), GATEWAY_ADDR);
    }

    #[test]
    fn payments_must_wait_for_open_all() {
        let mut d = driver(2);
        assert!(matches!(
            d.pay(0, Wei::from(1u64)),
            Err(ProtocolError::OutOfOrder(_))
        ));
        d.open_all().unwrap();
        assert!(matches!(d.open_all(), Err(ProtocolError::OutOfOrder(_))));
        assert!(matches!(
            d.pay(9, Wei::from(1u64)),
            Err(ProtocolError::OutOfOrder(_))
        ));
    }

    #[test]
    fn four_sensors_pay_and_settle_on_one_chain() {
        let mut d = driver(4);
        d.open_all().unwrap();
        d.run(3, Wei::from(2_500u64)).unwrap();
        assert_eq!(d.rounds().len(), 12);

        // Every sensor's channel and both side-chain logs advanced.
        for sensor in d.sensors() {
            assert_eq!(sensor.channel().unwrap().payments_seen(), 3);
            assert_eq!(sensor.side_chain().len(), 3);
            assert!(sensor.side_chain().verify());
            assert_eq!(sensor.ack_signatures().len(), 3);
            let gateway_log = d.gateway().side_chain_for(sensor.node_addr()).unwrap();
            assert_eq!(gateway_log.len(), 3);
            assert!(gateway_log.verify());
        }

        let report = d.settle_all().unwrap();
        assert_eq!(report.settlements.len(), 4);
        assert_eq!(report.total_to_gateway, Wei::from(4 * 3 * 2_500u64));
        assert_eq!(report.gateway_balance, report.total_to_gateway);
        for (_, settlement) in &report.settlements {
            assert!(!settlement.fraud_detected);
            assert_eq!(settlement.to_receiver, Wei::from(7_500u64));
        }
        // Each sensor got its unspent deposit back.
        for sensor in d.sensors() {
            assert!(d.chain().balance(&sensor.address()) >= Wei::from(992_500u64));
        }
    }

    #[test]
    fn per_sensor_statistics_are_reported_and_sum_to_the_medium() {
        let mut d = driver(4);
        d.open_all().unwrap();
        d.run(2, Wei::from(1_000u64)).unwrap();
        let summaries = d.sensor_summaries();
        assert_eq!(summaries.len(), 4);
        let mut wire_total = 0u64;
        for summary in &summaries {
            assert_eq!(summary.payments, 2);
            assert_eq!(summary.paid, Wei::from(2_000u64));
            assert!(summary.mean_latency > Duration::from_millis(300));
            assert!(summary.energy_mj > 1.0);
            assert!(summary.wire.uplink_wire_bytes > 0);
            assert!(summary.wire.downlink_wire_bytes > 0);
            wire_total += summary.wire.wire_bytes();
        }
        assert_eq!(wire_total, d.medium().total_wire_bytes());
    }

    #[test]
    fn scenario_is_deterministic_per_seed() {
        let run = || {
            let mut d = driver(4);
            d.open_all().unwrap();
            d.run(2, Wei::from(1_000u64)).unwrap();
            d.sensor_summaries()
        };
        assert_eq!(run(), run(), "same configuration, byte-identical stats");
    }

    #[test]
    fn lossy_medium_still_settles_every_channel() {
        let mut link = LinkConfig::default().with_loss(0.15, 7);
        link.max_retries = 16;
        let mut d = GatewayDriver::new(5, link, Wei::from(100_000u64));
        d.open_all().unwrap();
        d.run(2, Wei::from(700u64)).unwrap();
        let report = d.settle_all().unwrap();
        assert_eq!(report.total_to_gateway, Wei::from(5 * 2 * 700u64));
        // Losses happened somewhere (retransmissions are per-sensor).
        let retransmissions: u64 = d
            .sensor_summaries()
            .iter()
            .map(|s| s.wire.retransmissions)
            .sum();
        assert!(retransmissions > 0);
    }

    #[test]
    fn multi_session_state_survives_a_power_cycle() {
        let mut path = std::env::temp_dir();
        path.push(format!("tinyevm-gateway-{}.snap", std::process::id()));
        let mut d = driver(3);
        d.open_all().unwrap();
        d.run(2, Wei::from(500u64)).unwrap();
        let chain_root = d.chain().state_root();
        d.save_session(&path).unwrap();

        let mut resumed = driver(3);
        resumed.restore_session(&path).unwrap();
        assert_eq!(resumed.chain().state_root(), chain_root);
        for (restored, original) in resumed.sensors().iter().zip(d.sensors()) {
            assert_eq!(
                restored.channel().unwrap().cumulative(),
                original.channel().unwrap().cumulative()
            );
            assert!(restored.side_chain().verify());
        }
        // Measurement history belongs to the lost process: the restored
        // driver starts its round log and latencies empty even though the
        // restored channels carry payments.
        assert!(resumed.rounds().is_empty());
        assert!(resumed.sensors().iter().all(|s| s.latencies().is_empty()));
        // The fleet keeps paying and settles for everything.
        resumed.pay(0, Wei::from(500u64)).unwrap();
        let report = resumed.settle_all().unwrap();
        assert_eq!(report.total_to_gateway, Wei::from(3 * 2 * 500 + 500u64));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_or_incomplete_session_files_are_rejected() {
        let mut path = std::env::temp_dir();
        path.push(format!("tinyevm-gateway-bad-{}.snap", std::process::id()));
        let mut d = driver(2);
        d.open_all().unwrap();
        d.pay(0, Wei::from(100u64)).unwrap();
        d.save_session(&path).unwrap();

        // A fleet of a different size must refuse the file.
        let mut wrong_size = driver(3);
        assert!(matches!(
            wrong_size.restore_session(&path),
            Err(ProtocolError::Wire(_))
        ));

        // A chain-snapshot-only file is incomplete.
        persist::write_messages(
            &path,
            &[Message::ChainSnapshot(ChainSnapshot::capture(d.chain()))],
        )
        .unwrap();
        let mut resumed = driver(2);
        assert!(matches!(
            resumed.restore_session(&path),
            Err(ProtocolError::Wire(WireError::Truncated))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn repeated_violations_quarantine_one_sensor_without_blocking_the_fleet() {
        let mut d = GatewayDriver::new(4, LinkConfig::default(), Wei::from(10_000u64));
        d.open_all().unwrap();
        d.run(1, Wei::from(2_000u64)).unwrap();
        // Sensor 1 repeatedly tries to overdraw its deposit — a channel
        // rule violation, refused every time with a typed error.
        for _ in 0..QUARANTINE_THRESHOLD {
            let error = d.pay(1, Wei::from(50_000u64)).unwrap_err();
            assert!(matches!(error, ProtocolError::Channel(_)));
        }
        assert_eq!(d.sensor_health(1), Some(SensorHealth::Quarantined));
        assert_eq!(d.sensor_violations(1), QUARANTINE_THRESHOLD);
        assert_eq!(d.quarantined_count(), 1);
        // Further rounds with the quarantined sensor are refused outright.
        assert!(matches!(
            d.pay(1, Wei::from(100u64)),
            Err(ProtocolError::Quarantined { sensor }) if sensor == NodeAddr::new(2)
        ));
        // The rest of the fleet keeps paying (run skips the quarantined
        // sensor) and settles normally.
        d.run(1, Wei::from(2_000u64)).unwrap();
        let report = d.settle_all().unwrap();
        assert_eq!(report.settlements.len(), 3, "quarantined sensor excluded");
        // Healthy sensors paid two rounds, the quarantined one only the
        // first — and its first-round payment is NOT settled (its channel
        // stays open for a later unilateral challenge).
        assert_eq!(report.total_to_gateway, Wei::from(3 * 2 * 2_000u64));
        let summaries = d.sensor_summaries();
        assert_eq!(summaries[1].health, SensorHealth::Quarantined);
        assert_eq!(summaries[1].violations, QUARANTINE_THRESHOLD);
        assert!(summaries
            .iter()
            .enumerate()
            .all(|(i, s)| i == 1 || s.health == SensorHealth::Healthy));
    }

    #[test]
    fn a_partitioned_sensor_degrades_and_recovers() {
        use tinyevm_net::{FaultConfig, MessageWindow};
        let mut d = driver(3);
        d.open_all().unwrap();
        d.run(1, Wei::from(500u64)).unwrap();
        // Partition sensor 0 permanently; its round aborts after the retry
        // budget and the health state records the degradation.
        d.set_sensor_faults(
            0,
            FaultConfig {
                partition: Some(MessageWindow {
                    from_message: 0,
                    to_message: u64::MAX,
                }),
                ..FaultConfig::quiet(5)
            },
        )
        .unwrap();
        d.run(1, Wei::from(500u64)).unwrap();
        assert_eq!(d.sensor_health(0), Some(SensorHealth::Degraded));
        assert_eq!(d.sensor_violations(0), 0, "transport trouble never counts");
        // The other sensors were unaffected.
        assert_eq!(d.sensor_health(1), Some(SensorHealth::Healthy));
        // The partition lifts; the next clean round restores the sensor.
        d.clear_sensor_faults(0).unwrap();
        d.run(1, Wei::from(500u64)).unwrap();
        assert_eq!(d.sensor_health(0), Some(SensorHealth::Healthy));
        let report = d.settle_all().unwrap();
        assert_eq!(report.settlements.len(), 3);
        // Nothing was lost: sensor 0 had already signed the partitioned
        // round's payment, so its cumulative value folded into the next
        // successful payment and the gateway settles for all 3 × 3 rounds.
        assert_eq!(report.total_to_gateway, Wei::from(3 * 3 * 500u64));
    }

    #[test]
    fn settlement_batch_verifies_every_close_signature_in_one_pass() {
        // The gateway device's activity log shows exactly one batched
        // verification covering all N channels, followed by N
        // counter-signatures.
        let mut d = driver(3);
        d.open_all().unwrap();
        d.run(1, Wei::from(400u64)).unwrap();
        d.settle_all().unwrap();
        let batch_verifies = d
            .gateway()
            .device()
            .activities()
            .iter()
            .filter(|a| a.label == "batch verify payloads")
            .count();
        assert_eq!(batch_verifies, 1, "one Straus pass for the whole fleet");
    }
}
