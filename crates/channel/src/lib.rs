//! Off-chain payment channels for low-power IoT devices — the TinyEVM
//! protocol layer.
//!
//! This crate implements the three-phase flow of the paper's Figure 2 on top
//! of the other substrates:
//!
//! 1. **On-chain smart contract** — a [`TemplateContract`]
//!    (`tinyevm-chain`) is published with the sender's deposit.
//! 2. **Off-chain smart contract** — the two devices generate a payment
//!    channel locally from the template ([`contracts`] holds the actual EVM
//!    bytecode, including the IoT-opcode sensor read in the constructor),
//!    then exchange [`SignedPayment`]s ordered by a logical clock, each one
//!    a stand-alone artifact that could claim money on-chain. Every state
//!    transition is appended to the node's hash-linked [`SideChainLog`].
//! 3. **On-chain commit** — either party closes the channel, both sign the
//!    final [`ChannelState`](tinyevm_chain::ChannelState), and the commit /
//!    challenge / exit machinery of the chain settles it.
//!
//! [`ProtocolDriver`] wires two simulated devices, a radio link and the
//! chain together and runs the whole flow, producing the timing and energy
//! measurements behind the paper's Table IV and Figure 5 and the headline
//! "584 ms per off-chain payment". Every protocol step travels as a
//! `tinyevm_wire::Message`: encoded on the sending device, fragmented into
//! 802.15.4 frames by `tinyevm-net`, reassembled and decoded on the far
//! side — and sessions can be persisted to disk and resumed after a power
//! cycle ([`ProtocolDriver::save_session`] /
//! [`ProtocolDriver::restore_session`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod contracts;
pub mod gateway;
pub mod payment;
pub mod protocol;
pub mod sidechain;

pub use channel::{ChannelConfig, ChannelError, ChannelRole, ChannelStatus, PaymentChannel};
pub use gateway::{
    Gateway, GatewayDriver, GatewayRoundReport, GatewaySettlementReport, SensorNode, SensorSummary,
};
pub use payment::{PaymentError, SignedPayment};
pub use protocol::{OffChainNode, ProtocolDriver, ProtocolError, RoundReport, SettlementReport};
pub use sidechain::{SideChainEntry, SideChainLog};

pub use tinyevm_chain::TemplateContract;
