//! Off-chain payment channels for low-power IoT devices — the TinyEVM
//! protocol layer.
//!
//! This crate implements the three-phase flow of the paper's Figure 2 on top
//! of the other substrates:
//!
//! 1. **On-chain smart contract** — a [`TemplateContract`]
//!    (`tinyevm-chain`) is published with the sender's deposit.
//! 2. **Off-chain smart contract** — the two devices generate a payment
//!    channel locally from the template ([`contracts`] holds the actual EVM
//!    bytecode, including the IoT-opcode sensor read in the constructor),
//!    then exchange [`SignedPayment`]s ordered by a logical clock, each one
//!    a stand-alone artifact that could claim money on-chain. Every state
//!    transition is appended to the node's hash-linked [`SideChainLog`].
//! 3. **On-chain commit** — either party closes the channel, both sign the
//!    final [`ChannelState`](tinyevm_chain::ChannelState), and the commit /
//!    challenge / exit machinery of the chain settles it.
//!
//! The protocol itself lives in the sans-IO [`endpoint`] module: a
//! [`ChannelEndpoint`] per node owns that node's keys, channel state
//! machines, side-chain logs and device accounting, consumes decoded
//! [`tinyevm_wire::Message`]s and local intents, and emits messages and
//! typed effects — it never touches a link, a medium or a chain. Two
//! endpoints can be driven with nothing but an in-memory message queue.
//!
//! [`ProtocolDriver`] (one sender, one receiver, one `tinyevm_net::Link`)
//! and [`GatewayDriver`] (N sensors multiplexed by one gateway endpoint
//! over a `tinyevm_net::SharedMedium`) are thin *pumps* around those
//! endpoints: they own the chain and the transport, shuttle encoded
//! messages, and collect the timing and energy measurements behind the
//! paper's Table IV / Figure 5 and the headline "584 ms per off-chain
//! payment". Sessions persist to disk and resume after a power cycle
//! ([`ProtocolDriver::save_session`] /
//! [`ProtocolDriver::restore_session`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod contracts;
pub mod endpoint;
pub mod gateway;
pub mod payment;
pub mod protocol;
pub mod sidechain;

pub use channel::{ChannelConfig, ChannelError, ChannelRole, ChannelStatus, PaymentChannel};
pub use endpoint::{
    ChannelEndpoint, ChannelRegistration, Effect, EndpointError, EndpointProfile, Envelope,
    PaymentReceipt, RetryPolicy,
};
pub use gateway::{
    Gateway, GatewayDriver, GatewayRoundReport, GatewaySettlementReport, SensorHealth, SensorNode,
    SensorSummary, QUARANTINE_THRESHOLD,
};
pub use payment::{PaymentError, SignedPayment};
pub use protocol::{
    pump_contention_free, CrashSchedule, OffChainNode, ProtocolDriver, ProtocolError, PumpLog,
    RoundReport, SettlementReport, Transfer,
};
pub use sidechain::{SideChainEntry, SideChainLog};

/// Link-layer node address, re-exported so transport-free endpoint code
/// needs no `tinyevm-net` import.
pub use tinyevm_net::NodeAddr;

pub use tinyevm_chain::TemplateContract;
