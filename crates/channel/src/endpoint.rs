//! Sans-IO channel endpoints: one protocol state machine per node.
//!
//! A [`ChannelEndpoint`] is everything one node of the paper's deployment
//! knows: its own [`Device`] (keys, meter, sensors, local contract world),
//! its payment-channel state machines, its side-chain logs, and an outbox
//! of wire [`Message`]s it wants transmitted. It never touches a `Link`, a
//! `SharedMedium`, or a `Blockchain` — the host drives it through a small
//! poll-based surface:
//!
//! * **Local intents** — [`ChannelEndpoint::open`],
//!   [`ChannelEndpoint::pay`], [`ChannelEndpoint::close`].
//! * **Chain observations** — [`ChannelEndpoint::expect_channel`] tells a
//!   receiving endpoint what its chain watcher saw registered on-chain;
//!   proposals from the peer are validated against it.
//! * **Peer input** — [`ChannelEndpoint::handle_message`] (a decoded
//!   [`Message`]) or [`ChannelEndpoint::handle_wire`] (raw bytes, decode
//!   charged to the device). Both return typed [`Effect`]s describing what
//!   the host must act on; peer-controlled data is never trusted and never
//!   panics the endpoint.
//! * **Transmission** — [`ChannelEndpoint::poll_transmit`] pops the next
//!   [`Envelope`]; the transport reports the actual radio cost back through
//!   [`ChannelEndpoint::account_transmitted`] /
//!   [`ChannelEndpoint::account_received`], and idle waits through
//!   [`ChannelEndpoint::wait`].
//!
//! One endpoint can terminate many channels: the gateway of the multi-node
//! scenario is a single receiver-role endpoint multiplexing N sensor peers
//! keyed by [`NodeAddr`]. The sender-role endpoint is shared verbatim
//! between the two-party `ProtocolDriver` and the fleet `GatewayDriver` —
//! the duplicated sender logic the old monolithic drivers carried lives
//! here once.
//!
//! Endpoints communicate *only* through `Message` values, so two of them
//! can be driven with a plain in-memory queue and no radio at all:
//!
//! ```
//! use tinyevm_channel::endpoint::{ChannelEndpoint, ChannelRegistration};
//! use tinyevm_channel::NodeAddr;
//! use tinyevm_types::{Wei, H256, Address};
//!
//! /// Moves queued messages between the two endpoints until both idle.
//! fn pump(a: &mut ChannelEndpoint, b: &mut ChannelEndpoint) {
//!     loop {
//!         let (from, envelope) = if let Some(e) = a.poll_transmit() {
//!             (a.addr(), e)
//!         } else if let Some(e) = b.poll_transmit() {
//!             (b.addr(), e)
//!         } else {
//!             break;
//!         };
//!         let target = if envelope.to == a.addr() { &mut *a } else { &mut *b };
//!         target.handle_message(from, envelope.message).unwrap();
//!     }
//! }
//!
//! let (car, lot) = (NodeAddr::new(1), NodeAddr::new(2));
//! let mut sender = ChannelEndpoint::two_party_sender("car", car);
//! let mut receiver = ChannelEndpoint::two_party_receiver("lot", lot);
//! let registration = ChannelRegistration {
//!     template: Address::from_low_u64(0xAA),
//!     channel_id: 1,
//!     sender: sender.account(),
//!     receiver: receiver.account(),
//!     deposit_cap: Wei::from(1_000u64),
//!     anchor: H256::ZERO,
//! };
//! receiver.expect_channel(car, registration.clone()).unwrap();
//! sender.open(lot, registration).unwrap();
//! pump(&mut sender, &mut receiver);
//! sender.pay(lot, Wei::from(100u64)).unwrap();
//! pump(&mut sender, &mut receiver);
//! assert_eq!(receiver.channel(car).unwrap().cumulative(), Wei::from(100u64));
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

use tinyevm_analysis::{analyze, AnalysisError, GasCertificate, Verdict};
use tinyevm_chain::{ChannelState, CommitEnvelope};
use tinyevm_crypto::secp256k1::Signature;
use tinyevm_device::{Device, RadioDirection, SimTime};
use tinyevm_net::NodeAddr;
use tinyevm_trace::{TraceEvent, TraceHandle};
use tinyevm_types::{Address, Wei, H256, U256};
use tinyevm_wire::{
    ChannelOpen, ChannelSnapshot, CloseRequest, EndpointRole, Message, PaymentAck, SensorReading,
    SignedPayment, WireError,
};

use crate::channel::{ChannelConfig, ChannelError, ChannelRole, PaymentChannel};
use crate::contracts;
use crate::sidechain::SideChainLog;

/// Errors a [`ChannelEndpoint`] reports. Every rejection of peer input is
/// one of these — endpoints never panic on wire data.
#[derive(Debug)]
#[non_exhaustive]
pub enum EndpointError {
    /// A channel rule was violated (stale sequence, deposit cap, role...).
    Channel(ChannelError),
    /// Peer bytes failed to decode.
    Wire(WireError),
    /// The device could not run the channel contract.
    Device(String),
    /// A message arrived from an address with no channel or expectation.
    UnknownPeer(NodeAddr),
    /// A locally driven step happened out of order.
    OutOfOrder(&'static str),
    /// A signature did not verify against the configured counterparty.
    BadSignature,
    /// A structurally valid message arrived in a state that cannot use it.
    UnexpectedMessage {
        /// What the current protocol state could have used.
        expected: &'static str,
        /// What actually arrived.
        got: &'static str,
    },
    /// The peer's proposal contradicts what the chain registered.
    ProposalMismatch(&'static str),
    /// The static analyzer refused a contract template before the device
    /// spent any constructor cycles on it.
    ContractRejected(AnalysisError),
    /// The contract template's statically proven worst-case CPU energy
    /// exceeds this endpoint's deploy budget — or no bound could be proven
    /// at all (only on endpoints built with
    /// [`ChannelEndpoint::with_deploy_energy_budget_mj`]).
    EnergyBudgetExceeded {
        /// The proven worst-case CPU energy in millijoules, when the
        /// analyzer produced a bound; `None` when the cost is unbounded or
        /// uncertifiable.
        required_mj: Option<f64>,
        /// The endpoint's configured budget in millijoules.
        budget_mj: f64,
    },
    /// The retransmission budget for the in-flight protocol round ran out;
    /// the round was abandoned and the endpoint returned to idle. Committed
    /// channel state (accepted payments, the side-chain log, collected
    /// signatures) is untouched, and the next completed round folds the
    /// abandoned round's cumulative value back in.
    RoundAborted {
        /// Peer whose round was abandoned.
        peer: NodeAddr,
        /// Transmission attempts that were made (first send included).
        attempts: u32,
    },
}

impl core::fmt::Display for EndpointError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EndpointError::Channel(error) => write!(f, "channel error: {error}"),
            EndpointError::Wire(error) => write!(f, "wire format error: {error}"),
            EndpointError::Device(message) => write!(f, "device error: {message}"),
            EndpointError::UnknownPeer(addr) => write!(f, "no channel with peer {addr}"),
            EndpointError::OutOfOrder(step) => write!(f, "endpoint step out of order: {step}"),
            EndpointError::BadSignature => write!(f, "signature verification failed"),
            EndpointError::UnexpectedMessage { expected, got } => {
                write!(f, "expected a {expected} message, got {got}")
            }
            EndpointError::ProposalMismatch(what) => {
                write!(f, "peer proposal contradicts the chain: {what}")
            }
            EndpointError::ContractRejected(error) => {
                write!(f, "static analysis rejected the contract template: {error}")
            }
            EndpointError::EnergyBudgetExceeded {
                required_mj,
                budget_mj,
            } => match required_mj {
                Some(required) => write!(
                    f,
                    "contract needs up to {required:.3} mJ of CPU energy, budget is {budget_mj:.3} mJ"
                ),
                None => write!(
                    f,
                    "contract has no provable worst-case energy bound (budget is {budget_mj:.3} mJ)"
                ),
            },
            EndpointError::RoundAborted { peer, attempts } => {
                write!(
                    f,
                    "round with {peer} aborted after {attempts} transmission attempts"
                )
            }
        }
    }
}

impl std::error::Error for EndpointError {}

impl From<ChannelError> for EndpointError {
    fn from(error: ChannelError) -> Self {
        EndpointError::Channel(error)
    }
}

impl From<WireError> for EndpointError {
    fn from(error: WireError) -> Self {
        EndpointError::Wire(error)
    }
}

/// What a node's chain watcher observed registered on-chain for a channel —
/// the typed chain observation an endpoint consumes instead of reading a
/// `Blockchain` itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelRegistration {
    /// On-chain template address.
    pub template: Address,
    /// Channel id issued by the template's logical clock.
    pub channel_id: u64,
    /// The paying party's account.
    pub sender: Address,
    /// The receiving party's account.
    pub receiver: Address,
    /// Deposit cap bounding the channel's cumulative payments.
    pub deposit_cap: Wei,
    /// The template's side-chain root, anchoring both parties' logs.
    pub anchor: H256,
}

/// An outbound message and its destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Link-layer address of the peer this message is for.
    pub to: NodeAddr,
    /// The message itself.
    pub message: Message,
}

/// A completed payment round, as measured on the paying endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaymentReceipt {
    /// Sequence number of the acknowledged payment.
    pub sequence: u64,
    /// Cumulative amount owed to the receiver afterwards.
    pub cumulative: Wei,
    /// Wall-clock from the pay intent until the acknowledgement was
    /// verified and registered (device clock).
    pub end_to_end_latency: Duration,
    /// Time spent signing the payment.
    pub sign_time: Duration,
    /// Time spent registering the payment on the local side-chain.
    pub register_time: Duration,
    /// Time this endpoint's own hardware was active for the round (crypto +
    /// contract + its share of the radio), excluding waits for the peer.
    pub active_time: Duration,
}

/// Things the host must know about or act on, returned by every input.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Effect {
    /// A channel with `peer` is open and ready for payments.
    ChannelOpened {
        /// The peer on the other end of the channel.
        peer: NodeAddr,
        /// The channel id.
        channel_id: u64,
        /// Time the local channel-contract constructor took.
        create_time: Duration,
    },
    /// (Receiver) A payment was verified, applied and acknowledged.
    PaymentAccepted {
        /// The paying peer.
        peer: NodeAddr,
        /// Sequence number of the accepted payment.
        sequence: u64,
        /// Cumulative amount now owed by that peer.
        cumulative: Wei,
        /// Local processing time (verify + register + sign the ack) — the
        /// interval the payer's radio had nothing to listen to.
        processing: Duration,
    },
    /// (Sender) The acknowledgement arrived and verified; the round is
    /// complete.
    PaymentCompleted {
        /// The receiving peer.
        peer: NodeAddr,
        /// The round's measurements.
        receipt: PaymentReceipt,
    },
    /// (Receiver) A close request was validated against the local channel
    /// view and staged for batch signature verification.
    CloseStaged {
        /// The closing peer.
        peer: NodeAddr,
        /// Close requests staged so far.
        staged: usize,
    },
    /// (Receiver) A dual-signed final state is ready to go on-chain; the
    /// host owns the chain interaction.
    CommitReady {
        /// The closing peer.
        peer: NodeAddr,
        /// The envelope to commit.
        envelope: CommitEnvelope,
    },
}

/// Protocol-profile knobs distinguishing the paper's two deployments. The
/// two-party smart-parking session exchanges sensor readings in both
/// directions and paces both devices between steps; the fleet scenario
/// sends only the sensor's reading uplink and leaves pacing to the sensor.
#[derive(Debug, Clone)]
pub struct EndpointProfile {
    /// Peripheral this node reads and transmits.
    pub reading_peripheral: u64,
    /// Sender: exchange readings during the open handshake.
    pub handshake_readings: bool,
    /// Sender: wait for the peer's reading and fold it into the payment's
    /// sensor hash.
    pub expect_peer_reading: bool,
    /// Receiver: answer an incoming reading with a reading of its own.
    pub reply_with_reading: bool,
    /// Receiver: idle for the gap after acknowledging a payment.
    pub pace_after_ack: bool,
    /// Idle gap inserted between protocol steps (TSCH slot waiting /
    /// application pacing), spent in LPM2.
    pub idle_gap: Duration,
}

impl EndpointProfile {
    /// The two-party smart-parking profile for the given role.
    pub fn two_party(role: ChannelRole) -> Self {
        EndpointProfile {
            reading_peripheral: match role {
                ChannelRole::Sender => tinyevm_device::sensors::peripheral_id::TEMPERATURE,
                ChannelRole::Receiver => tinyevm_device::sensors::peripheral_id::OCCUPANCY,
            },
            handshake_readings: true,
            expect_peer_reading: true,
            reply_with_reading: true,
            pace_after_ack: true,
            idle_gap: Duration::from_millis(120),
        }
    }

    /// The fleet (N sensors, one gateway) profile for the given role.
    pub fn fleet(role: ChannelRole) -> Self {
        EndpointProfile {
            reading_peripheral: match role {
                ChannelRole::Sender => tinyevm_device::sensors::peripheral_id::TEMPERATURE,
                ChannelRole::Receiver => tinyevm_device::sensors::peripheral_id::OCCUPANCY,
            },
            handshake_readings: false,
            expect_peer_reading: false,
            reply_with_reading: false,
            pace_after_ack: false,
            idle_gap: Duration::from_millis(120),
        }
    }
}

/// What kind of message the last [`ChannelEndpoint::poll_transmit`] handed
/// to the transport — some completions trigger pacing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutKind {
    Reading,
    OpenReply,
    Proposal,
    Payment,
    Ack,
    CloseRequest,
}

#[derive(Debug, Clone)]
struct Outgoing {
    to: NodeAddr,
    message: Message,
    kind: OutKind,
}

/// Retransmission policy for in-flight protocol rounds: how often the last
/// transmitted message is re-sent (with capped exponential backoff on the
/// virtual clock) before the round is abandoned with
/// [`EndpointError::RoundAborted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total transmission attempts per message, the first send included.
    pub max_attempts: u32,
    /// Backoff before the first retransmission; doubles per attempt.
    pub base_backoff: Duration,
    /// Ceiling for the doubled backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(800),
        }
    }
}

/// The last envelope handed to the transport, kept for retransmission.
#[derive(Debug)]
struct RetrySlot {
    outgoing: Outgoing,
    attempts: u32,
    /// Set while a retransmitted copy sits at the front of the outbox, so
    /// the next `poll_transmit` keeps the attempt count instead of starting
    /// a fresh slot.
    requeued: bool,
    /// Virtual-clock deadline of the current backoff window: the requeued
    /// copy must not be retransmitted before this point. `None` until the
    /// first transport error or stall arms a backoff.
    deadline: Option<SimTime>,
}

/// Sender-side position inside one channel's protocol round.
#[derive(Debug)]
enum Pending {
    Idle,
    /// Open handshake: own reading sent, peer's reading outstanding.
    OpenAwaitingReading,
    /// Payment round: peer's reading outstanding before signing.
    AwaitingPeerReading {
        amount: Wei,
        own_value: U256,
        started_at: Duration,
    },
    /// Payment signed and transmitted; acknowledgement outstanding.
    AwaitingAck {
        payment: SignedPayment,
        payment_wire_len: usize,
        sign_time: Duration,
        started_at: Duration,
        /// Device clock when the signed payment left for the outbox (the
        /// boundary between the round's payment and acknowledgement phases).
        signed_at: Duration,
    },
}

/// A close request validated against the local channel view, parked until
/// the host asks for the batched signature check.
#[derive(Debug)]
struct StagedClose {
    state: ChannelState,
    public_key: tinyevm_crypto::secp256k1::PublicKey,
    signature: Signature,
}

/// Everything this endpoint knows about one channel peer.
#[derive(Debug)]
struct PeerSession {
    registration: ChannelRegistration,
    channel: PaymentChannel,
    contract: Option<Address>,
    log: SideChainLog,
    peer_acks: Vec<Signature>,
    latencies: Vec<Duration>,
    pending: Pending,
    staged_close: Option<StagedClose>,
    /// Digest of the last successfully handled wire message from this peer
    /// — duplicated or replayed copies are suppressed idempotently.
    last_inbound: Option<[u8; 32]>,
    /// The messages queued while handling that last inbound message; a
    /// suppressed duplicate re-queues these verbatim (no re-signing).
    last_reply: Vec<Outgoing>,
}

/// One node's half of the off-chain protocol — see the module docs.
#[derive(Debug)]
pub struct ChannelEndpoint {
    device: Device,
    addr: NodeAddr,
    role: ChannelRole,
    profile: EndpointProfile,
    sessions: BTreeMap<NodeAddr, PeerSession>,
    expected: BTreeMap<NodeAddr, ChannelRegistration>,
    outbox: VecDeque<Outgoing>,
    in_flight: Option<OutKind>,
    retry: RetryPolicy,
    last_sent: Option<RetrySlot>,
    tracer: TraceHandle,
    /// When set, contract templates must carry a static worst-case CPU
    /// energy proof within this many millijoules to be deployed.
    energy_budget_mj: Option<f64>,
}

impl ChannelEndpoint {
    /// Builds an endpoint from explicit parts.
    pub fn new(
        device: Device,
        addr: NodeAddr,
        role: ChannelRole,
        profile: EndpointProfile,
    ) -> Self {
        ChannelEndpoint {
            device,
            addr,
            role,
            profile,
            sessions: BTreeMap::new(),
            expected: BTreeMap::new(),
            outbox: VecDeque::new(),
            in_flight: None,
            retry: RetryPolicy::default(),
            last_sent: None,
            tracer: TraceHandle::default(),
            energy_budget_mj: None,
        }
    }

    /// Builder: refuse to deploy any contract template without a static
    /// worst-case CPU energy proof of at most `budget_mj` millijoules.
    ///
    /// The bound is derived from the analyzer's
    /// [`GasCertificate::Bounded`] MCU-cycle bound via the device's clock
    /// and active-CPU current at the meter's supply voltage — a battery
    /// admission gate: a sensor node can refuse code it cannot afford to
    /// run even once in the worst case.
    #[must_use]
    pub fn with_deploy_energy_budget_mj(mut self, budget_mj: f64) -> Self {
        self.energy_budget_mj = Some(budget_mj);
        self
    }

    /// Routes this endpoint's trace output — round phases, per-round
    /// latencies, per-peer balance gauges — plus the device's power and
    /// contract events through `tracer`.
    pub fn set_tracer(&mut self, tracer: TraceHandle) {
        self.device.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Builder form of [`ChannelEndpoint::set_tracer`].
    #[must_use]
    pub fn with_tracer(mut self, tracer: TraceHandle) -> Self {
        self.set_tracer(tracer);
        self
    }

    /// An OpenMote-B class paying endpoint with the two-party profile.
    pub fn two_party_sender(name: &str, addr: NodeAddr) -> Self {
        Self::new(
            Device::openmote_b(name),
            addr,
            ChannelRole::Sender,
            EndpointProfile::two_party(ChannelRole::Sender),
        )
    }

    /// An OpenMote-B class receiving endpoint with the two-party profile.
    pub fn two_party_receiver(name: &str, addr: NodeAddr) -> Self {
        Self::new(
            Device::openmote_b(name),
            addr,
            ChannelRole::Receiver,
            EndpointProfile::two_party(ChannelRole::Receiver),
        )
    }

    /// An OpenMote-B class fleet sensor (sender role, fleet profile).
    pub fn fleet_sensor(name: &str, addr: NodeAddr) -> Self {
        Self::new(
            Device::openmote_b(name),
            addr,
            ChannelRole::Sender,
            EndpointProfile::fleet(ChannelRole::Sender),
        )
    }

    /// An OpenMote-B class gateway (receiver role, fleet profile), ready to
    /// multiplex any number of sensor peers.
    pub fn gateway(name: &str, addr: NodeAddr) -> Self {
        Self::new(
            Device::openmote_b(name),
            addr,
            ChannelRole::Receiver,
            EndpointProfile::fleet(ChannelRole::Receiver),
        )
    }

    // --- accessors -------------------------------------------------------

    /// The node's simulated device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mutable access to the device (sensor registry, meter resets).
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// This node's link-layer address.
    pub fn addr(&self) -> NodeAddr {
        self.addr
    }

    /// This node's payment identity.
    pub fn account(&self) -> Address {
        self.device.address()
    }

    /// This endpoint's channel role.
    pub fn role(&self) -> ChannelRole {
        self.role
    }

    /// The protocol profile.
    pub fn profile(&self) -> &EndpointProfile {
        &self.profile
    }

    /// Adjusts the idle gap inserted between protocol steps.
    pub fn set_idle_gap(&mut self, gap: Duration) {
        self.profile.idle_gap = gap;
    }

    /// The retransmission policy for in-flight rounds.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Adjusts the retransmission policy.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Peers this endpoint has a channel with, in address order.
    pub fn peers(&self) -> impl Iterator<Item = NodeAddr> + '_ {
        self.sessions.keys().copied()
    }

    /// The channel state machine for one peer.
    pub fn channel(&self, peer: NodeAddr) -> Option<&PaymentChannel> {
        self.sessions.get(&peer).map(|s| &s.channel)
    }

    /// The side-chain log for one peer's channel.
    pub fn side_chain(&self, peer: NodeAddr) -> Option<&SideChainLog> {
        self.sessions.get(&peer).map(|s| &s.log)
    }

    /// Address of the locally deployed channel contract for one peer.
    pub fn contract(&self, peer: NodeAddr) -> Option<Address> {
        self.sessions.get(&peer).and_then(|s| s.contract)
    }

    /// Acknowledgement signatures collected from one peer.
    pub fn peer_acks(&self, peer: NodeAddr) -> Option<&[Signature]> {
        self.sessions.get(&peer).map(|s| s.peer_acks.as_slice())
    }

    /// End-to-end latencies of completed payment rounds with one peer.
    pub fn latencies(&self, peer: NodeAddr) -> Option<&[Duration]> {
        self.sessions.get(&peer).map(|s| s.latencies.as_slice())
    }

    /// The chain registration backing one peer's channel.
    pub fn registration(&self, peer: NodeAddr) -> Option<&ChannelRegistration> {
        self.sessions.get(&peer).map(|s| &s.registration)
    }

    // --- chain observations ----------------------------------------------

    /// (Receiver) Records that the chain registered a channel whose
    /// counterparty will propose from `peer`; the proposal is validated
    /// against this observation when it arrives.
    ///
    /// # Errors
    ///
    /// Returns [`EndpointError::OutOfOrder`] on a sender-role endpoint or
    /// when a channel with `peer` already exists.
    pub fn expect_channel(
        &mut self,
        peer: NodeAddr,
        registration: ChannelRegistration,
    ) -> Result<(), EndpointError> {
        if self.role != ChannelRole::Receiver {
            return Err(EndpointError::OutOfOrder(
                "only a receiver expects proposals",
            ));
        }
        if self.sessions.contains_key(&peer) {
            return Err(EndpointError::OutOfOrder("channel is already open"));
        }
        self.expected.insert(peer, registration);
        Ok(())
    }

    // --- local intents ---------------------------------------------------

    /// (Sender) Opens the channel the chain registered: instantiates the
    /// local state machine, runs the handshake-reading exchange when the
    /// profile asks for one, and proposes the channel to the peer.
    ///
    /// # Errors
    ///
    /// Returns [`EndpointError::OutOfOrder`] on a receiver-role endpoint or
    /// when a channel with `peer` already exists.
    pub fn open(
        &mut self,
        peer: NodeAddr,
        registration: ChannelRegistration,
    ) -> Result<Vec<Effect>, EndpointError> {
        if self.role != ChannelRole::Sender {
            return Err(EndpointError::OutOfOrder("only a sender opens channels"));
        }
        if self.sessions.contains_key(&peer) {
            return Err(EndpointError::OutOfOrder("channel is already open"));
        }
        let config = ChannelConfig {
            template: registration.template,
            channel_id: registration.channel_id,
            sender: registration.sender,
            receiver: registration.receiver,
            deposit_cap: registration.deposit_cap,
        };
        let log = SideChainLog::new(registration.anchor);
        self.sessions.insert(
            peer,
            PeerSession {
                registration,
                channel: PaymentChannel::new(config, ChannelRole::Sender),
                contract: None,
                log,
                peer_acks: Vec::new(),
                latencies: Vec::new(),
                pending: Pending::Idle,
                staged_close: None,
                last_inbound: None,
                last_reply: Vec::new(),
            },
        );
        if self.profile.handshake_readings {
            self.queue_own_reading(peer, OutKind::Reading);
            self.session_mut(peer)?.pending = Pending::OpenAwaitingReading;
            Ok(Vec::new())
        } else {
            self.finish_open(peer)
        }
    }

    /// (Sender) Starts one payment round of `amount` towards `peer`.
    ///
    /// # Errors
    ///
    /// Returns [`EndpointError::OutOfOrder`] before the channel is open or
    /// while another round is in flight, and channel errors for amounts the
    /// deposit cap cannot cover (fleet profile, which signs immediately).
    pub fn pay(&mut self, peer: NodeAddr, amount: Wei) -> Result<Vec<Effect>, EndpointError> {
        if self.role != ChannelRole::Sender {
            return Err(EndpointError::OutOfOrder("only a sender creates payments"));
        }
        if !self.sessions.contains_key(&peer) {
            return Err(EndpointError::OutOfOrder("open the channel first"));
        }
        if !matches!(self.session_mut(peer)?.pending, Pending::Idle) {
            return Err(EndpointError::OutOfOrder(
                "a protocol round is already in flight",
            ));
        }
        let started_at = self.device.now();
        let own_value = self.read_own_sensor();
        self.queue_reading_value(peer, own_value, OutKind::Reading);
        if self.profile.expect_peer_reading {
            self.session_mut(peer)?.pending = Pending::AwaitingPeerReading {
                amount,
                own_value,
                started_at,
            };
            Ok(Vec::new())
        } else {
            let sensor_hash = tinyevm_crypto::keccak256_h256(&own_value.to_be_bytes());
            self.sign_and_queue_payment(peer, amount, sensor_hash, started_at)?;
            Ok(Vec::new())
        }
    }

    /// (Sender) Closes the channel with `peer`: produces the final state,
    /// signs it, and queues the close request for the peer to counter-sign.
    ///
    /// # Errors
    ///
    /// Returns [`EndpointError::OutOfOrder`] before the channel is open or
    /// mid-round.
    pub fn close(&mut self, peer: NodeAddr) -> Result<Vec<Effect>, EndpointError> {
        if self.role != ChannelRole::Sender {
            return Err(EndpointError::OutOfOrder(
                "the receiver counter-signs closes, it does not initiate them",
            ));
        }
        if !self.sessions.contains_key(&peer) {
            return Err(EndpointError::OutOfOrder("open the channel first"));
        }
        if !matches!(self.session_mut(peer)?.pending, Pending::Idle) {
            return Err(EndpointError::OutOfOrder(
                "a protocol round is still in flight",
            ));
        }
        let close_started = self.device.now();
        let state = self.session_mut(peer)?.channel.close();
        let (signature, _) = self.device.sign_payload(&state.encode());
        let close_time = self.device.now().saturating_sub(close_started);
        let node = self.device.name().to_string();
        self.tracer.event(|| TraceEvent::Phase {
            node,
            peer: peer.to_string(),
            phase: "close".to_string(),
            sequence: state.sequence,
            duration_us: close_time.as_micros() as u64,
        });
        let public_key = self.device.public_key();
        self.outbox.push_back(Outgoing {
            to: peer,
            message: Message::CloseRequest(CloseRequest {
                state,
                public_key,
                signature,
            }),
            kind: OutKind::CloseRequest,
        });
        Ok(Vec::new())
    }

    /// (Receiver) Verifies every staged close request's signature in one
    /// batched multi-scalar pass, closes each channel, and counter-signs
    /// each state, yielding one [`Effect::CommitReady`] per channel in
    /// peer-address order.
    ///
    /// Channels stay open until their close signature actually verifies
    /// here — staging is a cheap structural check, not an acceptance.
    ///
    /// # Errors
    ///
    /// Returns [`EndpointError::OutOfOrder`] when nothing is staged and
    /// [`EndpointError::BadSignature`] when any staged signature fails the
    /// batch check. In the failure case the forged requests are discarded
    /// (those senders must re-close) while every validly signed request
    /// stays staged, so a retry settles the honest channels — one forged
    /// signature cannot block the fleet.
    pub fn finalize_closes(&mut self) -> Result<Vec<Effect>, EndpointError> {
        let staged: Vec<(NodeAddr, StagedClose)> = self
            .sessions
            .iter_mut()
            .filter_map(|(addr, session)| session.staged_close.take().map(|s| (*addr, s)))
            .collect();
        if staged.is_empty() {
            return Err(EndpointError::OutOfOrder("no close requests are staged"));
        }
        let encodings: Vec<Vec<u8>> = staged.iter().map(|(_, s)| s.state.encode()).collect();
        let items: Vec<(&[u8], Signature, tinyevm_crypto::secp256k1::PublicKey)> = staged
            .iter()
            .zip(&encodings)
            .map(|((_, s), encoded)| (encoded.as_slice(), s.signature, s.public_key))
            .collect();
        if !self.device.verify_payload_batch(&items) {
            // Fall back per signature (the batch only says *some* item is
            // forged): keep the honest closes staged for a retry, drop the
            // forged ones. The per-item check is diagnostic; the device
            // already paid the per-signature verify time in the batch.
            for ((peer, close), encoded) in staged.into_iter().zip(encodings) {
                let digest = tinyevm_crypto::keccak256(&encoded);
                if close.public_key.verify_prehashed(&digest, &close.signature) {
                    if let Some(session) = self.sessions.get_mut(&peer) {
                        session.staged_close = Some(close);
                    }
                }
            }
            return Err(EndpointError::BadSignature);
        }
        let mut effects = Vec::with_capacity(staged.len());
        for ((peer, close), encoded) in staged.into_iter().zip(encodings) {
            self.session_mut(peer)?.channel.close();
            let (own_signature, _) = self.device.sign_payload(&encoded);
            effects.push(Effect::CommitReady {
                peer,
                envelope: PaymentChannel::envelope(close.state, close.signature, own_signature),
            });
        }
        Ok(effects)
    }

    // --- IO surface ------------------------------------------------------

    /// Pops the next outbound envelope, charging the encode cost to the
    /// device. The transport should report the transfer's radio cost back
    /// through [`ChannelEndpoint::account_transmitted`].
    pub fn poll_transmit(&mut self) -> Option<Envelope> {
        let outgoing = self.outbox.pop_front()?;
        self.device.account_codec(outgoing.message.wire_size());
        self.in_flight = Some(outgoing.kind);
        match self.last_sent.as_mut() {
            // A retransmitted copy keeps its attempt count.
            Some(slot) if slot.requeued => slot.requeued = false,
            _ => {
                self.last_sent = Some(RetrySlot {
                    outgoing: outgoing.clone(),
                    attempts: 1,
                    requeued: false,
                    deadline: None,
                });
            }
        }
        Some(Envelope {
            to: outgoing.to,
            message: outgoing.message,
        })
    }

    /// Reports that the transport failed to move the last polled envelope
    /// (retry budget exhausted, partition). The endpoint backs off on the
    /// virtual clock and re-queues the same bytes, or — once
    /// [`RetryPolicy::max_attempts`] is spent — abandons the round.
    ///
    /// # Errors
    ///
    /// Returns [`EndpointError::RoundAborted`] when the retry budget is
    /// exhausted (the round's state is rolled back to idle; committed
    /// channel state is untouched) and [`EndpointError::OutOfOrder`] when
    /// nothing was ever transmitted.
    pub fn on_transport_error(&mut self) -> Result<(), EndpointError> {
        self.retry_last()
    }

    /// Reports that the host's pump drained every outbox while this
    /// endpoint still has a protocol round in flight (a reply was lost or
    /// replaced in transit). Same backoff-and-retransmit behaviour as
    /// [`ChannelEndpoint::on_transport_error`].
    ///
    /// # Errors
    ///
    /// Same as [`ChannelEndpoint::on_transport_error`].
    pub fn on_round_stalled(&mut self) -> Result<(), EndpointError> {
        self.retry_last()
    }

    /// The peer of the first session with a protocol round still in
    /// flight, if any — what a pump checks after its queues drain to
    /// distinguish "done" from "stalled".
    pub fn stalled_round(&self) -> Option<NodeAddr> {
        self.sessions
            .iter()
            .find(|(_, session)| !matches!(session.pending, Pending::Idle))
            .map(|(addr, _)| *addr)
    }

    fn retry_last(&mut self) -> Result<(), EndpointError> {
        let Some(slot) = self.last_sent.as_mut() else {
            return Err(EndpointError::OutOfOrder("nothing to retransmit"));
        };
        let peer = slot.outgoing.to;
        if slot.attempts >= self.retry.max_attempts {
            let attempts = slot.attempts;
            self.last_sent = None;
            self.abort_round(peer);
            return Err(EndpointError::RoundAborted { peer, attempts });
        }
        slot.attempts += 1;
        // Capped exponential backoff: base, 2*base, 4*base, ... expressed
        // as an absolute virtual-clock deadline (now + backoff) so lockstep
        // pumps and event schedulers share one timeout semantics.
        let exponent = slot.attempts.saturating_sub(2).min(16);
        let backoff = self
            .retry
            .base_backoff
            .saturating_mul(1u32 << exponent)
            .min(self.retry.max_backoff);
        let deadline = self.device.sim_now() + backoff;
        slot.deadline = Some(deadline);
        slot.requeued = true;
        let outgoing = slot.outgoing.clone();
        self.outbox.push_front(outgoing);
        self.tracer.count("channel.endpoint_retransmissions", 1);
        // Spend the backoff window on the device clock (LPM2, like any
        // other protocol wait): the clock lands exactly on the deadline,
        // so `sim_now() >= retry_deadline()` holds the moment the
        // retransmitted copy becomes eligible.
        self.device
            .sleep(deadline.saturating_duration_since(self.device.sim_now()));
        Ok(())
    }

    /// The virtual-clock deadline of the in-flight backoff window, if a
    /// retransmission is armed: the requeued copy must not leave before
    /// this point. Event-driven schedulers use this to park the endpoint
    /// until the deadline instead of counting pump iterations; after
    /// [`ChannelEndpoint::on_transport_error`] /
    /// [`ChannelEndpoint::on_round_stalled`] return, the device clock has
    /// already been slept onto the deadline.
    pub fn retry_deadline(&self) -> Option<SimTime> {
        self.last_sent.as_ref().and_then(|slot| slot.deadline)
    }

    /// Abandons the in-flight round with `peer`: pending state returns to
    /// idle and queued messages for that peer are dropped. Committed
    /// channel state (accepted payments, logs, signatures) is untouched;
    /// the next completed round re-synchronises the channel, because
    /// cumulative payments fold an abandoned round's value into the next
    /// one.
    fn abort_round(&mut self, peer: NodeAddr) {
        if let Some(session) = self.sessions.get_mut(&peer) {
            session.pending = Pending::Idle;
        }
        self.outbox.retain(|outgoing| outgoing.to != peer);
        self.in_flight = None;
        let node = self.device.name().to_string();
        self.tracer.event(|| TraceEvent::Phase {
            node,
            peer: peer.to_string(),
            phase: "abort".to_string(),
            sequence: 0,
            duration_us: 0,
        });
        self.tracer.count("channel.rounds_aborted", 1);
    }

    /// Drops everything a real device keeps in RAM — the outbox, the
    /// retransmission slot, per-round pending state, duplicate-suppression
    /// digests and staged closes — modelling a power cycle. Committed
    /// channel state survives only through snapshots
    /// ([`ChannelEndpoint::snapshot`] /
    /// [`ChannelEndpoint::install_snapshot`], the "flash" of the device).
    pub fn clear_volatile(&mut self) {
        self.outbox.clear();
        self.in_flight = None;
        self.last_sent = None;
        for session in self.sessions.values_mut() {
            session.pending = Pending::Idle;
            session.last_inbound = None;
            session.last_reply.clear();
            session.staged_close = None;
        }
    }

    /// Reports that the radio finished moving the last polled envelope
    /// (`wire_bytes` on the air, headers and retransmissions included):
    /// charges TX energy and applies any step pacing the profile calls for.
    pub fn account_transmitted(&mut self, wire_bytes: usize) {
        self.device
            .account_radio(RadioDirection::Transmit, wire_bytes);
        match self.in_flight.take() {
            Some(OutKind::OpenReply) => self.device.sleep(self.profile.idle_gap),
            Some(OutKind::Ack) if self.profile.pace_after_ack => {
                self.device.sleep(self.profile.idle_gap);
            }
            _ => {}
        }
    }

    /// Charges RX energy for an inbound transfer of `wire_bytes`.
    pub fn account_received(&mut self, wire_bytes: usize) {
        self.device
            .account_radio(RadioDirection::Receive, wire_bytes);
    }

    /// Spends `duration` idling in LPM2 (waiting for the peer's crypto, a
    /// TSCH slot, application pacing).
    pub fn wait(&mut self, duration: Duration) {
        self.device.sleep(duration);
    }

    /// Decodes raw peer bytes (decode CPU charged to the device) and
    /// handles the message.
    ///
    /// Byte-identical duplicates of the last successfully handled message
    /// from `from` (link-level replays, peer retransmissions after a lost
    /// reply) are handled idempotently: the stored reply is re-queued
    /// verbatim — no signature is created twice, no channel state moves —
    /// and no effects are returned.
    ///
    /// # Errors
    ///
    /// Returns [`EndpointError::Wire`] for undecodable bytes, then
    /// everything [`ChannelEndpoint::handle_message`] reports.
    pub fn handle_wire(
        &mut self,
        from: NodeAddr,
        bytes: &[u8],
    ) -> Result<Vec<Effect>, EndpointError> {
        self.device.account_codec(bytes.len());
        let digest = tinyevm_crypto::keccak256(bytes);
        if let Some(session) = self.sessions.get_mut(&from) {
            if session.last_inbound == Some(digest) {
                let replies: Vec<Outgoing> = session.last_reply.clone();
                self.outbox.extend(replies);
                self.tracer.count("channel.duplicate_messages", 1);
                return Ok(Vec::new());
            }
        }
        let message = Message::from_wire(bytes)?;
        let queued_before = self.outbox.len();
        let effects = self.handle_message(from, message)?;
        let reply: Vec<Outgoing> = self.outbox.iter().skip(queued_before).cloned().collect();
        if let Some(session) = self.sessions.get_mut(&from) {
            session.last_inbound = Some(digest);
            session.last_reply = reply;
        }
        Ok(effects)
    }

    /// Feeds one decoded peer message into the state machine.
    ///
    /// Everything in `message` is treated as adversarial: signatures are
    /// verified against the channel's configured counterparty, protocol
    /// steps must arrive in order, and a rejected message leaves the
    /// endpoint's committed state (channel, log, collected signatures)
    /// untouched.
    ///
    /// # Errors
    ///
    /// A typed [`EndpointError`] naming the first check that failed.
    pub fn handle_message(
        &mut self,
        from: NodeAddr,
        message: Message,
    ) -> Result<Vec<Effect>, EndpointError> {
        // Only the ack handler needs the envelope's encoded size (for the
        // sender's airtime split); don't re-encode every other message.
        let wire_len = match &message {
            Message::PaymentAck(_) => message.wire_size(),
            _ => 0,
        };
        match message {
            Message::SensorReading(reading) => self.on_reading(from, reading),
            Message::ChannelOpen(proposal) => self.on_proposal(from, proposal),
            Message::Payment(payment) => self.on_payment(from, payment),
            Message::PaymentAck(ack) => self.on_ack(from, ack, wire_len),
            Message::CloseRequest(request) => self.on_close_request(from, request),
            other => Err(EndpointError::UnexpectedMessage {
                expected: "protocol message",
                got: other.label(),
            }),
        }
    }

    // --- message handlers ------------------------------------------------

    fn on_reading(
        &mut self,
        from: NodeAddr,
        reading: SensorReading,
    ) -> Result<Vec<Effect>, EndpointError> {
        match self.role {
            ChannelRole::Receiver => {
                if !self.sessions.contains_key(&from) && !self.expected.contains_key(&from) {
                    return Err(EndpointError::UnknownPeer(from));
                }
                if self.profile.reply_with_reading {
                    let value = self.read_own_sensor();
                    let kind = if self.sessions.contains_key(&from) {
                        OutKind::Reading
                    } else {
                        // Still opening: the reply's completion paces the
                        // handshake.
                        OutKind::OpenReply
                    };
                    self.queue_reading_value(from, value, kind);
                }
                Ok(Vec::new())
            }
            ChannelRole::Sender => {
                if !self.sessions.contains_key(&from) {
                    return Err(EndpointError::UnknownPeer(from));
                }
                let pending =
                    std::mem::replace(&mut self.session_mut(from)?.pending, Pending::Idle);
                match pending {
                    Pending::OpenAwaitingReading => {
                        self.device.sleep(self.profile.idle_gap);
                        self.finish_open(from)
                    }
                    Pending::AwaitingPeerReading {
                        amount,
                        own_value,
                        started_at,
                    } => {
                        let mut data = Vec::with_capacity(64);
                        data.extend_from_slice(&own_value.to_be_bytes());
                        data.extend_from_slice(&reading.value.to_be_bytes());
                        let sensor_hash = tinyevm_crypto::keccak256_h256(&data);
                        self.sign_and_queue_payment(from, amount, sensor_hash, started_at)?;
                        Ok(Vec::new())
                    }
                    other => {
                        self.session_mut(from)?.pending = other;
                        Err(EndpointError::UnexpectedMessage {
                            expected: "payment-ack",
                            got: "sensor-reading",
                        })
                    }
                }
            }
        }
    }

    fn on_proposal(
        &mut self,
        from: NodeAddr,
        proposal: ChannelOpen,
    ) -> Result<Vec<Effect>, EndpointError> {
        if self.role != ChannelRole::Receiver {
            return Err(EndpointError::UnexpectedMessage {
                expected: "payment-ack",
                got: "channel-open",
            });
        }
        if self.sessions.contains_key(&from) {
            return Err(EndpointError::OutOfOrder("channel is already open"));
        }
        let Some(registration) = self.expected.get(&from) else {
            return Err(EndpointError::UnknownPeer(from));
        };
        // The peer's proposal must agree with what the chain registered —
        // an adversarial peer cannot talk this endpoint into a channel the
        // chain never saw.
        if proposal.template != registration.template {
            return Err(EndpointError::ProposalMismatch("template address"));
        }
        if proposal.channel_id != registration.channel_id {
            return Err(EndpointError::ProposalMismatch("channel id"));
        }
        if proposal.sender != registration.sender {
            return Err(EndpointError::ProposalMismatch("sender account"));
        }
        if proposal.receiver != registration.receiver {
            return Err(EndpointError::ProposalMismatch("receiver account"));
        }
        if proposal.deposit_cap != registration.deposit_cap {
            return Err(EndpointError::ProposalMismatch("deposit cap"));
        }
        let registration = self.expected.remove(&from).expect("checked above");
        let init = contracts::payment_channel_init_code(
            tinyevm_device::sensors::peripheral_id::TEMPERATURE,
            registration.channel_id,
        );
        let (contract, create_time) = self.deploy_verified_contract(&init)?;
        let config = ChannelConfig {
            template: registration.template,
            channel_id: registration.channel_id,
            sender: registration.sender,
            receiver: registration.receiver,
            deposit_cap: registration.deposit_cap,
        };
        let channel_id = registration.channel_id;
        let log = SideChainLog::new(registration.anchor);
        self.sessions.insert(
            from,
            PeerSession {
                registration,
                channel: PaymentChannel::new(config, ChannelRole::Receiver),
                contract: Some(contract),
                log,
                peer_acks: Vec::new(),
                latencies: Vec::new(),
                pending: Pending::Idle,
                staged_close: None,
                last_inbound: None,
                last_reply: Vec::new(),
            },
        );
        if self.profile.reply_with_reading {
            self.device.sleep(self.profile.idle_gap);
        }
        Ok(vec![Effect::ChannelOpened {
            peer: from,
            channel_id,
            create_time,
        }])
    }

    fn on_payment(
        &mut self,
        from: NodeAddr,
        payment: SignedPayment,
    ) -> Result<Vec<Effect>, EndpointError> {
        if self.role != ChannelRole::Receiver {
            return Err(EndpointError::UnexpectedMessage {
                expected: "payment-ack",
                got: "payment",
            });
        }
        if !self.sessions.contains_key(&from) {
            return Err(EndpointError::UnknownPeer(from));
        }
        // A staged close pins the channel's final state; accepting further
        // payments would silently devalue the close about to be committed.
        if self.session_mut(from)?.staged_close.is_some() {
            return Err(EndpointError::OutOfOrder("channel close already staged"));
        }
        let busy_from = self.device.now();
        let expected_payer = self.session_mut(from)?.registration.sender;
        let payer = self
            .device
            .verify_payload(&payment.encode_payload(), &payment.signature)
            .ok_or(EndpointError::BadSignature)?;
        if payer != expected_payer {
            return Err(EndpointError::BadSignature);
        }
        // A verified retransmission of the payment already at the channel
        // head: the payer never saw the acknowledgement (it was lost in
        // flight, or this node power-cycled before the ack left its
        // outbox). Committing is idempotent, so acknowledging must be too —
        // re-sign and re-send the ack without touching channel or log.
        let head = {
            let session = self.session_mut(from)?;
            let channel = &session.channel;
            (
                channel.sequence(),
                channel.cumulative(),
                channel.config().channel_id,
            )
        };
        if payment.sequence == head.0
            && payment.sequence > 0
            && payment.cumulative == head.1
            && payment.channel_id == head.2
        {
            let (ack_signature, _) = self.device.sign_payload(&payment.encode_payload());
            self.tracer.count("channel.duplicate_messages", 1);
            self.outbox.push_back(Outgoing {
                to: from,
                message: Message::PaymentAck(PaymentAck {
                    channel_id: payment.channel_id,
                    sequence: payment.sequence,
                    signature: ack_signature,
                }),
                kind: OutKind::Ack,
            });
            return Ok(Vec::new());
        }
        self.session_mut(from)?.channel.accept_payment(&payment)?;
        self.register_on_side_chain(from, &payment)?;
        let (ack_signature, _) = self.device.sign_payload(&payment.encode_payload());
        let processing = self.device.now().saturating_sub(busy_from);
        let node = self.device.name().to_string();
        self.tracer.event(|| TraceEvent::Phase {
            node,
            peer: from.to_string(),
            phase: "payment".to_string(),
            sequence: payment.sequence,
            duration_us: processing.as_micros() as u64,
        });
        self.tracer.gauge_labeled(
            || format!("channel.cumulative_wei.{from}"),
            payment.cumulative.amount().low_u64() as f64,
        );
        self.outbox.push_back(Outgoing {
            to: from,
            message: Message::PaymentAck(PaymentAck {
                channel_id: payment.channel_id,
                sequence: payment.sequence,
                signature: ack_signature,
            }),
            kind: OutKind::Ack,
        });
        Ok(vec![Effect::PaymentAccepted {
            peer: from,
            sequence: payment.sequence,
            cumulative: payment.cumulative,
            processing,
        }])
    }

    fn on_ack(
        &mut self,
        from: NodeAddr,
        ack: PaymentAck,
        ack_wire_len: usize,
    ) -> Result<Vec<Effect>, EndpointError> {
        if self.role != ChannelRole::Sender {
            return Err(EndpointError::UnexpectedMessage {
                expected: "payment",
                got: "payment-ack",
            });
        }
        if !self.sessions.contains_key(&from) {
            return Err(EndpointError::UnknownPeer(from));
        }
        // Validate against the pending round *without* consuming it: a
        // rejected acknowledgement (forged, or for a different payment)
        // must leave this endpoint waiting for the real one.
        let (payload, expected_receiver) = {
            let session = self.session_mut(from)?;
            let Pending::AwaitingAck { payment, .. } = &session.pending else {
                return Err(EndpointError::OutOfOrder(
                    "no payment awaits acknowledgement",
                ));
            };
            if ack.sequence != payment.sequence || ack.channel_id != payment.channel_id {
                return Err(EndpointError::OutOfOrder(
                    "acknowledgement for a different payment",
                ));
            }
            (payment.encode_payload(), session.registration.receiver)
        };
        let signer = self
            .device
            .verify_payload(&payload, &ack.signature)
            .ok_or(EndpointError::BadSignature)?;
        if signer != expected_receiver {
            return Err(EndpointError::BadSignature);
        }
        let Pending::AwaitingAck {
            payment,
            payment_wire_len,
            sign_time,
            started_at,
            signed_at,
        } = std::mem::replace(&mut self.session_mut(from)?.pending, Pending::Idle)
        else {
            unreachable!("pending state checked above");
        };
        self.session_mut(from)?.peer_acks.push(ack.signature);
        let register_time = self.register_on_side_chain(from, &payment)?;
        let end_to_end_latency = self.device.now().saturating_sub(started_at);
        self.session_mut(from)?.latencies.push(end_to_end_latency);
        let ack_time = self.device.now().saturating_sub(signed_at);
        let node = self.device.name().to_string();
        self.tracer.event(|| TraceEvent::Phase {
            node: node.clone(),
            peer: from.to_string(),
            phase: "ack".to_string(),
            sequence: payment.sequence,
            duration_us: ack_time.as_micros() as u64,
        });
        self.tracer.event(|| TraceEvent::Round {
            node: node.clone(),
            peer: from.to_string(),
            sequence: payment.sequence,
            cumulative_wei: payment.cumulative.amount().low_u64(),
            latency_us: end_to_end_latency.as_micros() as u64,
        });
        self.tracer.observe(
            "channel.round_latency_ms",
            end_to_end_latency.as_secs_f64() * 1_000.0,
        );
        self.tracer.gauge_labeled(
            || format!("channel.cumulative_wei.{from}"),
            payment.cumulative.amount().low_u64() as f64,
        );
        self.device.sleep(self.profile.idle_gap);
        let active_time = sign_time
            + register_time
            + self.device.airtime(payment_wire_len)
            + self.device.airtime(ack_wire_len);
        Ok(vec![Effect::PaymentCompleted {
            peer: from,
            receipt: PaymentReceipt {
                sequence: payment.sequence,
                cumulative: payment.cumulative,
                end_to_end_latency,
                sign_time,
                register_time,
                active_time,
            },
        }])
    }

    fn on_close_request(
        &mut self,
        from: NodeAddr,
        request: CloseRequest,
    ) -> Result<Vec<Effect>, EndpointError> {
        if self.role != ChannelRole::Receiver {
            return Err(EndpointError::UnexpectedMessage {
                expected: "payment-ack",
                got: "close-request",
            });
        }
        if !self.sessions.contains_key(&from) {
            return Err(EndpointError::UnknownPeer(from));
        }
        let expected_sender = self.session_mut(from)?.registration.sender;
        // The carried public key must hash to the channel's configured
        // sender before it may stand in for it in the batched check.
        if request.public_key.eth_address() != expected_sender {
            return Err(EndpointError::BadSignature);
        }
        // The proposed final state must equal this endpoint's own view of
        // the channel — a peer cannot close for more than it paid. The
        // check runs against a non-mutating preview: the channel only
        // closes in `finalize_closes`, once the signature actually
        // verifies, so a request that is later exposed as forged leaves no
        // trace on the channel.
        let session = self.session_mut(from)?;
        if request.state != session.channel.closing_state() {
            return Err(EndpointError::ProposalMismatch(
                "closing state does not match the channel",
            ));
        }
        session.staged_close = Some(StagedClose {
            state: request.state,
            public_key: request.public_key,
            signature: request.signature,
        });
        let staged = self
            .sessions
            .values()
            .filter(|s| s.staged_close.is_some())
            .count();
        Ok(vec![Effect::CloseStaged { peer: from, staged }])
    }

    // --- persistence -----------------------------------------------------

    /// Captures one peer's channel, side-chain log and collected peer
    /// acknowledgements as a wire-format snapshot.
    pub fn snapshot(&self, peer: NodeAddr) -> Option<ChannelSnapshot> {
        self.sessions
            .get(&peer)
            .map(|s| s.channel.snapshot(&s.log, &s.peer_acks))
    }

    /// Restores one peer's channel from a snapshot: the role must match
    /// this endpoint and the snapshot's side-chain log must verify. The
    /// local contract is kept only when the restored channel is the one it
    /// was deployed for; otherwise it is cleared (re-create it with
    /// [`ChannelEndpoint::ensure_contract`]). Round measurements
    /// (latencies) belong to the lost process and are cleared.
    ///
    /// # Errors
    ///
    /// Returns [`EndpointError::OutOfOrder`] for a role mismatch and
    /// [`EndpointError::Wire`] for a snapshot that does not verify.
    pub fn install_snapshot(
        &mut self,
        peer: NodeAddr,
        snapshot: &ChannelSnapshot,
    ) -> Result<(), EndpointError> {
        let expected = match self.role {
            ChannelRole::Sender => EndpointRole::Sender,
            ChannelRole::Receiver => EndpointRole::Receiver,
        };
        if snapshot.role != expected {
            return Err(EndpointError::OutOfOrder(
                "snapshot belongs to the other endpoint",
            ));
        }
        let (channel, log, peer_acks) = PaymentChannel::restore(snapshot)?;
        let contract = self
            .sessions
            .get(&peer)
            .filter(|s| s.channel.config().channel_id == snapshot.channel_id)
            .and_then(|s| s.contract);
        self.sessions.insert(
            peer,
            PeerSession {
                registration: ChannelRegistration {
                    template: snapshot.template,
                    channel_id: snapshot.channel_id,
                    sender: snapshot.sender,
                    receiver: snapshot.receiver,
                    deposit_cap: snapshot.deposit_cap,
                    anchor: snapshot.anchor,
                },
                channel,
                contract,
                log,
                peer_acks,
                latencies: Vec::new(),
                pending: Pending::Idle,
                staged_close: None,
                last_inbound: None,
                last_reply: Vec::new(),
            },
        );
        Ok(())
    }

    /// Forgets the channel with `peer` (a restore target that must rebuild
    /// from scratch).
    pub fn drop_session(&mut self, peer: NodeAddr) {
        self.sessions.remove(&peer);
        self.expected.remove(&peer);
    }

    /// Re-instantiates the local channel contract for `peer` if the device
    /// lost it (e.g. in a power cycle), charging the deployment.
    ///
    /// # Errors
    ///
    /// Returns [`EndpointError::OutOfOrder`] without a channel and a device
    /// error when the constructor fails.
    pub fn ensure_contract(&mut self, peer: NodeAddr) -> Result<(), EndpointError> {
        let channel_id = match self.sessions.get(&peer) {
            None => return Err(EndpointError::OutOfOrder("open the channel first")),
            Some(session) if session.contract.is_some() => return Ok(()),
            Some(session) => session.channel.config().channel_id,
        };
        let init = contracts::payment_channel_init_code(
            tinyevm_device::sensors::peripheral_id::TEMPERATURE,
            channel_id,
        );
        let (contract, _) = self.deploy_verified_contract(&init)?;
        self.session_mut(peer)?.contract = Some(contract);
        Ok(())
    }

    /// Moves the channel keyed under `old` to `new` (a driver binding two
    /// standalone nodes together re-keys any pre-existing session).
    pub fn rekey_peer(&mut self, old: NodeAddr, new: NodeAddr) {
        if old == new {
            return;
        }
        if let Some(session) = self.sessions.remove(&old) {
            self.sessions.insert(new, session);
        }
        if let Some(expected) = self.expected.remove(&old) {
            self.expected.insert(new, expected);
        }
        for outgoing in &mut self.outbox {
            if outgoing.to == old {
                outgoing.to = new;
            }
        }
    }

    // --- internals -------------------------------------------------------

    fn session_mut(&mut self, peer: NodeAddr) -> Result<&mut PeerSession, EndpointError> {
        self.sessions
            .get_mut(&peer)
            .ok_or(EndpointError::UnknownPeer(peer))
    }

    /// Every local contract deployment funnels through here: the template's
    /// init code is statically verified before the device spends any
    /// constructor cycles on it.
    fn deploy_verified_contract(
        &mut self,
        init_code: &[u8],
    ) -> Result<(Address, Duration), EndpointError> {
        let analysis = analyze(init_code);
        if let Verdict::Rejected(error) = analysis.verdict() {
            return Err(EndpointError::ContractRejected(error.clone()));
        }
        if let Some(budget_mj) = self.energy_budget_mj {
            // Turn the static MCU-cycle bound into worst-case CPU energy at
            // this device's clock and supply voltage. No bound, no deploy.
            let mcu = self.device.config().mcu;
            let voltage = self.device.energy_report().voltage;
            let required_mj = match analysis.gas_certificate() {
                GasCertificate::Bounded { max_mcu_cycles, .. } => {
                    Some(mcu.cpu_energy_mj(*max_mcu_cycles, voltage))
                }
                GasCertificate::Unbounded { .. } | GasCertificate::Uncertified { .. } => None,
            };
            if required_mj.map_or(true, |required| required > budget_mj) {
                return Err(EndpointError::EnergyBudgetExceeded {
                    required_mj,
                    budget_mj,
                });
            }
        }
        self.device
            .create_local_contract(init_code)
            .map_err(|e| EndpointError::Device(e.to_string()))
    }

    /// Reads this node's configured peripheral (500 µs of CPU).
    fn read_own_sensor(&mut self) -> U256 {
        self.device
            .read_sensor(self.profile.reading_peripheral, 0)
            .unwrap_or(U256::ZERO)
    }

    fn queue_own_reading(&mut self, peer: NodeAddr, kind: OutKind) {
        let value = self.read_own_sensor();
        self.queue_reading_value(peer, value, kind);
    }

    fn queue_reading_value(&mut self, peer: NodeAddr, value: U256, kind: OutKind) {
        self.outbox.push_back(Outgoing {
            to: peer,
            message: Message::SensorReading(SensorReading {
                peripheral: self.profile.reading_peripheral,
                value,
            }),
            kind,
        });
    }

    /// Completes the sender side of the open handshake: deploy the local
    /// channel contract and propose the channel to the peer.
    fn finish_open(&mut self, peer: NodeAddr) -> Result<Vec<Effect>, EndpointError> {
        let registration = self.session_mut(peer)?.registration.clone();
        let init = contracts::payment_channel_init_code(
            tinyevm_device::sensors::peripheral_id::TEMPERATURE,
            registration.channel_id,
        );
        let (contract, create_time) = self.deploy_verified_contract(&init)?;
        self.session_mut(peer)?.contract = Some(contract);
        self.outbox.push_back(Outgoing {
            to: peer,
            message: Message::ChannelOpen(ChannelOpen {
                template: registration.template,
                channel_id: registration.channel_id,
                sender: registration.sender,
                receiver: registration.receiver,
                deposit_cap: registration.deposit_cap,
            }),
            kind: OutKind::Proposal,
        });
        if self.profile.handshake_readings {
            self.device.sleep(self.profile.idle_gap);
        }
        Ok(vec![Effect::ChannelOpened {
            peer,
            channel_id: registration.channel_id,
            create_time,
        }])
    }

    /// Creates and signs the next payment and queues it for transmission.
    fn sign_and_queue_payment(
        &mut self,
        peer: NodeAddr,
        amount: Wei,
        sensor_hash: H256,
        started_at: Duration,
    ) -> Result<(), EndpointError> {
        let key = *self.device.private_key();
        let payment = self
            .session_mut(peer)?
            .channel
            .create_payment(&key, amount, sensor_hash)?;
        // The channel signed with the node key; the device model charges
        // the crypto-engine latency for the same digest.
        let (device_signature, sign_time) = self.device.sign_payload(&payment.encode_payload());
        debug_assert_eq!(device_signature, payment.signature);
        let signed_at = self.device.now();
        let reading_time = signed_at
            .saturating_sub(started_at)
            .saturating_sub(sign_time);
        let node = self.device.name().to_string();
        let sequence = payment.sequence;
        self.tracer.event(|| TraceEvent::Phase {
            node: node.clone(),
            peer: peer.to_string(),
            phase: "reading".to_string(),
            sequence,
            duration_us: reading_time.as_micros() as u64,
        });
        self.tracer.event(|| TraceEvent::Phase {
            node: node.clone(),
            peer: peer.to_string(),
            phase: "payment".to_string(),
            sequence,
            duration_us: sign_time.as_micros() as u64,
        });
        let message = Message::Payment(payment.clone());
        let payment_wire_len = message.wire_size();
        self.session_mut(peer)?.pending = Pending::AwaitingAck {
            payment,
            payment_wire_len,
            sign_time,
            started_at,
            signed_at,
        };
        self.outbox.push_back(Outgoing {
            to: peer,
            message,
            kind: OutKind::Payment,
        });
        Ok(())
    }

    /// Executes the channel contract to register a payment on this node's
    /// side-chain, then appends to the hash-linked log. Returns the VM
    /// execution time.
    fn register_on_side_chain(
        &mut self,
        peer: NodeAddr,
        payment: &SignedPayment,
    ) -> Result<Duration, EndpointError> {
        let contract = self
            .session_mut(peer)?
            .contract
            .ok_or(EndpointError::OutOfOrder("open the channel first"))?;
        let calldata =
            contracts::record_payment_calldata(payment.sequence, payment.cumulative.amount());
        let (_, success, time) = self
            .device
            .call_local_contract(contract, U256::ZERO, &calldata);
        if !success {
            return Err(EndpointError::Device(
                "payment-channel contract rejected the payment".to_string(),
            ));
        }
        self.session_mut(peer)?.log.append(
            payment.channel_id,
            payment.sequence,
            payment.cumulative,
            H256::from_bytes(payment.digest()),
        );
        Ok(time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_templates_pass_the_static_gate() {
        let init = contracts::payment_channel_init_code(
            tinyevm_device::sensors::peripheral_id::TEMPERATURE,
            7,
        );
        assert!(!analyze(&init).verdict().is_rejected());
        assert!(!analyze(&contracts::payment_channel_runtime_code())
            .verdict()
            .is_rejected());
        let child = contracts::payment_channel_init_code(0, 1);
        assert!(!analyze(&contracts::template_init_code(&child))
            .verdict()
            .is_rejected());
        assert!(!analyze(&contracts::template_runtime_code(&child))
            .verdict()
            .is_rejected());
    }

    #[test]
    fn gate_refuses_malformed_template_before_deployment() {
        let mut endpoint = ChannelEndpoint::two_party_sender("sensor", NodeAddr(1));
        // PUSH1 0x03 JUMP STOP — the jump lands on the STOP byte, which is
        // not a JUMPDEST: statically invalid.
        let bad_init = vec![0x60, 0x03, 0x56, 0x00];
        match endpoint.deploy_verified_contract(&bad_init) {
            Err(EndpointError::ContractRejected(AnalysisError::InvalidJumpTarget {
                pc,
                target,
            })) => {
                assert_eq!(pc, 2);
                assert_eq!(target, 3);
            }
            other => panic!("expected ContractRejected, got {other:?}"),
        }
    }

    #[test]
    fn energy_budget_refuses_unprovable_and_over_budget_templates() {
        // The real payment-channel template contains a constructor loop, so
        // no finite energy bound exists: a budgeted endpoint refuses it
        // outright, whatever the budget.
        let template = contracts::payment_channel_init_code(
            tinyevm_device::sensors::peripheral_id::TEMPERATURE,
            7,
        );
        let mut endpoint = ChannelEndpoint::two_party_sender("sensor", NodeAddr(1))
            .with_deploy_energy_budget_mj(100.0);
        match endpoint.deploy_verified_contract(&template) {
            Err(EndpointError::EnergyBudgetExceeded {
                required_mj: None,
                budget_mj,
            }) => assert_eq!(budget_mj, 100.0),
            other => panic!("expected EnergyBudgetExceeded, got {other:?}"),
        }

        // A straight-line constructor carries a proof: PUSH1 0, PUSH1 0,
        // MSTORE8, PUSH1 1, PUSH1 0, RETURN — deploys a one-byte runtime.
        let straight = vec![0x60, 0x00, 0x60, 0x00, 0x53, 0x60, 0x01, 0x60, 0x00, 0xf3];
        let mut generous = ChannelEndpoint::two_party_sender("rich", NodeAddr(2))
            .with_deploy_energy_budget_mj(100.0);
        assert!(generous.deploy_verified_contract(&straight).is_ok());
        let mut stingy = ChannelEndpoint::two_party_sender("poor", NodeAddr(3))
            .with_deploy_energy_budget_mj(1e-12);
        match stingy.deploy_verified_contract(&straight) {
            Err(EndpointError::EnergyBudgetExceeded {
                required_mj: Some(required),
                budget_mj,
            }) => {
                assert!(required > budget_mj);
                // The proven bound is tiny in absolute terms: well under a
                // millijoule of CPU for six instructions.
                assert!(required < 1.0);
            }
            other => panic!("expected EnergyBudgetExceeded, got {other:?}"),
        }
        // An un-budgeted endpoint deploys the looping template unchanged.
        let mut open = ChannelEndpoint::two_party_sender("open", NodeAddr(4));
        assert!(open.deploy_verified_contract(&template).is_ok());
    }
}
