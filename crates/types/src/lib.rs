//! Primitive types shared by every TinyEVM crate.
//!
//! The Ethereum Virtual Machine is a 256-bit word machine, and the TinyEVM
//! paper keeps that word size on a 32-bit microcontroller by emulating wide
//! arithmetic in software. This crate is the Rust equivalent of that
//! emulation layer:
//!
//! * [`U256`] — a 256-bit unsigned integer built from four 64-bit limbs with
//!   the exact wrapping semantics the EVM requires (including the signed
//!   views used by `SDIV`, `SMOD`, `SLT`, `SAR`, `SIGNEXTEND`).
//! * [`H256`] — a 32-byte hash value.
//! * [`Address`] — a 20-byte account / contract address.
//! * [`Wei`] — a balance newtype.
//! * [`hex`] — zero-dependency hex encode / decode helpers.
//! * [`rlp`] — the small subset of RLP encoding needed to hash commits and
//!   signed payments deterministically.
//!
//! # Example
//!
//! ```
//! use tinyevm_types::{U256, Address};
//!
//! let a = U256::from(7u64);
//! let b = U256::from(5u64);
//! assert_eq!(a * b, U256::from(35u64));
//!
//! let addr = Address::from_low_u64(0xbeef);
//! assert_eq!(addr.to_hex(), "0x000000000000000000000000000000000000beef");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod hash;
pub mod hex;
pub mod i256;
pub mod rlp;
pub mod u256;
pub mod u512;
pub mod wei;

pub use address::Address;
pub use hash::H256;
pub use i256::{Sign, I256};
pub use u256::U256;
pub use u512::U512;
pub use wei::Wei;

/// Errors produced when parsing primitive types from text or bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The input contained a character that is not a hexadecimal digit.
    InvalidHexDigit(char),
    /// The input had an odd number of hex digits where bytes were expected.
    OddLength,
    /// The input was longer than the target type allows.
    TooLong {
        /// Maximum number of bytes the target type can hold.
        max: usize,
        /// Number of bytes the input would decode to.
        got: usize,
    },
    /// The input was shorter than the target type requires.
    WrongLength {
        /// Exact number of bytes the target type requires.
        expected: usize,
        /// Number of bytes the input decoded to.
        got: usize,
    },
    /// The input was empty.
    Empty,
    /// The input decoded, but is not the canonical (shortest) encoding of
    /// its value — rejected so that every value has exactly one wire form.
    NonCanonical {
        /// What canonicality rule the input violated.
        reason: &'static str,
    },
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseError::InvalidHexDigit(c) => write!(f, "invalid hex digit {c:?}"),
            ParseError::OddLength => write!(f, "odd number of hex digits"),
            ParseError::TooLong { max, got } => {
                write!(f, "input too long: {got} bytes exceeds maximum of {max}")
            }
            ParseError::WrongLength { expected, got } => {
                write!(f, "wrong length: expected {expected} bytes, got {got}")
            }
            ParseError::Empty => write!(f, "empty input"),
            ParseError::NonCanonical { reason } => {
                write!(f, "non-canonical encoding: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseError {}
