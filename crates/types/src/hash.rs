//! 32-byte hash values.

use crate::{hex, ParseError, U256};

/// A 256-bit (32-byte) hash, such as a Keccak-256 digest, a side-chain log
/// entry hash or a Merkle-Sum-Tree node hash.
///
/// # Example
///
/// ```
/// use tinyevm_types::H256;
///
/// let h = H256::from_low_u64(1);
/// assert_eq!(h.as_bytes()[31], 1);
/// assert!(H256::ZERO.is_zero());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct H256(pub [u8; 32]);

impl H256 {
    /// The all-zero hash.
    pub const ZERO: H256 = H256([0u8; 32]);

    /// Wraps a raw 32-byte array.
    #[inline]
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        H256(bytes)
    }

    /// Builds a hash whose last eight bytes hold `v` in big-endian order.
    ///
    /// Mostly useful in tests and examples where a recognisable,
    /// deterministic value is needed.
    pub fn from_low_u64(v: u64) -> Self {
        let mut bytes = [0u8; 32];
        bytes[24..].copy_from_slice(&v.to_be_bytes());
        H256(bytes)
    }

    /// Builds a hash from a byte slice.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::WrongLength`] unless the slice is exactly 32
    /// bytes long.
    pub fn from_slice(slice: &[u8]) -> Result<Self, ParseError> {
        if slice.len() != 32 {
            return Err(ParseError::WrongLength {
                expected: 32,
                got: slice.len(),
            });
        }
        let mut bytes = [0u8; 32];
        bytes.copy_from_slice(slice);
        Ok(H256(bytes))
    }

    /// Parses a 64-digit hex string with optional `0x` prefix.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] for bad digits or a wrong length.
    pub fn from_hex(s: &str) -> Result<Self, ParseError> {
        let bytes = hex::decode(s)?;
        Self::from_slice(&bytes)
    }

    /// Borrows the raw bytes.
    #[inline]
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Copies out the raw bytes.
    #[inline]
    pub const fn to_bytes(&self) -> [u8; 32] {
        self.0
    }

    /// Returns `true` if every byte is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }

    /// Lowercase hex string with `0x` prefix (always 66 characters).
    pub fn to_hex(&self) -> String {
        hex::encode_prefixed(&self.0)
    }

    /// Reinterprets the hash as a big-endian 256-bit integer.
    pub fn to_u256(&self) -> U256 {
        U256::from_be_bytes(self.0)
    }

    /// Bitwise XOR, useful for combining identifiers deterministically.
    pub fn xor(&self, other: &H256) -> H256 {
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = self.0[i] ^ other.0[i];
        }
        H256(out)
    }
}

impl From<[u8; 32]> for H256 {
    fn from(bytes: [u8; 32]) -> Self {
        H256(bytes)
    }
}

impl From<U256> for H256 {
    fn from(v: U256) -> Self {
        H256(v.to_be_bytes())
    }
}

impl From<H256> for U256 {
    fn from(h: H256) -> Self {
        h.to_u256()
    }
}

impl AsRef<[u8]> for H256 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl core::fmt::Debug for H256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "H256({})", self.to_hex())
    }
}

impl core::fmt::Display for H256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Display abbreviates: 0x12345678…9abcdef0
        let full = hex::encode(&self.0);
        write!(f, "0x{}…{}", &full[..8], &full[56..])
    }
}

impl serde::Serialize for H256 {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_hex())
    }
}

impl<'de> serde::Deserialize<'de> for H256 {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        H256::from_hex(&s).map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_constant() {
        assert!(H256::ZERO.is_zero());
        assert_eq!(H256::default(), H256::ZERO);
        assert!(!H256::from_low_u64(1).is_zero());
    }

    #[test]
    fn from_low_u64_places_bytes_at_end() {
        let h = H256::from_low_u64(0x0102);
        assert_eq!(h.as_bytes()[30], 0x01);
        assert_eq!(h.as_bytes()[31], 0x02);
        assert_eq!(h.as_bytes()[0], 0);
    }

    #[test]
    fn from_slice_validates_length() {
        assert!(H256::from_slice(&[0u8; 32]).is_ok());
        assert_eq!(
            H256::from_slice(&[0u8; 31]),
            Err(ParseError::WrongLength {
                expected: 32,
                got: 31
            })
        );
        assert!(H256::from_slice(&[0u8; 33]).is_err());
    }

    #[test]
    fn hex_round_trip() {
        let h = H256::from_low_u64(0xdeadbeef);
        let parsed = H256::from_hex(&h.to_hex()).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(h.to_hex().len(), 66);
        assert!(H256::from_hex("0x12").is_err());
    }

    #[test]
    fn u256_round_trip() {
        let v = U256::from(123_456_789u64);
        let h = H256::from(v);
        assert_eq!(h.to_u256(), v);
        assert_eq!(U256::from(h), v);
    }

    #[test]
    fn xor_combines() {
        let a = H256::from_low_u64(0b1100);
        let b = H256::from_low_u64(0b1010);
        assert_eq!(a.xor(&b), H256::from_low_u64(0b0110));
        assert_eq!(a.xor(&a), H256::ZERO);
    }

    #[test]
    fn display_abbreviates_and_debug_is_full() {
        let h = H256::from_low_u64(7);
        let display = format!("{h}");
        assert!(display.contains('…'));
        let debug = format!("{h:?}");
        assert!(debug.len() > display.len());
        assert!(debug.starts_with("H256(0x"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = H256::from_low_u64(1);
        let b = H256::from_low_u64(2);
        assert!(a < b);
        let mut c = [0u8; 32];
        c[0] = 1;
        assert!(H256::from_bytes(c) > b);
    }
}
