//! A minimal 512-bit unsigned integer.
//!
//! [`U512`] exists to hold the full product of two [`U256`] values so that
//! the EVM's `MULMOD` / `ADDMOD` opcodes and the secp256k1 scalar arithmetic
//! can be computed without losing the high half. Only the operations those
//! callers need are provided.

use crate::U256;

/// A 512-bit unsigned integer stored as eight little-endian 64-bit limbs.
///
/// # Example
///
/// ```
/// use tinyevm_types::{U256, U512};
///
/// let product = U256::MAX.full_mul(U256::MAX);
/// assert_eq!(product.rem_u256(U256::MAX), U256::ZERO);
/// let (lo, hi) = product.split();
/// assert_eq!(lo, U256::ONE);
/// assert_eq!(hi, U256::MAX - U256::ONE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U512([u64; 8]);

impl U512 {
    /// The value `0`.
    pub const ZERO: U512 = U512([0; 8]);

    /// Creates a value from raw little-endian limbs.
    #[inline]
    pub const fn from_limbs(limbs: [u64; 8]) -> Self {
        U512(limbs)
    }

    /// Returns the raw little-endian limbs.
    #[inline]
    pub const fn limbs(&self) -> [u64; 8] {
        self.0
    }

    /// Widens a [`U256`] into the low half of a [`U512`].
    pub fn from_u256(v: U256) -> Self {
        let l = v.limbs();
        U512([l[0], l[1], l[2], l[3], 0, 0, 0, 0])
    }

    /// Splits into `(low, high)` 256-bit halves.
    pub fn split(&self) -> (U256, U256) {
        (
            U256::from_limbs([self.0[0], self.0[1], self.0[2], self.0[3]]),
            U256::from_limbs([self.0[4], self.0[5], self.0[6], self.0[7]]),
        )
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&l| l == 0)
    }

    /// Number of significant bits.
    pub fn bits(&self) -> u32 {
        for i in (0..8).rev() {
            if self.0[i] != 0 {
                return (i as u32) * 64 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }

    /// Returns the value of bit `index`; bits at 512 or above are zero.
    pub fn bit(&self, index: usize) -> bool {
        if index >= 512 {
            return false;
        }
        self.0[index / 64] >> (index % 64) & 1 == 1
    }

    /// Wrapping addition modulo 2^512.
    pub fn wrapping_add(self, rhs: U512) -> U512 {
        let mut out = [0u64; 8];
        let mut carry = false;
        for i in 0..8 {
            let (sum, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (sum, c2) = sum.overflowing_add(carry as u64);
            out[i] = sum;
            carry = c1 || c2;
        }
        U512(out)
    }

    /// Wrapping subtraction modulo 2^512.
    pub fn wrapping_sub(self, rhs: U512) -> U512 {
        let mut out = [0u64; 8];
        let mut borrow = false;
        for i in 0..8 {
            let (diff, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (diff, b2) = diff.overflowing_sub(borrow as u64);
            out[i] = diff;
            borrow = b1 || b2;
        }
        U512(out)
    }

    /// Logical left shift by one bit.
    fn shl1(self) -> U512 {
        let mut out = [0u64; 8];
        let mut carry = 0u64;
        for i in 0..8 {
            out[i] = (self.0[i] << 1) | carry;
            carry = self.0[i] >> 63;
        }
        U512(out)
    }

    /// Remainder of division by a 256-bit modulus.
    ///
    /// Uses restoring binary division; the quotient is discarded. Returns
    /// zero when `modulus` is zero, mirroring the EVM convention.
    pub fn rem_u256(&self, modulus: U256) -> U256 {
        if modulus.is_zero() {
            return U256::ZERO;
        }
        let m = U512::from_u256(modulus);
        let total_bits = self.bits();
        if total_bits == 0 {
            return U256::ZERO;
        }
        let mut rem = U512::ZERO;
        for i in (0..total_bits as usize).rev() {
            rem = rem.shl1();
            if self.bit(i) {
                rem.0[0] |= 1;
            }
            if rem >= m {
                rem = rem.wrapping_sub(m);
            }
        }
        rem.split().0
    }
}

impl PartialOrd for U512 {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U512 {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        for i in (0..8).rev() {
            match self.0[i].cmp(&other.0[i]) {
                core::cmp::Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        core::cmp::Ordering::Equal
    }
}

impl core::fmt::Debug for U512 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let (lo, hi) = self.split();
        write!(f, "U512(hi={}, lo={})", hi.to_hex(), lo.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_u256_round_trip() {
        let v = U256::from(0xdead_beefu64);
        let wide = U512::from_u256(v);
        let (lo, hi) = wide.split();
        assert_eq!(lo, v);
        assert!(hi.is_zero());
    }

    #[test]
    fn zero_is_zero() {
        assert!(U512::ZERO.is_zero());
        assert_eq!(U512::ZERO.bits(), 0);
        assert!(!U512::from_u256(U256::ONE).is_zero());
    }

    #[test]
    fn add_carries_into_high_half() {
        let max_lo = U512::from_u256(U256::MAX);
        let one = U512::from_u256(U256::ONE);
        let sum = max_lo.wrapping_add(one);
        let (lo, hi) = sum.split();
        assert!(lo.is_zero());
        assert_eq!(hi, U256::ONE);
    }

    #[test]
    fn sub_borrows_from_high_half() {
        let high_one = U512::from_limbs([0, 0, 0, 0, 1, 0, 0, 0]);
        let one = U512::from_u256(U256::ONE);
        let diff = high_one.wrapping_sub(one);
        let (lo, hi) = diff.split();
        assert_eq!(lo, U256::MAX);
        assert!(hi.is_zero());
    }

    #[test]
    fn bits_counts_high_limbs() {
        let v = U512::from_limbs([0, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(v.bits(), 7 * 64 + 1);
        assert!(v.bit(448));
        assert!(!v.bit(447));
        assert!(!v.bit(600));
    }

    #[test]
    fn rem_of_small_values() {
        let v = U512::from_u256(U256::from(100u64));
        assert_eq!(v.rem_u256(U256::from(7u64)), U256::from(2u64));
        assert_eq!(v.rem_u256(U256::ZERO), U256::ZERO);
        assert_eq!(v.rem_u256(U256::from(100u64)), U256::ZERO);
    }

    #[test]
    fn rem_of_full_product_matches_mulmod_identity() {
        // (a * b) mod m == ((a mod m) * (b mod m)) mod m for small a, b.
        let a = U256::from(0xffff_ffff_ffff_fff1u64);
        let b = U256::from(0xffff_ffff_ffff_ff17u64);
        let m = U256::from(1_000_003u64);
        let full = a.full_mul(b);
        let expected = (a.rem(m).low_u128() * b.rem(m).low_u128()) % m.low_u128();
        assert_eq!(full.rem_u256(m), U256::from(expected));
    }

    #[test]
    fn ordering_compares_high_limbs_first() {
        let small = U512::from_u256(U256::MAX);
        let big = U512::from_limbs([0, 0, 0, 0, 1, 0, 0, 0]);
        assert!(big > small);
        assert_eq!(big.cmp(&big), core::cmp::Ordering::Equal);
    }

    #[test]
    fn debug_format_mentions_both_halves() {
        let v = U512::from_limbs([5, 0, 0, 0, 9, 0, 0, 0]);
        let s = format!("{v:?}");
        assert!(s.contains("0x9"));
        assert!(s.contains("0x5"));
    }
}
