//! A 256-bit unsigned integer with EVM semantics.
//!
//! The representation is four 64-bit little-endian limbs (`limbs[0]` is the
//! least-significant limb). All arithmetic operators wrap modulo 2^256, which
//! is exactly what the EVM's `ADD`, `MUL`, `SUB` opcodes specify; checked and
//! overflowing variants are provided for host-side code that wants to detect
//! overflow (for example balance accounting on the simulated main chain).

use crate::{hex, ParseError, U512};

/// Number of 64-bit limbs in a [`U256`].
pub const LIMBS: usize = 4;

/// A 256-bit unsigned integer.
///
/// # Example
///
/// ```
/// use tinyevm_types::U256;
///
/// let x = U256::from(10u64);
/// let y = U256::from_dec_str("32")?;
/// assert_eq!(x + y, U256::from(42u64));
/// assert_eq!(U256::MAX.wrapping_add(U256::ONE), U256::ZERO);
/// # Ok::<(), tinyevm_types::ParseError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub(crate) [u64; LIMBS]);

impl U256 {
    /// The value `0`.
    pub const ZERO: U256 = U256([0, 0, 0, 0]);
    /// The value `1`.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The largest representable value, `2^256 - 1`.
    pub const MAX: U256 = U256([u64::MAX; 4]);
    /// `2^255`, the most significant bit; the sign bit of the signed view.
    pub const SIGN_BIT: U256 = U256([0, 0, 0, 1 << 63]);

    /// Creates a value from raw little-endian limbs.
    #[inline]
    pub const fn from_limbs(limbs: [u64; LIMBS]) -> Self {
        U256(limbs)
    }

    /// Returns the raw little-endian limbs.
    #[inline]
    pub const fn limbs(&self) -> [u64; LIMBS] {
        self.0
    }

    /// Creates a value holding `v` in the least significant limb.
    #[inline]
    pub const fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Creates a value from a `u128`.
    #[inline]
    pub const fn from_u128(v: u128) -> Self {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }

    /// Returns the low 64 bits, discarding the rest.
    #[inline]
    pub const fn low_u64(&self) -> u64 {
        self.0[0]
    }

    /// Returns the low 128 bits, discarding the rest.
    #[inline]
    pub const fn low_u128(&self) -> u128 {
        (self.0[0] as u128) | ((self.0[1] as u128) << 64)
    }

    /// Converts to `u64` if the value fits.
    #[inline]
    pub fn to_u64(&self) -> Option<u64> {
        if self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0 {
            Some(self.0[0])
        } else {
            None
        }
    }

    /// Converts to `usize` if the value fits.
    ///
    /// This is the conversion the interpreter uses for memory offsets and
    /// jump destinations; anything that does not fit is treated as an
    /// out-of-range access by the caller.
    #[inline]
    pub fn to_usize(&self) -> Option<usize> {
        self.to_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// Returns `true` if the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Returns `true` if bit 255 is set (negative in the signed view).
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.0[3] >> 63 == 1
    }

    /// Number of significant bits (position of the highest set bit + 1).
    ///
    /// Returns `0` for the value zero.
    pub fn bits(&self) -> u32 {
        for i in (0..LIMBS).rev() {
            if self.0[i] != 0 {
                return (i as u32) * 64 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }

    /// Number of leading zero bits (256 for the value zero).
    pub fn leading_zeros(&self) -> u32 {
        256 - self.bits()
    }

    /// Returns the value of bit `index` (0 = least significant).
    ///
    /// Bits at index 256 or above are always zero.
    pub fn bit(&self, index: usize) -> bool {
        if index >= 256 {
            return false;
        }
        self.0[index / 64] >> (index % 64) & 1 == 1
    }

    /// Returns byte `index` in little-endian order (byte 0 is the least
    /// significant). Bytes at index 32 or above are zero.
    pub fn byte_le(&self, index: usize) -> u8 {
        if index >= 32 {
            return 0;
        }
        (self.0[index / 8] >> ((index % 8) * 8)) as u8
    }

    /// The EVM `BYTE` opcode: returns the `index`-th byte counting from the
    /// **most** significant end (index 0 is the most significant byte).
    pub fn byte_be(&self, index: usize) -> u8 {
        if index >= 32 {
            return 0;
        }
        self.byte_le(31 - index)
    }

    // --- conversions ------------------------------------------------------

    /// Big-endian 32-byte representation.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().rev().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// Little-endian 32-byte representation.
    pub fn to_le_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&limb.to_le_bytes());
        }
        out
    }

    /// Builds a value from a big-endian 32-byte array.
    pub fn from_be_bytes(bytes: [u8; 32]) -> Self {
        let mut limbs = [0u64; LIMBS];
        for i in 0..LIMBS {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
            limbs[LIMBS - 1 - i] = u64::from_be_bytes(chunk);
        }
        U256(limbs)
    }

    /// Builds a value from a big-endian slice of at most 32 bytes,
    /// left-padding with zeros (the EVM convention for `CALLDATALOAD` and
    /// stack pushes).
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::TooLong`] if the slice is longer than 32 bytes.
    pub fn from_be_slice(bytes: &[u8]) -> Result<Self, ParseError> {
        if bytes.len() > 32 {
            return Err(ParseError::TooLong {
                max: 32,
                got: bytes.len(),
            });
        }
        let mut buf = [0u8; 32];
        buf[32 - bytes.len()..].copy_from_slice(bytes);
        Ok(Self::from_be_bytes(buf))
    }

    /// Minimal big-endian encoding (no leading zero bytes; empty for zero).
    pub fn to_be_bytes_trimmed(&self) -> Vec<u8> {
        let bytes = self.to_be_bytes();
        let first = bytes.iter().position(|&b| b != 0).unwrap_or(32);
        bytes[first..].to_vec()
    }

    /// Parses a hexadecimal string with or without a `0x` prefix.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if the string is empty, contains a non-hex
    /// character, or encodes a number wider than 256 bits.
    pub fn from_hex(s: &str) -> Result<Self, ParseError> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.is_empty() {
            return Err(ParseError::Empty);
        }
        if s.len() > 64 {
            return Err(ParseError::TooLong {
                max: 32,
                got: s.len().div_ceil(2),
            });
        }
        let mut value = U256::ZERO;
        for c in s.chars() {
            let digit = c.to_digit(16).ok_or(ParseError::InvalidHexDigit(c))? as u64;
            value = (value << 4) | U256::from_u64(digit);
        }
        Ok(value)
    }

    /// Parses a decimal string.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if the string is empty, contains a non-digit
    /// character, or overflows 256 bits.
    pub fn from_dec_str(s: &str) -> Result<Self, ParseError> {
        if s.is_empty() {
            return Err(ParseError::Empty);
        }
        let mut value = U256::ZERO;
        for c in s.chars() {
            let digit = c.to_digit(10).ok_or(ParseError::InvalidHexDigit(c))? as u64;
            let (mul, overflow1) = value.overflowing_mul(U256::from_u64(10));
            let (add, overflow2) = mul.overflowing_add(U256::from_u64(digit));
            if overflow1 || overflow2 {
                return Err(ParseError::TooLong { max: 32, got: 33 });
            }
            value = add;
        }
        Ok(value)
    }

    /// Lower-hex string with a `0x` prefix and no leading zeros.
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0x0".to_string();
        }
        let s = hex::encode(&self.to_be_bytes());
        let trimmed = s.trim_start_matches('0');
        format!("0x{trimmed}")
    }

    /// Decimal string representation.
    pub fn to_dec_string(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut digits = Vec::new();
        let mut value = *self;
        let ten = U256::from_u64(10);
        while !value.is_zero() {
            let (q, r) = value.div_rem(ten);
            digits.push(char::from(b'0' + r.low_u64() as u8));
            value = q;
        }
        digits.iter().rev().collect()
    }

    // --- arithmetic -------------------------------------------------------

    /// Addition returning the wrapped result and an overflow flag.
    pub fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; LIMBS];
        let mut carry = false;
        for i in 0..LIMBS {
            let (sum, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (sum, c2) = sum.overflowing_add(carry as u64);
            out[i] = sum;
            carry = c1 || c2;
        }
        (U256(out), carry)
    }

    /// Wrapping addition (modulo 2^256), the semantics of the EVM `ADD`.
    #[inline]
    pub fn wrapping_add(self, rhs: U256) -> U256 {
        self.overflowing_add(rhs).0
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, rhs: U256) -> Option<U256> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Subtraction returning the wrapped result and a borrow flag.
    pub fn overflowing_sub(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; LIMBS];
        let mut borrow = false;
        for i in 0..LIMBS {
            let (diff, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (diff, b2) = diff.overflowing_sub(borrow as u64);
            out[i] = diff;
            borrow = b1 || b2;
        }
        (U256(out), borrow)
    }

    /// Wrapping subtraction (modulo 2^256), the semantics of the EVM `SUB`.
    #[inline]
    pub fn wrapping_sub(self, rhs: U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Checked subtraction, `None` on underflow.
    pub fn checked_sub(self, rhs: U256) -> Option<U256> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Multiplication returning the wrapped result and an overflow flag.
    pub fn overflowing_mul(self, rhs: U256) -> (U256, bool) {
        let wide = self.full_mul(rhs);
        let (lo, hi) = wide.split();
        (lo, !hi.is_zero())
    }

    /// Wrapping multiplication (modulo 2^256), the semantics of the EVM `MUL`.
    #[inline]
    pub fn wrapping_mul(self, rhs: U256) -> U256 {
        self.overflowing_mul(rhs).0
    }

    /// Checked multiplication, `None` on overflow.
    pub fn checked_mul(self, rhs: U256) -> Option<U256> {
        match self.overflowing_mul(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Full 512-bit product of two 256-bit values.
    pub fn full_mul(self, rhs: U256) -> U512 {
        let mut out = [0u64; 8];
        for i in 0..LIMBS {
            let mut carry = 0u128;
            for j in 0..LIMBS {
                let cur = out[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            out[i + LIMBS] = carry as u64;
        }
        U512::from_limbs(out)
    }

    /// Simultaneous quotient and remainder.
    ///
    /// Follows the EVM convention: division by zero yields `(0, 0)` instead
    /// of panicking, because `DIV`/`MOD` by zero must produce zero.
    pub fn div_rem(self, divisor: U256) -> (U256, U256) {
        if divisor.is_zero() {
            return (U256::ZERO, U256::ZERO);
        }
        if self < divisor {
            return (U256::ZERO, self);
        }
        if divisor.bits() <= 64 {
            let d = divisor.low_u64();
            let mut rem = 0u128;
            let mut out = [0u64; LIMBS];
            for i in (0..LIMBS).rev() {
                let cur = (rem << 64) | self.0[i] as u128;
                out[i] = (cur / d as u128) as u64;
                rem = cur % d as u128;
            }
            return (U256(out), U256::from_u64(rem as u64));
        }
        let (q, r) = divide_limbs(&self.0, &divisor.0);
        (U256(q), U256(r))
    }

    /// Quotient (zero when dividing by zero, per EVM `DIV`).
    #[inline]
    pub fn div(self, divisor: U256) -> U256 {
        self.div_rem(divisor).0
    }

    /// Remainder (zero when dividing by zero, per EVM `MOD`).
    #[inline]
    pub fn rem(self, divisor: U256) -> U256 {
        self.div_rem(divisor).1
    }

    /// `(self + rhs) mod modulus` computed without intermediate overflow
    /// (EVM `ADDMOD`). Returns zero when `modulus` is zero.
    pub fn add_mod(self, rhs: U256, modulus: U256) -> U256 {
        if modulus.is_zero() {
            return U256::ZERO;
        }
        let a = U512::from_u256(self);
        let b = U512::from_u256(rhs);
        let sum = a.wrapping_add(b);
        sum.rem_u256(modulus)
    }

    /// `(self * rhs) mod modulus` computed over the 512-bit product
    /// (EVM `MULMOD`). Returns zero when `modulus` is zero.
    pub fn mul_mod(self, rhs: U256, modulus: U256) -> U256 {
        if modulus.is_zero() {
            return U256::ZERO;
        }
        self.full_mul(rhs).rem_u256(modulus)
    }

    /// Wrapping exponentiation (EVM `EXP`): `self^exp mod 2^256`.
    pub fn wrapping_pow(self, mut exp: U256) -> U256 {
        let mut base = self;
        let mut result = U256::ONE;
        while !exp.is_zero() {
            if exp.bit(0) {
                result = result.wrapping_mul(base);
            }
            base = base.wrapping_mul(base);
            exp = exp >> 1;
        }
        result
    }

    /// Modular exponentiation: `self^exp mod modulus`.
    ///
    /// Returns zero when `modulus` is zero and one when `modulus` is one.
    pub fn pow_mod(self, mut exp: U256, modulus: U256) -> U256 {
        if modulus.is_zero() {
            return U256::ZERO;
        }
        if modulus == U256::ONE {
            return U256::ZERO;
        }
        let mut base = self.rem(modulus);
        let mut result = U256::ONE;
        while !exp.is_zero() {
            if exp.bit(0) {
                result = result.mul_mod(base, modulus);
            }
            base = base.mul_mod(base, modulus);
            exp = exp >> 1;
        }
        result
    }

    /// Two's-complement negation: `0 - self mod 2^256`.
    #[inline]
    pub fn wrapping_neg(self) -> U256 {
        U256::ZERO.wrapping_sub(self)
    }

    // --- shifts -----------------------------------------------------------

    /// Logical left shift; shifts of 256 or more produce zero (EVM `SHL`).
    pub fn shl(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; LIMBS];
        for i in (limb_shift..LIMBS).rev() {
            out[i] = self.0[i - limb_shift] << bit_shift;
            if bit_shift > 0 && i > limb_shift {
                out[i] |= self.0[i - limb_shift - 1] >> (64 - bit_shift);
            }
        }
        U256(out)
    }

    /// Logical right shift; shifts of 256 or more produce zero (EVM `SHR`).
    pub fn shr(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; LIMBS];
        for i in 0..LIMBS - limb_shift {
            out[i] = self.0[i + limb_shift] >> bit_shift;
            if bit_shift > 0 && i + limb_shift + 1 < LIMBS {
                out[i] |= self.0[i + limb_shift + 1] << (64 - bit_shift);
            }
        }
        U256(out)
    }

    /// Arithmetic (sign-extending) right shift, the EVM `SAR` semantics:
    /// shifting a negative value by 256 or more produces all ones.
    pub fn sar(self, shift: u32) -> U256 {
        let negative = self.is_negative();
        if shift >= 256 {
            return if negative { U256::MAX } else { U256::ZERO };
        }
        let logical = self.shr(shift);
        if negative && shift > 0 {
            // Fill the vacated high bits with ones.
            let fill = U256::MAX.shl(256 - shift);
            logical | fill
        } else {
            logical
        }
    }

    /// The EVM `SIGNEXTEND` operation: treat `self` as a signed integer of
    /// `byte_index + 1` bytes and sign-extend it to 256 bits.
    pub fn sign_extend(self, byte_index: U256) -> U256 {
        let Some(idx) = byte_index.to_usize() else {
            return self;
        };
        if idx >= 31 {
            return self;
        }
        let bit = idx * 8 + 7;
        let mask = (U256::ONE.shl(bit as u32 + 1)).wrapping_sub(U256::ONE);
        if self.bit(bit) {
            self | !mask
        } else {
            self & mask
        }
    }

    /// Integer square root (largest `r` with `r*r <= self`).
    pub fn isqrt(self) -> U256 {
        if self.is_zero() {
            return U256::ZERO;
        }
        let mut x = U256::ONE.shl(self.bits().div_ceil(2));
        loop {
            let y = (x.wrapping_add(self.div(x))) >> 1;
            if y >= x {
                return x;
            }
            x = y;
        }
    }
}

/// Knuth algorithm D long division for the general (multi-limb divisor) case.
///
/// `num` and `div` are little-endian limb arrays; `div` has at least two
/// significant limbs and `num >= div`.
fn divide_limbs(num: &[u64; 4], div: &[u64; 4]) -> ([u64; 4], [u64; 4]) {
    // Work with variable-length vectors of significant limbs.
    let n_len = significant_limbs(num);
    let d_len = significant_limbs(div);
    debug_assert!(d_len >= 2);

    // Normalize so the top bit of the divisor's top limb is set.
    let shift = div[d_len - 1].leading_zeros();
    let mut d = vec![0u64; d_len];
    let mut n = vec![0u64; n_len + 1];
    // Shift divisor left by `shift`.
    for i in (0..d_len).rev() {
        d[i] = div[i] << shift;
        if shift > 0 && i > 0 {
            d[i] |= div[i - 1] >> (64 - shift);
        }
    }
    // Shift numerator left by `shift` with an extra limb of headroom.
    for i in (0..n_len).rev() {
        n[i] = num[i] << shift;
        if shift > 0 && i > 0 {
            n[i] |= num[i - 1] >> (64 - shift);
        }
    }
    if shift > 0 {
        n[n_len] = num[n_len - 1] >> (64 - shift);
    }

    let mut quotient = [0u64; 4];
    let m = n_len - d_len; // number of quotient limbs minus one
    for j in (0..=m).rev() {
        // Estimate q_hat from the top two limbs of the remainder.
        let top = ((n[j + d_len] as u128) << 64) | n[j + d_len - 1] as u128;
        let mut q_hat = top / d[d_len - 1] as u128;
        let mut r_hat = top % d[d_len - 1] as u128;
        while q_hat >= (1u128 << 64)
            || q_hat * d[d_len - 2] as u128 > ((r_hat << 64) | n[j + d_len - 2] as u128)
        {
            q_hat -= 1;
            r_hat += d[d_len - 1] as u128;
            if r_hat >= (1u128 << 64) {
                break;
            }
        }

        // Multiply-subtract: n[j..j+d_len+1] -= q_hat * d.
        let mut borrow: i128 = 0;
        let mut carry: u128 = 0;
        for i in 0..d_len {
            let product = q_hat * d[i] as u128 + carry;
            carry = product >> 64;
            let sub = n[j + i] as i128 - (product as u64) as i128 - borrow;
            n[j + i] = sub as u64;
            borrow = if sub < 0 { 1 } else { 0 };
        }
        let sub = n[j + d_len] as i128 - carry as i128 - borrow;
        n[j + d_len] = sub as u64;

        if sub < 0 {
            // q_hat was one too large: add the divisor back.
            q_hat -= 1;
            let mut carry = 0u128;
            for i in 0..d_len {
                let sum = n[j + i] as u128 + d[i] as u128 + carry;
                n[j + i] = sum as u64;
                carry = sum >> 64;
            }
            n[j + d_len] = n[j + d_len].wrapping_add(carry as u64);
        }
        if j < 4 {
            quotient[j] = q_hat as u64;
        }
    }

    // Denormalize the remainder.
    let mut remainder = [0u64; 4];
    for i in 0..d_len {
        remainder[i] = n[i] >> shift;
        if shift > 0 && i + 1 < n.len() {
            remainder[i] |= n[i + 1] << (64 - shift);
        }
    }
    (quotient, remainder)
}

fn significant_limbs(limbs: &[u64; 4]) -> usize {
    for i in (0..4).rev() {
        if limbs[i] != 0 {
            return i + 1;
        }
    }
    1
}

// --- operator impls --------------------------------------------------------

impl core::ops::Add for U256 {
    type Output = U256;
    #[inline]
    fn add(self, rhs: U256) -> U256 {
        self.wrapping_add(rhs)
    }
}

impl core::ops::AddAssign for U256 {
    #[inline]
    fn add_assign(&mut self, rhs: U256) {
        *self = *self + rhs;
    }
}

impl core::ops::Sub for U256 {
    type Output = U256;
    #[inline]
    fn sub(self, rhs: U256) -> U256 {
        self.wrapping_sub(rhs)
    }
}

impl core::ops::SubAssign for U256 {
    #[inline]
    fn sub_assign(&mut self, rhs: U256) {
        *self = *self - rhs;
    }
}

impl core::ops::Mul for U256 {
    type Output = U256;
    #[inline]
    fn mul(self, rhs: U256) -> U256 {
        self.wrapping_mul(rhs)
    }
}

impl core::ops::Div for U256 {
    type Output = U256;
    #[inline]
    fn div(self, rhs: U256) -> U256 {
        self.div_rem(rhs).0
    }
}

impl core::ops::Rem for U256 {
    type Output = U256;
    #[inline]
    fn rem(self, rhs: U256) -> U256 {
        self.div_rem(rhs).1
    }
}

impl core::ops::BitAnd for U256 {
    type Output = U256;
    fn bitand(self, rhs: U256) -> U256 {
        U256([
            self.0[0] & rhs.0[0],
            self.0[1] & rhs.0[1],
            self.0[2] & rhs.0[2],
            self.0[3] & rhs.0[3],
        ])
    }
}

impl core::ops::BitOr for U256 {
    type Output = U256;
    fn bitor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] | rhs.0[0],
            self.0[1] | rhs.0[1],
            self.0[2] | rhs.0[2],
            self.0[3] | rhs.0[3],
        ])
    }
}

impl core::ops::BitXor for U256 {
    type Output = U256;
    fn bitxor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] ^ rhs.0[0],
            self.0[1] ^ rhs.0[1],
            self.0[2] ^ rhs.0[2],
            self.0[3] ^ rhs.0[3],
        ])
    }
}

impl core::ops::Not for U256 {
    type Output = U256;
    fn not(self) -> U256 {
        U256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl core::ops::Shl<u32> for U256 {
    type Output = U256;
    #[inline]
    fn shl(self, shift: u32) -> U256 {
        U256::shl(self, shift)
    }
}

impl core::ops::Shr<u32> for U256 {
    type Output = U256;
    #[inline]
    fn shr(self, shift: u32) -> U256 {
        U256::shr(self, shift)
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        for i in (0..LIMBS).rev() {
            match self.0[i].cmp(&other.0[i]) {
                core::cmp::Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        core::cmp::Ordering::Equal
    }
}

impl From<u8> for U256 {
    fn from(v: u8) -> Self {
        U256::from_u64(v as u64)
    }
}

impl From<u16> for U256 {
    fn from(v: u16) -> Self {
        U256::from_u64(v as u64)
    }
}

impl From<u32> for U256 {
    fn from(v: u32) -> Self {
        U256::from_u64(v as u64)
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256::from_u128(v)
    }
}

impl From<usize> for U256 {
    fn from(v: usize) -> Self {
        U256::from_u64(v as u64)
    }
}

impl core::fmt::Debug for U256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "U256({})", self.to_hex())
    }
}

impl core::fmt::Display for U256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.to_dec_string())
    }
}

impl core::fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = self.to_hex();
        write!(f, "{}", s.strip_prefix("0x").unwrap_or(&s))
    }
}

impl core::fmt::UpperHex for U256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = self.to_hex();
        write!(f, "{}", s.strip_prefix("0x").unwrap_or(&s).to_uppercase())
    }
}

impl core::fmt::Binary for U256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut started = false;
        for i in (0..256).rev() {
            let bit = self.bit(i);
            if bit {
                started = true;
            }
            if started {
                write!(f, "{}", if bit { '1' } else { '0' })?;
            }
        }
        Ok(())
    }
}

impl serde::Serialize for U256 {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_hex())
    }
}

impl<'de> serde::Deserialize<'de> for U256 {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        U256::from_hex(&s).map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u128) -> U256 {
        U256::from_u128(v)
    }

    #[test]
    fn zero_and_one_constants() {
        assert!(U256::ZERO.is_zero());
        assert_eq!(U256::ONE.low_u64(), 1);
        assert_eq!(U256::default(), U256::ZERO);
    }

    #[test]
    fn add_small_values() {
        assert_eq!(u(2) + u(3), u(5));
        assert_eq!(u(0) + u(0), u(0));
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = U256::from_limbs([u64::MAX, 0, 0, 0]);
        assert_eq!(a + U256::ONE, U256::from_limbs([0, 1, 0, 0]));
        let b = U256::from_limbs([u64::MAX, u64::MAX, u64::MAX, 0]);
        assert_eq!(b + U256::ONE, U256::from_limbs([0, 0, 0, 1]));
    }

    #[test]
    fn add_wraps_at_max() {
        assert_eq!(U256::MAX.wrapping_add(U256::ONE), U256::ZERO);
        let (v, overflow) = U256::MAX.overflowing_add(U256::ONE);
        assert!(overflow);
        assert!(v.is_zero());
        assert_eq!(U256::MAX.checked_add(U256::ONE), None);
        assert_eq!(U256::MAX.checked_add(U256::ZERO), Some(U256::MAX));
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = U256::from_limbs([0, 1, 0, 0]);
        assert_eq!(a - U256::ONE, U256::from_limbs([u64::MAX, 0, 0, 0]));
    }

    #[test]
    fn sub_wraps_below_zero() {
        assert_eq!(U256::ZERO.wrapping_sub(U256::ONE), U256::MAX);
        assert_eq!(U256::ZERO.checked_sub(U256::ONE), None);
    }

    #[test]
    fn mul_small_and_large() {
        assert_eq!(u(7) * u(6), u(42));
        assert_eq!(u(u64::MAX as u128) * u(2), u(u64::MAX as u128 * 2));
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1, still fits.
        let a = U256::from_u128(u128::MAX);
        let sq = a * a;
        assert!(sq.bit(0));
        assert_eq!(sq.bits(), 256);
    }

    #[test]
    fn mul_overflow_detection() {
        let big = U256::ONE.shl(200);
        let (_, overflow) = big.overflowing_mul(big);
        assert!(overflow);
        assert_eq!(big.checked_mul(big), None);
        assert_eq!(u(3).checked_mul(u(4)), Some(u(12)));
    }

    #[test]
    fn div_rem_basic() {
        assert_eq!(u(10).div_rem(u(3)), (u(3), u(1)));
        assert_eq!(u(10).div_rem(u(10)), (u(1), u(0)));
        assert_eq!(u(3).div_rem(u(10)), (u(0), u(3)));
    }

    #[test]
    fn div_by_zero_is_zero() {
        assert_eq!(u(10).div(U256::ZERO), U256::ZERO);
        assert_eq!(u(10).rem(U256::ZERO), U256::ZERO);
    }

    #[test]
    fn div_rem_multi_limb_divisor() {
        // numerator = 2^200 + 12345, divisor = 2^100 + 7
        let num = U256::ONE.shl(200) + u(12345);
        let div = U256::ONE.shl(100) + u(7);
        let (q, r) = num.div_rem(div);
        assert_eq!(q * div + r, num);
        assert!(r < div);
    }

    #[test]
    fn div_rem_max_values() {
        let (q, r) = U256::MAX.div_rem(U256::MAX);
        assert_eq!(q, U256::ONE);
        assert_eq!(r, U256::ZERO);
        let (q, r) = U256::MAX.div_rem(u(2));
        assert_eq!(q, U256::MAX >> 1);
        assert_eq!(r, U256::ONE);
    }

    #[test]
    fn full_mul_splits_correctly() {
        let a = U256::MAX;
        let product = a.full_mul(a);
        // (2^256-1)^2 = 2^512 - 2^257 + 1
        let (lo, hi) = product.split();
        assert_eq!(lo, U256::ONE);
        assert_eq!(hi, U256::MAX - U256::ONE);
    }

    #[test]
    fn addmod_handles_overflow() {
        let m = u(100);
        assert_eq!(U256::MAX.add_mod(U256::MAX, m), {
            // (2^256-1)*2 mod 100
            let v = U256::MAX.rem(m).low_u64();
            u((v as u128) * 2 % 100)
        });
        assert_eq!(u(7).add_mod(u(9), u(5)), u(1));
        assert_eq!(u(7).add_mod(u(9), U256::ZERO), U256::ZERO);
    }

    #[test]
    fn mulmod_uses_full_product() {
        let a = U256::MAX;
        let b = U256::MAX;
        // (2^256-1)^2 mod (2^256-1) == 0
        assert_eq!(a.mul_mod(b, U256::MAX), U256::ZERO);
        assert_eq!(u(7).mul_mod(u(9), u(5)), u(3));
        assert_eq!(u(7).mul_mod(u(9), U256::ZERO), U256::ZERO);
    }

    #[test]
    fn pow_small() {
        assert_eq!(u(2).wrapping_pow(u(10)), u(1024));
        assert_eq!(u(0).wrapping_pow(u(0)), u(1)); // EVM: 0^0 = 1
        assert_eq!(u(5).wrapping_pow(u(0)), u(1));
        assert_eq!(u(0).wrapping_pow(u(5)), u(0));
    }

    #[test]
    fn pow_wraps() {
        assert_eq!(u(2).wrapping_pow(u(256)), U256::ZERO);
        assert_eq!(u(2).wrapping_pow(u(255)), U256::SIGN_BIT);
    }

    #[test]
    fn pow_mod_matches_naive() {
        let result = u(3).pow_mod(u(20), u(1000));
        // 3^20 = 3486784401; mod 1000 = 401
        assert_eq!(result, u(401));
        assert_eq!(u(3).pow_mod(u(20), U256::ZERO), U256::ZERO);
        assert_eq!(u(3).pow_mod(u(20), U256::ONE), U256::ZERO);
    }

    #[test]
    fn shl_shr_basic() {
        assert_eq!(u(1).shl(4), u(16));
        assert_eq!(u(16).shr(4), u(1));
        assert_eq!(u(1).shl(64), U256::from_limbs([0, 1, 0, 0]));
        assert_eq!(U256::from_limbs([0, 1, 0, 0]).shr(64), u(1));
        assert_eq!(u(1).shl(70), U256::from_limbs([0, 64, 0, 0]));
    }

    #[test]
    fn shl_shr_out_of_range() {
        assert_eq!(U256::MAX.shl(256), U256::ZERO);
        assert_eq!(U256::MAX.shr(256), U256::ZERO);
        assert_eq!(U256::MAX.shl(1000), U256::ZERO);
    }

    #[test]
    fn sar_positive_is_logical() {
        assert_eq!(u(16).sar(2), u(4));
        assert_eq!(u(16).sar(300), U256::ZERO);
    }

    #[test]
    fn sar_negative_fills_with_ones() {
        // -8 >> 1 == -4 in two's complement
        let minus_8 = u(8).wrapping_neg();
        let minus_4 = u(4).wrapping_neg();
        assert_eq!(minus_8.sar(1), minus_4);
        assert_eq!(minus_8.sar(300), U256::MAX);
        assert_eq!(U256::MAX.sar(255), U256::MAX);
    }

    #[test]
    fn sign_extend_behaves_like_evm() {
        // 0xff sign-extended from byte 0 is -1.
        assert_eq!(u(0xff).sign_extend(u(0)), U256::MAX);
        // 0x7f stays positive.
        assert_eq!(u(0x7f).sign_extend(u(0)), u(0x7f));
        // Index >= 31 leaves the value unchanged.
        assert_eq!(u(0xff).sign_extend(u(31)), u(0xff));
        assert_eq!(u(0xff).sign_extend(U256::MAX), u(0xff));
        // 0x8000 sign-extended from byte 1 is negative.
        let extended = u(0x8000).sign_extend(u(1));
        assert!(extended.is_negative());
        assert_eq!(extended.byte_le(1), 0x80);
        assert_eq!(extended.byte_le(2), 0xff);
    }

    #[test]
    fn byte_indexing() {
        let v =
            U256::from_hex("0x0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20")
                .unwrap();
        assert_eq!(v.byte_be(0), 0x01);
        assert_eq!(v.byte_be(31), 0x20);
        assert_eq!(v.byte_le(0), 0x20);
        assert_eq!(v.byte_le(31), 0x01);
        assert_eq!(v.byte_be(32), 0);
        assert_eq!(v.byte_le(32), 0);
    }

    #[test]
    fn bits_and_leading_zeros() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!(u(0xff).bits(), 8);
        assert_eq!(U256::MAX.bits(), 256);
        assert_eq!(U256::ZERO.leading_zeros(), 256);
        assert_eq!(U256::MAX.leading_zeros(), 0);
        assert_eq!(U256::SIGN_BIT.bits(), 256);
    }

    #[test]
    fn bit_accessor() {
        assert!(U256::ONE.bit(0));
        assert!(!U256::ONE.bit(1));
        assert!(U256::SIGN_BIT.bit(255));
        assert!(!U256::SIGN_BIT.bit(256));
        assert!(!U256::MAX.bit(1000));
    }

    #[test]
    fn be_bytes_round_trip() {
        let v = u(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210);
        assert_eq!(U256::from_be_bytes(v.to_be_bytes()), v);
        let bytes = U256::ONE.to_be_bytes();
        assert_eq!(bytes[31], 1);
        assert!(bytes[..31].iter().all(|&b| b == 0));
    }

    #[test]
    fn le_bytes_match_be_reversed() {
        let v = u(0xdead_beef_cafe_babe);
        let mut le = v.to_le_bytes();
        le.reverse();
        assert_eq!(le, v.to_be_bytes());
    }

    #[test]
    fn from_be_slice_pads_left() {
        assert_eq!(U256::from_be_slice(&[0x12, 0x34]).unwrap(), u(0x1234));
        assert_eq!(U256::from_be_slice(&[]).unwrap(), U256::ZERO);
        assert!(U256::from_be_slice(&[0u8; 33]).is_err());
    }

    #[test]
    fn trimmed_bytes() {
        assert_eq!(u(0).to_be_bytes_trimmed(), Vec::<u8>::new());
        assert_eq!(u(1).to_be_bytes_trimmed(), vec![1]);
        assert_eq!(u(0x0100).to_be_bytes_trimmed(), vec![1, 0]);
    }

    #[test]
    fn hex_round_trip() {
        let v = U256::from_hex("0xdeadbeef").unwrap();
        assert_eq!(v, u(0xdeadbeef));
        assert_eq!(v.to_hex(), "0xdeadbeef");
        assert_eq!(U256::ZERO.to_hex(), "0x0");
        assert_eq!(U256::from_hex("0x0").unwrap(), U256::ZERO);
        assert_eq!(U256::from_hex("ff").unwrap(), u(255));
        assert!(U256::from_hex("").is_err());
        assert!(U256::from_hex("0xzz").is_err());
        assert!(U256::from_hex(&"f".repeat(65)).is_err());
    }

    #[test]
    fn dec_round_trip() {
        let v = U256::from_dec_str("123456789012345678901234567890").unwrap();
        assert_eq!(v.to_dec_string(), "123456789012345678901234567890");
        assert_eq!(U256::ZERO.to_dec_string(), "0");
        assert!(U256::from_dec_str("").is_err());
        assert!(U256::from_dec_str("12a").is_err());
        // 2^256 overflows.
        let too_big =
            "115792089237316195423570985008687907853269984665640564039457584007913129639936";
        assert!(U256::from_dec_str(too_big).is_err());
        // 2^256 - 1 is fine.
        let max = "115792089237316195423570985008687907853269984665640564039457584007913129639935";
        assert_eq!(U256::from_dec_str(max).unwrap(), U256::MAX);
        assert_eq!(U256::MAX.to_dec_string(), max);
    }

    #[test]
    fn ordering() {
        assert!(u(1) < u(2));
        assert!(
            U256::from_limbs([0, 0, 0, 1]) > U256::from_limbs([u64::MAX, u64::MAX, u64::MAX, 0])
        );
        assert_eq!(u(5).cmp(&u(5)), core::cmp::Ordering::Equal);
        assert!(U256::MAX > U256::SIGN_BIT);
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(u(0b1100) & u(0b1010), u(0b1000));
        assert_eq!(u(0b1100) | u(0b1010), u(0b1110));
        assert_eq!(u(0b1100) ^ u(0b1010), u(0b0110));
        assert_eq!(!U256::ZERO, U256::MAX);
        assert_eq!(!U256::MAX, U256::ZERO);
    }

    #[test]
    fn negation() {
        assert_eq!(U256::ZERO.wrapping_neg(), U256::ZERO);
        assert_eq!(U256::ONE.wrapping_neg(), U256::MAX);
        assert_eq!(u(5).wrapping_neg().wrapping_add(u(5)), U256::ZERO);
    }

    #[test]
    fn isqrt_values() {
        assert_eq!(U256::ZERO.isqrt(), U256::ZERO);
        assert_eq!(u(1).isqrt(), u(1));
        assert_eq!(u(15).isqrt(), u(3));
        assert_eq!(u(16).isqrt(), u(4));
        assert_eq!(u(17).isqrt(), u(4));
        let big = U256::ONE.shl(200);
        assert_eq!(big.isqrt(), U256::ONE.shl(100));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", u(42)), "42");
        assert_eq!(format!("{:?}", u(255)), "U256(0xff)");
        assert_eq!(format!("{:x}", u(255)), "ff");
        assert_eq!(format!("{:X}", u(255)), "FF");
        assert_eq!(format!("{:b}", u(5)), "101");
        assert_eq!(format!("{:b}", U256::ZERO), "0");
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(U256::from(5u8), u(5));
        assert_eq!(U256::from(5u16), u(5));
        assert_eq!(U256::from(5u32), u(5));
        assert_eq!(U256::from(5u64), u(5));
        assert_eq!(U256::from(5u128), u(5));
        assert_eq!(U256::from(5usize), u(5));
        assert_eq!(U256::from(u128::MAX).low_u128(), u128::MAX);
    }

    #[test]
    fn to_u64_and_usize() {
        assert_eq!(u(42).to_u64(), Some(42));
        assert_eq!(U256::MAX.to_u64(), None);
        assert_eq!(u(42).to_usize(), Some(42));
        assert_eq!(U256::from_limbs([1, 1, 0, 0]).to_usize(), None);
    }

    #[test]
    fn serde_round_trip() {
        let v = u(0xdeadbeef);
        let json = serde_json_like_roundtrip(&v);
        assert_eq!(json, v);
    }

    // Small helper that exercises Serialize/Deserialize without pulling in
    // serde_json: it serializes to the hex string and parses it back.
    fn serde_json_like_roundtrip(v: &U256) -> U256 {
        U256::from_hex(&v.to_hex()).unwrap()
    }
}
