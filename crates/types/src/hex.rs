//! Zero-dependency hexadecimal encoding and decoding.
//!
//! The TinyEVM toolchain moves bytecode, hashes and signatures around as hex
//! strings (the same convention as the Ethereum JSON-RPC interface). These
//! helpers are deliberately tiny so that every crate in the workspace can use
//! them without pulling in an external dependency.

use crate::ParseError;

const HEX_CHARS: &[u8; 16] = b"0123456789abcdef";

/// Encodes bytes as a lowercase hex string without a prefix.
///
/// # Example
///
/// ```
/// assert_eq!(tinyevm_types::hex::encode(&[0xde, 0xad]), "dead");
/// assert_eq!(tinyevm_types::hex::encode(&[]), "");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX_CHARS[(b >> 4) as usize] as char);
        out.push(HEX_CHARS[(b & 0x0f) as usize] as char);
    }
    out
}

/// Encodes bytes as a lowercase hex string with a `0x` prefix.
///
/// # Example
///
/// ```
/// assert_eq!(tinyevm_types::hex::encode_prefixed(&[0x01]), "0x01");
/// ```
pub fn encode_prefixed(bytes: &[u8]) -> String {
    format!("0x{}", encode(bytes))
}

/// Decodes a hex string (with or without a `0x` prefix) into bytes.
///
/// # Errors
///
/// Returns [`ParseError::OddLength`] when the digit count is odd and
/// [`ParseError::InvalidHexDigit`] when a non-hex character is found.
///
/// # Example
///
/// ```
/// assert_eq!(tinyevm_types::hex::decode("0xdead")?, vec![0xde, 0xad]);
/// assert_eq!(tinyevm_types::hex::decode("beef")?, vec![0xbe, 0xef]);
/// # Ok::<(), tinyevm_types::ParseError>(())
/// ```
pub fn decode(s: &str) -> Result<Vec<u8>, ParseError> {
    let s = s.strip_prefix("0x").unwrap_or(s);
    if s.len() % 2 != 0 {
        return Err(ParseError::OddLength);
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks_exact(2) {
        let hi = hex_value(pair[0] as char)?;
        let lo = hex_value(pair[1] as char)?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

fn hex_value(c: char) -> Result<u8, ParseError> {
    c.to_digit(16)
        .map(|d| d as u8)
        .ok_or(ParseError::InvalidHexDigit(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_known_values() {
        assert_eq!(encode(&[]), "");
        assert_eq!(encode(&[0x00]), "00");
        assert_eq!(encode(&[0xff, 0x01, 0xab]), "ff01ab");
        assert_eq!(encode_prefixed(&[0xff]), "0xff");
        assert_eq!(encode_prefixed(&[]), "0x");
    }

    #[test]
    fn decode_known_values() {
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
        assert_eq!(decode("0x").unwrap(), Vec::<u8>::new());
        assert_eq!(decode("ff01ab").unwrap(), vec![0xff, 0x01, 0xab]);
        assert_eq!(decode("0xFF01AB").unwrap(), vec![0xff, 0x01, 0xab]);
    }

    #[test]
    fn decode_rejects_bad_input() {
        assert_eq!(decode("abc"), Err(ParseError::OddLength));
        assert_eq!(decode("zz"), Err(ParseError::InvalidHexDigit('z')));
        assert_eq!(decode("0xg0"), Err(ParseError::InvalidHexDigit('g')));
    }

    #[test]
    fn round_trip_all_byte_values() {
        let bytes: Vec<u8> = (0..=255u8).collect();
        assert_eq!(decode(&encode(&bytes)).unwrap(), bytes);
        assert_eq!(decode(&encode_prefixed(&bytes)).unwrap(), bytes);
    }
}
