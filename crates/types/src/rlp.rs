//! Recursive Length Prefix (RLP) encoding.
//!
//! Ethereum hashes structured data — transactions, commits, signed payment
//! payloads — by first serializing it with RLP and then applying Keccak-256.
//! TinyEVM's signed off-chain payments and on-chain commits follow the same
//! convention so that a payment produced on the IoT device is a stand-alone
//! artifact any Ethereum-style verifier can check.
//!
//! Only the subset needed by this workspace is implemented: byte strings,
//! unsigned integers (minimal big-endian), and lists, plus a decoder used by
//! tests and by the chain's commit verification.

use crate::{Address, ParseError, H256, U256};

/// Incremental RLP encoder.
///
/// # Example
///
/// ```
/// use tinyevm_types::rlp::RlpStream;
/// use tinyevm_types::U256;
///
/// let mut s = RlpStream::new_list(2);
/// s.append_u256(&U256::from(1024u64));
/// s.append_bytes(b"dog");
/// let encoded = s.finish();
/// assert_eq!(encoded[0], 0xc0 + 7); // list of 7 payload bytes
/// ```
#[derive(Debug, Clone)]
pub struct RlpStream {
    buf: Vec<u8>,
    expected_items: Option<usize>,
    appended: usize,
}

impl RlpStream {
    /// Starts a stream encoding a single (non-list) item sequence.
    pub fn new() -> Self {
        RlpStream {
            buf: Vec::new(),
            expected_items: None,
            appended: 0,
        }
    }

    /// Starts a stream that will encode a list of exactly `len` items.
    pub fn new_list(len: usize) -> Self {
        RlpStream {
            buf: Vec::new(),
            expected_items: Some(len),
            appended: 0,
        }
    }

    /// Appends a raw byte-string item.
    pub fn append_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        encode_bytes(bytes, &mut self.buf);
        self.appended += 1;
        self
    }

    /// Appends an unsigned integer as its minimal big-endian byte string.
    pub fn append_u64(&mut self, value: u64) -> &mut Self {
        self.append_u256(&U256::from(value))
    }

    /// Appends a 256-bit unsigned integer as its minimal big-endian bytes.
    pub fn append_u256(&mut self, value: &U256) -> &mut Self {
        let bytes = value.to_be_bytes_trimmed();
        self.append_bytes(&bytes)
    }

    /// Appends a 32-byte hash.
    pub fn append_h256(&mut self, value: &H256) -> &mut Self {
        self.append_bytes(value.as_bytes())
    }

    /// Appends a 20-byte address.
    pub fn append_address(&mut self, value: &Address) -> &mut Self {
        self.append_bytes(value.as_bytes())
    }

    /// Appends an already-encoded RLP item verbatim (for nested lists).
    pub fn append_raw(&mut self, rlp: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(rlp);
        self.appended += 1;
        self
    }

    /// Finalizes the stream and returns the encoded bytes.
    ///
    /// # Panics
    ///
    /// Panics if the stream was created with [`RlpStream::new_list`] and the
    /// number of appended items differs from the declared length — that is a
    /// programming error in the caller, not a data error.
    pub fn finish(self) -> Vec<u8> {
        match self.expected_items {
            None => self.buf,
            Some(expected) => {
                assert_eq!(
                    expected, self.appended,
                    "RLP list declared {expected} items but {} were appended",
                    self.appended
                );
                let mut out = Vec::with_capacity(self.buf.len() + 9);
                encode_length(self.buf.len(), 0xc0, &mut out);
                out.extend_from_slice(&self.buf);
                out
            }
        }
    }
}

impl Default for RlpStream {
    fn default() -> Self {
        Self::new()
    }
}

/// Encodes a single byte string as a stand-alone RLP item.
pub fn encode_bytes_standalone(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() + 9);
    encode_bytes(bytes, &mut out);
    out
}

/// Encodes a list of byte strings as a stand-alone RLP list.
pub fn encode_list_of_bytes(items: &[&[u8]]) -> Vec<u8> {
    let mut stream = RlpStream::new_list(items.len());
    for item in items {
        stream.append_bytes(item);
    }
    stream.finish()
}

fn encode_bytes(bytes: &[u8], out: &mut Vec<u8>) {
    if bytes.len() == 1 && bytes[0] < 0x80 {
        out.push(bytes[0]);
    } else {
        encode_length(bytes.len(), 0x80, out);
        out.extend_from_slice(bytes);
    }
}

fn encode_length(len: usize, offset: u8, out: &mut Vec<u8>) {
    if len < 56 {
        out.push(offset + len as u8);
    } else {
        let len_bytes = (len as u64).to_be_bytes();
        let first = len_bytes.iter().position(|&b| b != 0).unwrap_or(7);
        let significant = &len_bytes[first..];
        out.push(offset + 55 + significant.len() as u8);
        out.extend_from_slice(significant);
    }
}

/// A decoded RLP item: either a byte string or a list of items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A byte string.
    Bytes(Vec<u8>),
    /// A list of nested items.
    List(Vec<Item>),
}

impl Item {
    /// Borrows the byte string, or `None` for a list.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Item::Bytes(b) => Some(b),
            Item::List(_) => None,
        }
    }

    /// Borrows the list elements, or `None` for a byte string.
    pub fn as_list(&self) -> Option<&[Item]> {
        match self {
            Item::List(items) => Some(items),
            Item::Bytes(_) => None,
        }
    }

    /// Interprets a byte string as a big-endian unsigned integer.
    pub fn as_u256(&self) -> Option<U256> {
        self.as_bytes().and_then(|b| U256::from_be_slice(b).ok())
    }

    /// Interprets a byte string as a canonically encoded unsigned integer:
    /// minimal big-endian, so leading zero bytes are rejected (`0` is the
    /// empty string).
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::NonCanonical`] on a leading zero,
    /// [`ParseError::TooLong`] past 32 bytes, and [`ParseError::WrongLength`]
    /// when the item is a list.
    pub fn as_u256_canonical(&self) -> Result<U256, ParseError> {
        let bytes = self.as_bytes().ok_or(ParseError::WrongLength {
            expected: 0,
            got: 0,
        })?;
        if bytes.first() == Some(&0) {
            return Err(ParseError::NonCanonical {
                reason: "integer has leading zero bytes",
            });
        }
        U256::from_be_slice(bytes)
    }

    /// Interprets a byte string as a canonically encoded `u64`.
    ///
    /// # Errors
    ///
    /// As [`Item::as_u256_canonical`], plus [`ParseError::TooLong`] when the
    /// value needs more than 8 bytes.
    pub fn as_u64_canonical(&self) -> Result<u64, ParseError> {
        let bytes = self.as_bytes().ok_or(ParseError::WrongLength {
            expected: 0,
            got: 0,
        })?;
        if bytes.first() == Some(&0) {
            return Err(ParseError::NonCanonical {
                reason: "integer has leading zero bytes",
            });
        }
        if bytes.len() > 8 {
            return Err(ParseError::TooLong {
                max: 8,
                got: bytes.len(),
            });
        }
        let mut value = 0u64;
        for &b in bytes {
            value = (value << 8) | u64::from(b);
        }
        Ok(value)
    }
}

/// Decodes a single top-level RLP item, accepting only canonical encodings.
///
/// Beyond structural validity, the decoder enforces the canonical-form rules
/// a safe wire format needs — every byte string has exactly one encoding:
///
/// * a single byte below `0x80` must be encoded as itself, never as a
///   one-byte string (`0x81 0x05` is rejected);
/// * the long forms (`0xb8..=0xbf`, `0xf8..=0xff`) are only valid for
///   payloads of 56 bytes or more, and their length bytes must not have
///   leading zeros;
/// * declared lengths are checked with overflow-safe arithmetic, so a
///   nested item cannot wrap the length computation past `usize`.
///
/// # Errors
///
/// Returns [`ParseError::WrongLength`] when the input is truncated, has
/// trailing bytes, or declares lengths that do not match the data, and
/// [`ParseError::NonCanonical`] when the encoding is valid-but-redundant.
pub fn decode(data: &[u8]) -> Result<Item, ParseError> {
    let (item, consumed) = decode_item(data)?;
    if consumed != data.len() {
        return Err(ParseError::WrongLength {
            expected: consumed,
            got: data.len(),
        });
    }
    Ok(item)
}

fn decode_item(data: &[u8]) -> Result<(Item, usize), ParseError> {
    let Some(&prefix) = data.first() else {
        return Err(ParseError::Empty);
    };
    match prefix {
        0x00..=0x7f => Ok((Item::Bytes(vec![prefix]), 1)),
        0x80..=0xb7 => {
            let len = (prefix - 0x80) as usize;
            expect_len(data, 1 + len)?;
            if len == 1 && data[1] < 0x80 {
                return Err(ParseError::NonCanonical {
                    reason: "single byte below 0x80 must be encoded as itself",
                });
            }
            Ok((Item::Bytes(data[1..1 + len].to_vec()), 1 + len))
        }
        0xb8..=0xbf => {
            let len_of_len = (prefix - 0xb7) as usize;
            expect_len(data, 1 + len_of_len)?;
            let len = decode_big_endian_len(&data[1..1 + len_of_len])?;
            if len < 56 {
                return Err(ParseError::NonCanonical {
                    reason: "long-form string length below 56",
                });
            }
            let total = checked_item_len(1 + len_of_len, len)?;
            expect_len(data, total)?;
            Ok((Item::Bytes(data[1 + len_of_len..total].to_vec()), total))
        }
        0xc0..=0xf7 => {
            let len = (prefix - 0xc0) as usize;
            expect_len(data, 1 + len)?;
            let items = decode_list_payload(&data[1..1 + len])?;
            Ok((Item::List(items), 1 + len))
        }
        0xf8..=0xff => {
            let len_of_len = (prefix - 0xf7) as usize;
            expect_len(data, 1 + len_of_len)?;
            let len = decode_big_endian_len(&data[1..1 + len_of_len])?;
            if len < 56 {
                return Err(ParseError::NonCanonical {
                    reason: "long-form list length below 56",
                });
            }
            let total = checked_item_len(1 + len_of_len, len)?;
            expect_len(data, total)?;
            let items = decode_list_payload(&data[1 + len_of_len..total])?;
            Ok((Item::List(items), total))
        }
    }
}

/// `header + payload` with overflow detection, so a hostile length cannot
/// wrap past `usize` and alias a shorter buffer.
fn checked_item_len(header: usize, payload: usize) -> Result<usize, ParseError> {
    header.checked_add(payload).ok_or(ParseError::NonCanonical {
        reason: "declared length overflows usize",
    })
}

fn decode_list_payload(mut payload: &[u8]) -> Result<Vec<Item>, ParseError> {
    let mut items = Vec::new();
    while !payload.is_empty() {
        let (item, consumed) = decode_item(payload)?;
        items.push(item);
        payload = &payload[consumed..];
    }
    Ok(items)
}

fn decode_big_endian_len(bytes: &[u8]) -> Result<usize, ParseError> {
    if bytes.is_empty() || bytes.len() > 8 {
        return Err(ParseError::WrongLength {
            expected: 8,
            got: bytes.len(),
        });
    }
    if bytes[0] == 0 {
        return Err(ParseError::NonCanonical {
            reason: "length bytes have a leading zero",
        });
    }
    if bytes.len() > core::mem::size_of::<usize>() {
        return Err(ParseError::NonCanonical {
            reason: "declared length overflows usize",
        });
    }
    let mut len = 0usize;
    for &b in bytes {
        len = (len << 8) | b as usize;
    }
    Ok(len)
}

fn expect_len(data: &[u8], len: usize) -> Result<(), ParseError> {
    if data.len() < len {
        Err(ParseError::WrongLength {
            expected: len,
            got: data.len(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_single_bytes_below_0x80_are_themselves() {
        assert_eq!(encode_bytes_standalone(&[0x00]), vec![0x00]);
        assert_eq!(encode_bytes_standalone(&[0x7f]), vec![0x7f]);
        assert_eq!(encode_bytes_standalone(&[0x80]), vec![0x81, 0x80]);
    }

    #[test]
    fn encode_short_string() {
        // Canonical test vector: "dog" -> [0x83, 'd', 'o', 'g']
        assert_eq!(
            encode_bytes_standalone(b"dog"),
            vec![0x83, b'd', b'o', b'g']
        );
        assert_eq!(encode_bytes_standalone(b""), vec![0x80]);
    }

    #[test]
    fn encode_long_string_uses_length_of_length() {
        let long = vec![b'a'; 56];
        let encoded = encode_bytes_standalone(&long);
        assert_eq!(encoded[0], 0xb8);
        assert_eq!(encoded[1], 56);
        assert_eq!(encoded.len(), 58);
    }

    #[test]
    fn encode_list_of_two_strings() {
        // Canonical test vector: ["cat", "dog"]
        let encoded = encode_list_of_bytes(&[b"cat", b"dog"]);
        assert_eq!(
            encoded,
            vec![0xc8, 0x83, b'c', b'a', b't', 0x83, b'd', b'o', b'g']
        );
    }

    #[test]
    fn encode_empty_list() {
        let encoded = RlpStream::new_list(0).finish();
        assert_eq!(encoded, vec![0xc0]);
    }

    #[test]
    fn encode_integers_are_minimal() {
        let mut s = RlpStream::new_list(3);
        s.append_u64(0);
        s.append_u64(15);
        s.append_u64(1024);
        let encoded = s.finish();
        // 0 encodes as empty string 0x80, 15 as itself, 1024 as 0x82 0x04 0x00.
        assert_eq!(encoded, vec![0xc5, 0x80, 0x0f, 0x82, 0x04, 0x00]);
    }

    #[test]
    #[should_panic(expected = "declared 2 items")]
    fn list_length_mismatch_panics() {
        let mut s = RlpStream::new_list(2);
        s.append_u64(1);
        let _ = s.finish();
    }

    #[test]
    fn decode_round_trip_simple() {
        let mut s = RlpStream::new_list(3);
        s.append_bytes(b"cat");
        s.append_u256(&U256::from(99u64));
        s.append_address(&Address::from_low_u64(7));
        let encoded = s.finish();
        let decoded = decode(&encoded).unwrap();
        let items = decoded.as_list().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].as_bytes().unwrap(), b"cat");
        assert_eq!(items[1].as_u256().unwrap(), U256::from(99u64));
        assert_eq!(items[2].as_bytes().unwrap().len(), 20);
    }

    #[test]
    fn decode_long_payloads() {
        let long = vec![0xabu8; 300];
        let encoded = encode_bytes_standalone(&long);
        let decoded = decode(&encoded).unwrap();
        assert_eq!(decoded.as_bytes().unwrap(), long.as_slice());

        let mut s = RlpStream::new_list(5);
        for _ in 0..5 {
            s.append_bytes(&long);
        }
        let nested = s.finish();
        let decoded = decode(&nested).unwrap();
        assert_eq!(decoded.as_list().unwrap().len(), 5);
    }

    #[test]
    fn decode_nested_lists() {
        let inner = encode_list_of_bytes(&[b"a", b"b"]);
        let mut outer = RlpStream::new_list(2);
        outer.append_raw(&inner);
        outer.append_bytes(b"c");
        let encoded = outer.finish();
        let decoded = decode(&encoded).unwrap();
        let items = decoded.as_list().unwrap();
        assert_eq!(items[0].as_list().unwrap().len(), 2);
        assert_eq!(items[1].as_bytes().unwrap(), b"c");
    }

    #[test]
    fn decode_rejects_truncated_and_trailing() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[0x83, b'd', b'o']).is_err());
        assert!(decode(&[0x00, 0x01]).is_err()); // trailing byte
        assert!(decode(&[0xb8]).is_err()); // missing length byte
    }

    #[test]
    fn decode_rejects_non_canonical_single_byte() {
        // 0x05 long-form encoded: structurally fine, canonically illegal.
        assert_eq!(
            decode(&[0x81, 0x05]),
            Err(ParseError::NonCanonical {
                reason: "single byte below 0x80 must be encoded as itself",
            })
        );
        // 0x80 and above genuinely need the long form.
        assert_eq!(decode(&[0x81, 0x80]).unwrap(), Item::Bytes(vec![0x80]));
    }

    #[test]
    fn decode_rejects_redundant_long_forms() {
        // A 3-byte string declared with a length-of-length prefix.
        assert!(matches!(
            decode(&[0xb8, 0x03, b'd', b'o', b'g']),
            Err(ParseError::NonCanonical { .. })
        ));
        // Same for a short list wrapped in the long-list form.
        assert!(matches!(
            decode(&[0xf8, 0x02, 0x61, 0x62]),
            Err(ParseError::NonCanonical { .. })
        ));
        // Leading zero in the length bytes.
        let mut padded = vec![0xb9, 0x00, 0x38];
        padded.extend_from_slice(&[b'a'; 56]);
        assert!(matches!(
            decode(&padded),
            Err(ParseError::NonCanonical { .. })
        ));
    }

    #[test]
    fn decode_rejects_length_overflow() {
        // Declared payload length of u64::MAX: the header+payload sum would
        // wrap usize; must error, not panic or alias.
        let hostile = [0xbf, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff];
        assert!(decode(&hostile).is_err());
        let hostile_list = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff];
        assert!(decode(&hostile_list).is_err());
    }

    #[test]
    fn canonical_integer_accessors() {
        let ok = Item::Bytes(vec![0x04, 0x00]);
        assert_eq!(ok.as_u64_canonical().unwrap(), 1024);
        assert_eq!(ok.as_u256_canonical().unwrap(), U256::from(1024u64));

        let zero = Item::Bytes(Vec::new());
        assert_eq!(zero.as_u64_canonical().unwrap(), 0);

        let padded = Item::Bytes(vec![0x00, 0x04]);
        assert!(matches!(
            padded.as_u64_canonical(),
            Err(ParseError::NonCanonical { .. })
        ));
        assert!(matches!(
            padded.as_u256_canonical(),
            Err(ParseError::NonCanonical { .. })
        ));

        let wide = Item::Bytes(vec![0x01; 9]);
        assert!(matches!(
            wide.as_u64_canonical(),
            Err(ParseError::TooLong { .. })
        ));
        assert!(Item::List(Vec::new()).as_u64_canonical().is_err());
    }

    #[test]
    fn item_accessors() {
        let bytes_item = Item::Bytes(vec![1, 2]);
        let list_item = Item::List(vec![bytes_item.clone()]);
        assert!(bytes_item.as_list().is_none());
        assert!(list_item.as_bytes().is_none());
        assert!(list_item.as_u256().is_none());
        assert_eq!(bytes_item.as_u256().unwrap(), U256::from(0x0102u64));
    }
}
