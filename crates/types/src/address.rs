//! 20-byte account and contract addresses.

use crate::{hex, ParseError, H256, U256};

/// An Ethereum-style 20-byte address identifying an externally-owned account
/// (an IoT node's key pair) or a contract (the on-chain template or an
/// off-chain payment channel).
///
/// # Example
///
/// ```
/// use tinyevm_types::Address;
///
/// let a = Address::from_low_u64(0x42);
/// assert_eq!(a.to_hex(), "0x0000000000000000000000000000000000000042");
/// assert_eq!(Address::from_hex(&a.to_hex())?, a);
/// # Ok::<(), tinyevm_types::ParseError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// The all-zero address, used by the EVM as "no address".
    pub const ZERO: Address = Address([0u8; 20]);

    /// Wraps a raw 20-byte array.
    #[inline]
    pub const fn from_bytes(bytes: [u8; 20]) -> Self {
        Address(bytes)
    }

    /// Builds an address whose last eight bytes hold `v` big-endian.
    pub fn from_low_u64(v: u64) -> Self {
        let mut bytes = [0u8; 20];
        bytes[12..].copy_from_slice(&v.to_be_bytes());
        Address(bytes)
    }

    /// Builds an address from a byte slice.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::WrongLength`] unless the slice is exactly 20
    /// bytes long.
    pub fn from_slice(slice: &[u8]) -> Result<Self, ParseError> {
        if slice.len() != 20 {
            return Err(ParseError::WrongLength {
                expected: 20,
                got: slice.len(),
            });
        }
        let mut bytes = [0u8; 20];
        bytes.copy_from_slice(slice);
        Ok(Address(bytes))
    }

    /// Parses a 40-digit hex string with optional `0x` prefix.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] for bad digits or a wrong length.
    pub fn from_hex(s: &str) -> Result<Self, ParseError> {
        let bytes = hex::decode(s)?;
        Self::from_slice(&bytes)
    }

    /// Takes the low 20 bytes of a hash — the Ethereum rule for deriving an
    /// address from the Keccak-256 of a public key or of RLP-encoded
    /// creation data.
    pub fn from_hash(hash: &H256) -> Self {
        let mut bytes = [0u8; 20];
        bytes.copy_from_slice(&hash.as_bytes()[12..]);
        Address(bytes)
    }

    /// Borrows the raw bytes.
    #[inline]
    pub const fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    /// Returns `true` if every byte is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }

    /// Lowercase hex string with `0x` prefix (always 42 characters).
    pub fn to_hex(&self) -> String {
        hex::encode_prefixed(&self.0)
    }

    /// Widens to a 256-bit word (zero-padded on the left), the form the EVM
    /// pushes on the stack for `CALLER` / `ADDRESS`.
    pub fn to_u256(&self) -> U256 {
        let mut bytes = [0u8; 32];
        bytes[12..].copy_from_slice(&self.0);
        U256::from_be_bytes(bytes)
    }

    /// Truncates a 256-bit word to its low 20 bytes — how the EVM interprets
    /// a stack word as an address.
    pub fn from_u256(value: U256) -> Self {
        let bytes = value.to_be_bytes();
        let mut out = [0u8; 20];
        out.copy_from_slice(&bytes[12..]);
        Address(out)
    }
}

impl From<[u8; 20]> for Address {
    fn from(bytes: [u8; 20]) -> Self {
        Address(bytes)
    }
}

impl AsRef<[u8]> for Address {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl core::fmt::Debug for Address {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Address({})", self.to_hex())
    }
}

impl core::fmt::Display for Address {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let full = hex::encode(&self.0);
        write!(f, "0x{}…{}", &full[..6], &full[34..])
    }
}

impl serde::Serialize for Address {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_hex())
    }
}

impl<'de> serde::Deserialize<'de> for Address {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Address::from_hex(&s).map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_constant() {
        assert!(Address::ZERO.is_zero());
        assert_eq!(Address::default(), Address::ZERO);
        assert!(!Address::from_low_u64(1).is_zero());
    }

    #[test]
    fn from_low_u64_places_bytes_at_end() {
        let a = Address::from_low_u64(0xbeef);
        assert_eq!(a.as_bytes()[18], 0xbe);
        assert_eq!(a.as_bytes()[19], 0xef);
        assert_eq!(a.as_bytes()[0], 0);
    }

    #[test]
    fn from_slice_validates_length() {
        assert!(Address::from_slice(&[0u8; 20]).is_ok());
        assert!(Address::from_slice(&[0u8; 19]).is_err());
        assert!(Address::from_slice(&[0u8; 21]).is_err());
    }

    #[test]
    fn hex_round_trip() {
        let a = Address::from_low_u64(0xdeadbeef);
        assert_eq!(Address::from_hex(&a.to_hex()).unwrap(), a);
        assert_eq!(a.to_hex().len(), 42);
        assert!(Address::from_hex("0x1234").is_err());
    }

    #[test]
    fn u256_round_trip_truncates_high_bytes() {
        let a = Address::from_low_u64(77);
        assert_eq!(Address::from_u256(a.to_u256()), a);
        // High bytes beyond 20 are dropped.
        let wide = U256::ONE.shl(200) + U256::from(77u64);
        assert_eq!(Address::from_u256(wide), a);
    }

    #[test]
    fn from_hash_takes_low_20_bytes() {
        let mut hash_bytes = [0u8; 32];
        for (i, b) in hash_bytes.iter_mut().enumerate() {
            *b = i as u8;
        }
        let addr = Address::from_hash(&H256::from_bytes(hash_bytes));
        assert_eq!(addr.as_bytes()[0], 12);
        assert_eq!(addr.as_bytes()[19], 31);
    }

    #[test]
    fn display_abbreviates() {
        let a = Address::from_low_u64(1);
        assert!(format!("{a}").contains('…'));
        assert!(format!("{a:?}").starts_with("Address(0x"));
    }
}
