//! Signed views of [`U256`] for the EVM's signed opcodes.
//!
//! The EVM has no separate signed type: `SDIV`, `SMOD`, `SLT` and `SGT`
//! reinterpret the 256-bit word as a two's-complement integer. [`I256`] is a
//! thin wrapper that implements exactly those semantics (including the EVM's
//! special cases: division by zero yields zero and `MIN / -1` wraps back to
//! `MIN`).

use crate::U256;

/// Sign of an [`I256`] value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// The value is greater than zero.
    Positive,
    /// The value is exactly zero.
    Zero,
    /// The value is less than zero.
    Negative,
}

/// A two's-complement signed view over a 256-bit word.
///
/// # Example
///
/// ```
/// use tinyevm_types::{I256, U256};
///
/// let minus_ten = I256::from_neg(U256::from(10u64));
/// let three = I256::from(U256::from(3u64));
/// // EVM SDIV truncates toward zero: -10 / 3 == -3.
/// assert_eq!(minus_ten.sdiv(three), I256::from_neg(U256::from(3u64)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct I256(pub U256);

impl I256 {
    /// The most negative value, `-2^255`.
    pub const MIN: I256 = I256(U256::SIGN_BIT);
    /// Zero.
    pub const ZERO: I256 = I256(U256::ZERO);

    /// Wraps a raw word without changing its bits.
    #[inline]
    pub const fn from_raw(value: U256) -> Self {
        I256(value)
    }

    /// Builds the negative value `-magnitude` (two's complement).
    pub fn from_neg(magnitude: U256) -> Self {
        I256(magnitude.wrapping_neg())
    }

    /// Returns the underlying word unchanged.
    #[inline]
    pub const fn into_raw(self) -> U256 {
        self.0
    }

    /// The sign of the value.
    pub fn sign(&self) -> Sign {
        if self.0.is_zero() {
            Sign::Zero
        } else if self.0.is_negative() {
            Sign::Negative
        } else {
            Sign::Positive
        }
    }

    /// Absolute value as an unsigned word (`|MIN|` wraps to `2^255`).
    pub fn unsigned_abs(&self) -> U256 {
        if self.0.is_negative() {
            self.0.wrapping_neg()
        } else {
            self.0
        }
    }

    /// Signed division with EVM `SDIV` semantics: truncation toward zero,
    /// `x / 0 == 0`, and `MIN / -1 == MIN`.
    pub fn sdiv(self, rhs: I256) -> I256 {
        if rhs.0.is_zero() {
            return I256::ZERO;
        }
        if self == I256::MIN && rhs.0 == U256::MAX {
            return I256::MIN;
        }
        let quotient = self.unsigned_abs().div(rhs.unsigned_abs());
        if self.0.is_negative() != rhs.0.is_negative() {
            I256(quotient.wrapping_neg())
        } else {
            I256(quotient)
        }
    }

    /// Signed remainder with EVM `SMOD` semantics: the result takes the sign
    /// of the dividend and `x % 0 == 0`.
    pub fn smod(self, rhs: I256) -> I256 {
        if rhs.0.is_zero() {
            return I256::ZERO;
        }
        let remainder = self.unsigned_abs().rem(rhs.unsigned_abs());
        if self.0.is_negative() {
            I256(remainder.wrapping_neg())
        } else {
            I256(remainder)
        }
    }

    /// Signed less-than (EVM `SLT`).
    pub fn slt(self, rhs: I256) -> bool {
        match (self.0.is_negative(), rhs.0.is_negative()) {
            (true, false) => true,
            (false, true) => false,
            _ => self.0 < rhs.0,
        }
    }

    /// Signed greater-than (EVM `SGT`).
    pub fn sgt(self, rhs: I256) -> bool {
        rhs.slt(self)
    }
}

impl From<U256> for I256 {
    fn from(value: U256) -> Self {
        I256(value)
    }
}

impl From<i64> for I256 {
    fn from(value: i64) -> Self {
        if value < 0 {
            I256::from_neg(U256::from(value.unsigned_abs()))
        } else {
            I256(U256::from(value as u64))
        }
    }
}

impl core::fmt::Debug for I256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.sign() {
            Sign::Negative => write!(f, "I256(-{})", self.unsigned_abs()),
            _ => write!(f, "I256({})", self.0),
        }
    }
}

impl core::fmt::Display for I256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.sign() {
            Sign::Negative => write!(f, "-{}", self.unsigned_abs()),
            _ => write!(f, "{}", self.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(v: u64) -> I256 {
        I256::from(U256::from(v))
    }

    fn neg(v: u64) -> I256 {
        I256::from_neg(U256::from(v))
    }

    #[test]
    fn sign_classification() {
        assert_eq!(pos(5).sign(), Sign::Positive);
        assert_eq!(neg(5).sign(), Sign::Negative);
        assert_eq!(I256::ZERO.sign(), Sign::Zero);
        assert_eq!(I256::MIN.sign(), Sign::Negative);
    }

    #[test]
    fn from_i64() {
        assert_eq!(I256::from(-1i64).into_raw(), U256::MAX);
        assert_eq!(I256::from(5i64), pos(5));
        assert_eq!(I256::from(-5i64), neg(5));
        assert_eq!(I256::from(i64::MIN).unsigned_abs(), U256::from(1u64 << 63));
    }

    #[test]
    fn unsigned_abs_of_min_wraps() {
        assert_eq!(I256::MIN.unsigned_abs(), U256::SIGN_BIT);
        assert_eq!(neg(7).unsigned_abs(), U256::from(7u64));
        assert_eq!(pos(7).unsigned_abs(), U256::from(7u64));
    }

    #[test]
    fn sdiv_truncates_toward_zero() {
        assert_eq!(pos(10).sdiv(pos(3)), pos(3));
        assert_eq!(neg(10).sdiv(pos(3)), neg(3));
        assert_eq!(pos(10).sdiv(neg(3)), neg(3));
        assert_eq!(neg(10).sdiv(neg(3)), pos(3));
    }

    #[test]
    fn sdiv_special_cases() {
        assert_eq!(pos(10).sdiv(I256::ZERO), I256::ZERO);
        assert_eq!(I256::MIN.sdiv(I256::from(-1i64)), I256::MIN);
        assert_eq!(I256::ZERO.sdiv(pos(3)), I256::ZERO);
    }

    #[test]
    fn smod_takes_sign_of_dividend() {
        assert_eq!(pos(10).smod(pos(3)), pos(1));
        assert_eq!(neg(10).smod(pos(3)), neg(1));
        assert_eq!(pos(10).smod(neg(3)), pos(1));
        assert_eq!(neg(10).smod(neg(3)), neg(1));
        assert_eq!(pos(10).smod(I256::ZERO), I256::ZERO);
    }

    #[test]
    fn slt_and_sgt() {
        assert!(neg(1).slt(pos(1)));
        assert!(!pos(1).slt(neg(1)));
        assert!(pos(1).sgt(neg(1)));
        assert!(neg(2).slt(neg(1)));
        assert!(!neg(1).slt(neg(2)));
        assert!(pos(1).slt(pos(2)));
        assert!(!pos(1).slt(pos(1)));
        assert!(I256::MIN.slt(I256::from(-1i64)));
    }

    #[test]
    fn display_shows_sign() {
        assert_eq!(format!("{}", neg(42)), "-42");
        assert_eq!(format!("{}", pos(42)), "42");
        assert_eq!(format!("{}", I256::ZERO), "0");
        assert!(format!("{:?}", neg(42)).contains("-42"));
    }
}
