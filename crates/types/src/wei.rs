//! Balance and payment amounts.

use crate::U256;

/// An amount of currency in wei (the smallest Ethereum unit).
///
/// The off-chain protocol moves money in whole wei; the newtype prevents a
/// payment amount from being confused with, say, a sequence number — both are
/// integers but mixing them up would be a protocol bug.
///
/// Arithmetic on `Wei` is **checked**: channel accounting must never wrap, so
/// the saturating / checked forms are the only ones offered.
///
/// # Example
///
/// ```
/// use tinyevm_types::Wei;
///
/// let deposit = Wei::from_eth_milli(10);           // 0.010 ETH
/// let fee = Wei::new(2_000_000_000_000_000u64.into()); // 0.002 ETH
/// assert_eq!(deposit.checked_sub(fee).unwrap(), Wei::from_eth_milli(8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Wei(pub U256);

impl Wei {
    /// Zero wei.
    pub const ZERO: Wei = Wei(U256::ZERO);

    /// Number of wei in one ether (10^18).
    pub const WEI_PER_ETH: u128 = 1_000_000_000_000_000_000;

    /// Wraps a raw amount.
    #[inline]
    pub const fn new(amount: U256) -> Self {
        Wei(amount)
    }

    /// Builds an amount from whole ether.
    pub fn from_eth(eth: u64) -> Self {
        Wei(U256::from(eth as u128 * Self::WEI_PER_ETH))
    }

    /// Builds an amount from milliether (1/1000 ETH), a convenient size for
    /// the micro-payments in the parking scenario.
    pub fn from_eth_milli(milli: u64) -> Self {
        Wei(U256::from(milli as u128 * (Self::WEI_PER_ETH / 1000)))
    }

    /// The raw amount.
    #[inline]
    pub const fn amount(&self) -> U256 {
        self.0
    }

    /// Returns `true` for a zero amount.
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    /// Checked addition; `None` if the sum exceeds 2^256-1.
    pub fn checked_add(self, rhs: Wei) -> Option<Wei> {
        self.0.checked_add(rhs.0).map(Wei)
    }

    /// Checked subtraction; `None` if the result would be negative.
    pub fn checked_sub(self, rhs: Wei) -> Option<Wei> {
        self.0.checked_sub(rhs.0).map(Wei)
    }

    /// Saturating subtraction, clamping at zero.
    pub fn saturating_sub(self, rhs: Wei) -> Wei {
        self.checked_sub(rhs).unwrap_or(Wei::ZERO)
    }

    /// Saturating addition, clamping at the maximum value.
    pub fn saturating_add(self, rhs: Wei) -> Wei {
        self.checked_add(rhs).unwrap_or(Wei(U256::MAX))
    }
}

impl From<U256> for Wei {
    fn from(v: U256) -> Self {
        Wei(v)
    }
}

impl From<u64> for Wei {
    fn from(v: u64) -> Self {
        Wei(U256::from(v))
    }
}

impl core::fmt::Display for Wei {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} wei", self.0)
    }
}

impl serde::Serialize for Wei {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.0.serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for Wei {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        U256::deserialize(deserializer).map(Wei)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(Wei::ZERO.is_zero());
        assert_eq!(Wei::from(5u64).amount(), U256::from(5u64));
        assert_eq!(
            Wei::from_eth(1).amount(),
            U256::from(1_000_000_000_000_000_000u128)
        );
        assert_eq!(
            Wei::from_eth_milli(1500),
            Wei::from_eth(1)
                .checked_add(Wei::from_eth_milli(500))
                .unwrap()
        );
    }

    #[test]
    fn checked_arithmetic() {
        let a = Wei::from(10u64);
        let b = Wei::from(3u64);
        assert_eq!(a.checked_add(b), Some(Wei::from(13u64)));
        assert_eq!(a.checked_sub(b), Some(Wei::from(7u64)));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(Wei(U256::MAX).checked_add(Wei::from(1u64)), None);
    }

    #[test]
    fn saturating_arithmetic() {
        let a = Wei::from(10u64);
        let b = Wei::from(30u64);
        assert_eq!(a.saturating_sub(b), Wei::ZERO);
        assert_eq!(b.saturating_sub(a), Wei::from(20u64));
        assert_eq!(Wei(U256::MAX).saturating_add(a), Wei(U256::MAX));
    }

    #[test]
    fn ordering_and_display() {
        assert!(Wei::from(1u64) < Wei::from(2u64));
        assert_eq!(format!("{}", Wei::from(42u64)), "42 wei");
    }
}
