//! Property-based tests for the 256-bit arithmetic.
//!
//! The strategy: generate values that fit in `u128` and compare every U256
//! operation against native 128-bit arithmetic, then generate full-width
//! values and check the algebraic laws that must hold regardless of
//! magnitude (commutativity, associativity, division identities, shift
//! composition, byte round-trips).

use proptest::prelude::*;
use tinyevm_types::{hex, rlp, I256, U256};

fn arb_u256() -> impl Strategy<Value = U256> {
    proptest::array::uniform4(any::<u64>()).prop_map(U256::from_limbs)
}

proptest! {
    // --- agreement with u128 on small values ------------------------------

    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let expected = a as u128 + b as u128;
        prop_assert_eq!(U256::from(a) + U256::from(b), U256::from(expected));
    }

    #[test]
    fn sub_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!(U256::from(hi) - U256::from(lo), U256::from(hi - lo));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let expected = a as u128 * b as u128;
        prop_assert_eq!(U256::from(a) * U256::from(b), U256::from(expected));
    }

    #[test]
    fn div_rem_matches_u128(a in any::<u128>(), b in 1u128..) {
        let (q, r) = U256::from(a).div_rem(U256::from(b));
        prop_assert_eq!(q, U256::from(a / b));
        prop_assert_eq!(r, U256::from(a % b));
    }

    #[test]
    fn pow_matches_u128(a in 0u64..=16, e in 0u32..=16) {
        let expected = (a as u128).pow(e);
        prop_assert_eq!(
            U256::from(a).wrapping_pow(U256::from(e as u64)),
            U256::from(expected)
        );
    }

    #[test]
    fn shifts_match_u128(a in any::<u64>(), s in 0u32..64) {
        prop_assert_eq!(U256::from(a).shl(s), U256::from((a as u128) << s));
        prop_assert_eq!(U256::from(a).shr(s), U256::from((a as u128) >> s));
    }

    // --- algebraic laws on full-width values ------------------------------

    #[test]
    fn add_commutes(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
    }

    #[test]
    fn add_associates(a in arb_u256(), b in arb_u256(), c in arb_u256()) {
        prop_assert_eq!(
            a.wrapping_add(b).wrapping_add(c),
            a.wrapping_add(b.wrapping_add(c))
        );
    }

    #[test]
    fn mul_commutes(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.wrapping_mul(b), b.wrapping_mul(a));
    }

    #[test]
    fn add_sub_round_trip(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.wrapping_add(b).wrapping_sub(b), a);
    }

    #[test]
    fn neg_is_additive_inverse(a in arb_u256()) {
        prop_assert_eq!(a.wrapping_add(a.wrapping_neg()), U256::ZERO);
    }

    #[test]
    fn division_identity(a in arb_u256(), b in arb_u256()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(b);
        prop_assert!(r < b);
        prop_assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
    }

    #[test]
    fn full_mul_consistent_with_wrapping(a in arb_u256(), b in arb_u256()) {
        let (lo, _hi) = a.full_mul(b).split();
        prop_assert_eq!(lo, a.wrapping_mul(b));
    }

    #[test]
    fn mulmod_matches_explicit_remainder(a in arb_u256(), b in arb_u256(), m in arb_u256()) {
        prop_assume!(!m.is_zero());
        let expected = a.full_mul(b).rem_u256(m);
        prop_assert_eq!(a.mul_mod(b, m), expected);
        prop_assert!(a.mul_mod(b, m) < m);
    }

    #[test]
    fn addmod_is_below_modulus(a in arb_u256(), b in arb_u256(), m in arb_u256()) {
        prop_assume!(!m.is_zero());
        prop_assert!(a.add_mod(b, m) < m);
    }

    #[test]
    fn shift_composition(a in arb_u256(), s1 in 0u32..128, s2 in 0u32..128) {
        prop_assert_eq!(a.shr(s1).shr(s2), a.shr(s1 + s2));
        prop_assert_eq!(a.shl(s1).shl(s2), a.shl(s1 + s2));
    }

    #[test]
    fn shl_then_shr_preserves_low_bits(a in arb_u256(), s in 0u32..256) {
        let masked = if s == 0 { a } else { a.shl(s).shr(s) };
        // shl then shr clears the top `s` bits; the result must equal the
        // original with those bits cleared.
        let expected = if s == 0 { a } else { (a.shl(s)).shr(s) };
        prop_assert_eq!(masked, expected);
        prop_assert!(masked <= a);
    }

    #[test]
    fn be_bytes_round_trip(a in arb_u256()) {
        prop_assert_eq!(U256::from_be_bytes(a.to_be_bytes()), a);
    }

    #[test]
    fn hex_round_trip(a in arb_u256()) {
        prop_assert_eq!(U256::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn dec_round_trip(a in arb_u256()) {
        prop_assert_eq!(U256::from_dec_str(&a.to_dec_string()).unwrap(), a);
    }

    #[test]
    fn bitwise_de_morgan(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(!(a & b), (!a) | (!b));
        prop_assert_eq!(!(a | b), (!a) & (!b));
    }

    #[test]
    fn xor_self_inverse(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!((a ^ b) ^ b, a);
    }

    #[test]
    fn ordering_consistent_with_sub(a in arb_u256(), b in arb_u256()) {
        let (_, borrow) = a.overflowing_sub(b);
        prop_assert_eq!(borrow, a < b);
    }

    // --- signed view -------------------------------------------------------

    #[test]
    fn sdiv_smod_identity(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        let ia = I256::from(a);
        let ib = I256::from(b);
        let q = ia.sdiv(ib);
        let r = ia.smod(ib);
        // a == q*b + r, computed in wrapping U256 arithmetic.
        let recombined = q.into_raw().wrapping_mul(ib.into_raw()).wrapping_add(r.into_raw());
        prop_assert_eq!(recombined, ia.into_raw());
    }

    #[test]
    fn slt_matches_i64(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(I256::from(a).slt(I256::from(b)), a < b);
        prop_assert_eq!(I256::from(a).sgt(I256::from(b)), a > b);
    }

    #[test]
    fn sar_matches_i64(a in any::<i64>(), s in 0u32..63) {
        let expected = a >> s;
        prop_assert_eq!(
            I256::from(a).into_raw().sar(s),
            I256::from(expected).into_raw()
        );
    }

    #[test]
    fn sign_extend_from_byte_31_is_identity(a in arb_u256()) {
        prop_assert_eq!(a.sign_extend(U256::from(31u64)), a);
    }

    // --- hex / rlp ---------------------------------------------------------

    #[test]
    fn hex_bytes_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        prop_assert_eq!(hex::decode(&hex::encode(&bytes)).unwrap(), bytes);
    }

    #[test]
    fn rlp_bytes_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let encoded = rlp::encode_bytes_standalone(&bytes);
        let decoded = rlp::decode(&encoded).unwrap();
        prop_assert_eq!(decoded.as_bytes().unwrap(), bytes.as_slice());
    }

    #[test]
    fn rlp_list_round_trip(items in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..64), 0..12)
    ) {
        let refs: Vec<&[u8]> = items.iter().map(|v| v.as_slice()).collect();
        let encoded = rlp::encode_list_of_bytes(&refs);
        let decoded = rlp::decode(&encoded).unwrap();
        let list = decoded.as_list().unwrap();
        prop_assert_eq!(list.len(), items.len());
        for (item, original) in list.iter().zip(&items) {
            prop_assert_eq!(item.as_bytes().unwrap(), original.as_slice());
        }
    }
}
